//! Global operation counters for the trace substrate.
//!
//! The trace-set operators (`union`, `parallel`, `hide`) and the event
//! interner are pure data-structure code called from deep inside the
//! fixpoint engine, often across rayon worker threads. Threading a
//! collector handle through every call would put an observability
//! parameter on arithmetic; instead this module keeps process-global
//! relaxed atomics that the operators bump unconditionally (one relaxed
//! `fetch_add` per operation — cheaper than the branch a collector check
//! would cost) and that sessions snapshot before and after a run to
//! obtain a delta.
//!
//! Relaxed ordering is sufficient: the counters are monotone tallies
//! with no cross-counter invariants, and snapshots are only taken from
//! quiescent points (before/after a run on the coordinating thread).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            #[allow(non_upper_case_globals)]
            static $name: AtomicU64 = AtomicU64::new(0);
        )*

        /// A point-in-time snapshot of the global trace-operation
        /// counters. Obtain one with [`OpStats::snapshot`], subtract two
        /// with [`OpStats::delta`] to isolate one run's work.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        #[allow(non_snake_case)]
        pub struct OpStats {
            $( $(#[$doc])* pub $name: u64, )*
        }

        impl OpStats {
            /// Reads all counters (relaxed; call from a quiescent point).
            pub fn snapshot() -> OpStats {
                OpStats { $( $name: $name.load(Relaxed), )* }
            }

            /// The counter increments between `earlier` and `self`
            /// (saturating, so a stale baseline never underflows).
            pub fn delta(&self, earlier: &OpStats) -> OpStats {
                OpStats { $( $name: self.$name.saturating_sub(earlier.$name), )* }
            }
        }
    };
}

counters! {
    /// `TraceSet::union` calls.
    unions,
    /// Total traces in union results.
    union_out_traces,
    /// `TraceSet::parallel` calls.
    parallels,
    /// Total traces in parallel-composition results.
    parallel_out_traces,
    /// `TraceSet::hide` calls.
    hides,
    /// Total traces in hiding results.
    hide_out_traces,
    /// Interner lookups satisfied by the read path.
    intern_hits,
    /// Interner lookups that allocated a fresh record.
    intern_misses,
}

impl OpStats {
    /// Interner hit rate in percent (100 when no lookups happened —
    /// an idle interner has nothing to miss).
    pub fn intern_hit_rate_pct(&self) -> u64 {
        let total = self.intern_hits + self.intern_misses;
        (self.intern_hits * 100).checked_div(total).unwrap_or(100)
    }
}

pub(crate) fn record_union(out_len: usize) {
    unions.fetch_add(1, Relaxed);
    union_out_traces.fetch_add(out_len as u64, Relaxed);
}

pub(crate) fn record_parallel(out_len: usize) {
    parallels.fetch_add(1, Relaxed);
    parallel_out_traces.fetch_add(out_len as u64, Relaxed);
}

pub(crate) fn record_hide(out_len: usize) {
    hides.fetch_add(1, Relaxed);
    hide_out_traces.fetch_add(out_len as u64, Relaxed);
}

pub(crate) fn record_intern_hit() {
    intern_hits.fetch_add(1, Relaxed);
}

pub(crate) fn record_intern_miss() {
    intern_misses.fetch_add(1, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Channel, ChannelSet, Event, TraceSet, Value};

    #[test]
    fn deltas_capture_operation_counts() {
        let before = OpStats::snapshot();
        let a = Event::new(Channel::simple("stats_a"), Value::nat(1));
        let b = Event::new(Channel::simple("stats_b"), Value::nat(2));
        let p = TraceSet::stop().prefixed(a);
        let q = TraceSet::stop().prefixed(b);
        let u = p.union(&q);
        let x: ChannelSet = ["stats_a"].into_iter().collect();
        let y: ChannelSet = ["stats_b"].into_iter().collect();
        let par = p.parallel(&x, &q, &y);
        let h = par.hide(&x);
        let d = OpStats::snapshot().delta(&before);
        // Other tests may run concurrently, so the deltas are lower
        // bounds rather than exact counts.
        assert!(d.unions >= 1);
        assert!(d.union_out_traces >= u.len() as u64);
        assert!(d.parallels >= 1);
        assert!(d.parallel_out_traces >= par.len() as u64);
        assert!(d.hides >= 1);
        assert!(d.hide_out_traces >= h.len() as u64);
    }

    #[test]
    fn intern_counters_distinguish_hits_from_misses() {
        let before = OpStats::snapshot();
        let _fresh = Event::new(Channel::simple("stats_fresh_evt"), Value::nat(77));
        let _again = Event::new(Channel::simple("stats_fresh_evt"), Value::nat(77));
        let d = OpStats::snapshot().delta(&before);
        assert!(d.intern_misses >= 1);
        assert!(d.intern_hits >= 1);
        assert!(d.intern_hit_rate_pct() <= 100);
    }

    #[test]
    fn hit_rate_of_empty_delta_is_full() {
        assert_eq!(OpStats::default().intern_hit_rate_pct(), 100);
    }
}
