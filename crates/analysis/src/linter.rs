//! The multi-pass linter.

use std::collections::BTreeSet;

use csp_assert::Assertion;
use csp_lang::{Definition, Definitions, Env, Process, SourceMap};
use csp_trace::{ChannelSet, Value};

use crate::diagnostic::Diagnostic;
use crate::passes;

/// Runs every lint pass over a definition list.
///
/// Construction is builder-style: supply the evaluation environment the
/// host will run the network under (used to resolve channel subscripts
/// and to derive host-bound variable names), extra host variables, and
/// the [`SourceMap`] from a spanned parse for located diagnostics.
///
/// # Examples
///
/// ```
/// use csp_analysis::Linter;
/// use csp_lang::parse_definitions_spanned;
///
/// let (defs, spans) = parse_definitions_spanned("p = c!0 -> ghost").unwrap();
/// let diags = Linter::new(&defs).with_spans(&spans).run();
/// assert_eq!(diags.len(), 1);
/// assert_eq!(diags[0].code.code(), "CSP001");
/// assert_eq!(diags[0].span.unwrap().column, 12);
/// ```
pub struct Linter<'a> {
    defs: &'a Definitions,
    env: Env,
    host_vars: BTreeSet<String>,
    spans: Option<&'a SourceMap>,
}

impl<'a> Linter<'a> {
    /// A linter over `defs` with an empty environment and no spans.
    pub fn new(defs: &'a Definitions) -> Self {
        Linter {
            defs,
            env: Env::new(),
            host_vars: BTreeSet::new(),
            spans: None,
        }
    }

    /// Supplies the evaluation environment. Every bound name (with array
    /// subscripts stripped: `v[1]` binds `v`) also counts as a
    /// host-supplied variable for the unbound-variable pass.
    pub fn with_env(mut self, env: &Env) -> Self {
        for (k, _) in env.iter() {
            let base = k.split('[').next().unwrap_or(k);
            self.host_vars.insert(base.to_string());
        }
        self.env = env.clone();
        self
    }

    /// Declares additional variables the host promises to bind.
    pub fn with_host_vars<I, S>(mut self, vars: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.host_vars.extend(vars.into_iter().map(Into::into));
        self
    }

    /// Attaches the [`SourceMap`] of a spanned parse so diagnostics carry
    /// source locations.
    pub fn with_spans(mut self, spans: &'a SourceMap) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Runs all definition-level passes, returning findings sorted by
    /// source position (unlocated findings last), then by code.
    pub fn run(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for def in self.defs.iter() {
            self.check_def(def, &mut out);
        }
        sort_diagnostics(&mut out);
        out
    }

    /// Runs the definition-level passes for a single definition — the
    /// unit of work the incremental [`AnalysisDb`](crate::AnalysisDb)
    /// re-executes when that definition (or one it depends on) changes.
    pub fn run_def(&self, def: &Definition) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        self.check_def(def, &mut out);
        sort_diagnostics(&mut out);
        out
    }

    fn check_def(&self, def: &Definition, out: &mut Vec<Diagnostic>) {
        let start = out.len();
        let spans = self.spans.and_then(|m| m.get(def.name()));
        passes::names::check(def, self.defs, &self.host_vars, spans, out);
        passes::recursion::check(def, self.defs, spans, out);
        let env = self.env_for(def);
        passes::parallel::check(def, self.defs, &env, spans, out);
        passes::hiding::check(def, self.defs, &env, spans, out);
        // Span guarantee: when a SourceMap is supplied, no diagnostic
        // leaves a spanned lint run without a location — anything a pass
        // could not pin to a token falls back to the definition's name.
        if let Some(ds) = spans {
            for d in &mut out[start..] {
                if d.span.is_none() {
                    d.span = Some(ds.name);
                }
            }
        }
    }

    /// Lints a `sat` assertion against the process it claims to describe
    /// (CSP008/CSP009). `target` names the process for attribution;
    /// `allowed` lists channels the host declares observable even though
    /// the static alphabet misses them.
    pub fn lint_assertion(
        &self,
        target: &str,
        process: &Process,
        assertion: &Assertion,
        allowed: &ChannelSet,
    ) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let span = self.spans.and_then(|m| m.get(target)).map(|d| d.name);
        passes::scope::check_assertion(
            target, process, assertion, self.defs, &self.env, allowed, span, &mut out,
        );
        if let Some(name_span) = span {
            for d in &mut out {
                d.span.get_or_insert(name_span);
            }
        }
        sort_diagnostics(&mut out);
        out
    }

    /// The environment for analysing one definition's body: for an array
    /// definition `q[x:M] = …` the parameter is bound to a representative
    /// member of `M` (its first, or `0` when `M` is unbounded), mirroring
    /// the sampling discipline of
    /// [`channel_alphabet`](csp_lang::channel_alphabet).
    fn env_for(&self, def: &Definition) -> Env {
        let Some((param, set)) = def.param() else {
            return self.env.clone();
        };
        let rep = set
            .eval(&self.env)
            .ok()
            .and_then(|m| m.enumerate(0, &|_| None).ok())
            .and_then(|vs| vs.into_iter().next())
            .unwrap_or_else(|| Value::nat(0));
        self.env.bind(param, rep)
    }
}

/// Sorts by source position (unlocated findings last), then definition,
/// code, and message; deduplicates exact repeats.
pub(crate) fn sort_diagnostics(out: &mut Vec<Diagnostic>) {
    out.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            (
                d.span.map_or(usize::MAX, |s| s.offset),
                d.def.clone(),
                d.code,
                d.message.clone(),
            )
        };
        key(a).cmp(&key(b))
    });
    out.dedup();
}
