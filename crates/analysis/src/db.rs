//! The incremental analysis database.
//!
//! [`AnalysisDb`] keeps per-definition parse, lint, and alphabet results
//! keyed by a content hash of each definition's source text, together
//! with the definition-level call edges. On [`AnalysisDb::set_source`]
//! only the *dirtied* definitions — those whose text changed, plus every
//! definition whose (old) transitive callees include a changed, added, or
//! removed name — are re-analysed; everything else is served from cache.
//!
//! Incrementality is two-level. The parse itself is incremental:
//! [`ParsedModule::reparse`] diffs the new source against the previous
//! revision and re-parses only the definition chunks the edit overlaps,
//! splicing the cached parse — spans shifted — for everything else (it
//! falls back to a full parse whenever the splice's equivalence is not
//! provable, e.g. around error recovery). On top of that, the analysis
//! layer re-lints only the dirtied definitions, and rebases the spans of
//! cached diagnostics when an edit merely moved their definition.

use std::collections::{BTreeMap, BTreeSet};

use csp_lang::{
    channel_alphabet, parse_module, Definitions, Env, ParseError, ParsedModule, Process, SourceMap,
    Span,
};
use csp_trace::ChannelSet;

use crate::diagnostic::Diagnostic;
use crate::linter::Linter;

/// Cached analysis results for one definition.
#[derive(Debug, Clone)]
struct DefEntry {
    /// FNV-1a hash of the definition's source text (its extent slice).
    hash: u64,
    /// Where the definition's name sat when `diagnostics` was computed
    /// (or last rebased) — the anchor for relocating cached spans when
    /// an edit moves the definition without changing it.
    name_span: Span,
    /// Lint findings attributed to this definition.
    diagnostics: Vec<Diagnostic>,
    /// Statically inferred channel alphabet (`None` when it could not be
    /// computed, e.g. unbound subscripts).
    alphabet: Option<ChannelSet>,
    /// Names this definition's body calls directly.
    calls: BTreeSet<String>,
}

/// Statistics about the most recent [`AnalysisDb::set_source`] call,
/// used by benchmarks and tests to verify incrementality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RevisionStats {
    /// Definitions in the module after the edit.
    pub definitions: usize,
    /// Definitions whose results were recomputed.
    pub relinted: usize,
    /// Definitions served entirely from cache.
    pub cached: usize,
}

/// An incremental per-definition analysis database.
///
/// # Examples
///
/// ```
/// use csp_analysis::AnalysisDb;
///
/// let mut db = AnalysisDb::new();
/// db.set_source("p = c!0 -> p\nq = d!0 -> q");
/// assert_eq!(db.stats().relinted, 2);
/// // Editing q re-lints only q: p's text and callees are unchanged.
/// db.set_source("p = c!0 -> p\nq = d!1 -> q");
/// assert_eq!(db.stats().relinted, 1);
/// assert_eq!(db.stats().cached, 1);
/// ```
#[derive(Debug, Default)]
pub struct AnalysisDb {
    env: Env,
    src: String,
    module: ParsedModule,
    entries: BTreeMap<String, DefEntry>,
    stats: RevisionStats,
    /// True once `set_source` has run, enabling the same-text fast path.
    primed: bool,
}

impl AnalysisDb {
    /// An empty database with an empty host environment.
    pub fn new() -> Self {
        AnalysisDb::default()
    }

    /// Sets the evaluation environment used to resolve channel
    /// subscripts, invalidating every cached result.
    pub fn with_env(mut self, env: &Env) -> Self {
        self.env = env.clone();
        self.entries.clear();
        self.src.clear();
        self.primed = false;
        self
    }

    /// Replaces the module source, re-analysing only the definitions
    /// dirtied by the edit. Returns the revision's [`RevisionStats`].
    pub fn set_source(&mut self, src: &str) -> RevisionStats {
        if self.primed && src == self.src {
            self.stats = RevisionStats {
                definitions: self.module.defs.len(),
                relinted: 0,
                cached: self.module.defs.len(),
            };
            return self.stats;
        }
        self.module = match std::mem::take(&mut self.module).reparse(&self.src, src) {
            Ok(m) => m,
            Err(_stale) => parse_module(src),
        };
        // Keys borrow the module's extent list: no per-revision name
        // allocations on the hot path.
        let new_hashes: BTreeMap<&str, u64> = self
            .module
            .extents
            .iter()
            .map(|(name, extent)| {
                (
                    name.as_str(),
                    fnv1a(&src.as_bytes()[extent.offset..extent.end()]),
                )
            })
            .collect();

        // Seed the dirty front with every name whose content changed,
        // appeared, or disappeared.
        let mut dirty_names: BTreeSet<String> = BTreeSet::new();
        for (name, h) in &new_hashes {
            if self.entries.get(*name).map(|e| e.hash) != Some(*h) {
                dirty_names.insert((*name).to_string());
            }
        }
        for name in self.entries.keys() {
            if !new_hashes.contains_key(name.as_str()) {
                dirty_names.insert(name.clone());
            }
        }

        // Propagate backwards over the cached call edges: a definition
        // whose transitive callees include a dirty name gets re-analysed
        // too (its CSP001/CSP002/alphabet results may depend on it).
        // Clean definitions kept their text, hence their edges, so the
        // cached edges are exact for them.
        let mut reverse: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (name, entry) in &self.entries {
            for callee in &entry.calls {
                reverse.entry(callee).or_default().push(name);
            }
        }
        let mut queue: Vec<String> = dirty_names.iter().cloned().collect();
        while let Some(name) = queue.pop() {
            for caller in reverse.get(name.as_str()).into_iter().flatten() {
                if dirty_names.insert((*caller).to_string()) {
                    queue.push((*caller).to_string());
                }
            }
        }

        // Drop entries for definitions that no longer exist.
        self.entries
            .retain(|name, _| new_hashes.contains_key(name.as_str()));

        let linter = Linter::new(&self.module.defs)
            .with_env(&self.env)
            .with_spans(&self.module.map);
        let mut relinted = 0usize;
        for def in self.module.defs.iter() {
            let name = def.name();
            if !dirty_names.contains(name) {
                // Text unchanged — but the edit may have *moved* the
                // definition. Rebase the cached diagnostic spans by the
                // name span's byte/line delta; the column must agree (an
                // indentation change shifts first-line columns
                // non-uniformly), otherwise recompute below.
                if let (Some(entry), Some(after)) =
                    (self.entries.get_mut(name), self.module.map.get(name))
                {
                    let before = entry.name_span;
                    if !before.is_unknown()
                        && !after.name.is_unknown()
                        && before.column == after.name.column
                    {
                        let bytes = after.name.offset as isize - before.offset as isize;
                        let lines = after.name.line as isize - before.line as isize;
                        if bytes != 0 || lines != 0 {
                            for d in &mut entry.diagnostics {
                                if let Some(span) = d.span {
                                    d.span = Some(span.shifted(bytes, lines));
                                }
                            }
                            entry.name_span = after.name;
                        }
                        continue;
                    }
                    // Spans unavailable or indentation changed: fall
                    // through to an honest re-lint.
                }
            }
            relinted += 1;
            let diagnostics = linter.run_def(def);
            let alphabet = channel_alphabet(def.body(), &self.module.defs, &self.env).ok();
            let mut calls = BTreeSet::new();
            called_names(def.body(), &mut calls);
            self.entries.insert(
                def.name().to_string(),
                DefEntry {
                    hash: new_hashes[name],
                    name_span: self
                        .module
                        .map
                        .get(name)
                        .map_or_else(Span::default, |d| d.name),
                    diagnostics,
                    alphabet,
                    calls,
                },
            );
        }

        self.stats = RevisionStats {
            definitions: self.module.defs.len(),
            relinted,
            cached: self.module.defs.len() - relinted,
        };
        self.src.clear();
        self.src.push_str(src);
        self.primed = true;
        self.stats
    }

    /// Statistics for the most recent [`set_source`](Self::set_source).
    pub fn stats(&self) -> RevisionStats {
        self.stats
    }

    /// The parsed definitions of the current revision (error holes
    /// included).
    pub fn definitions(&self) -> &Definitions {
        &self.module.defs
    }

    /// Spans for the current revision's definitions.
    pub fn source_map(&self) -> &SourceMap {
        &self.module.map
    }

    /// Parse errors of the current revision, in source order.
    pub fn parse_errors(&self) -> &[ParseError] {
        &self.module.errors
    }

    /// All lint findings of the current revision, sorted by source
    /// position exactly as [`Linter::run`] would report them.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out: Vec<Diagnostic> = self
            .entries
            .values()
            .flat_map(|e| e.diagnostics.iter().cloned())
            .collect();
        crate::linter::sort_diagnostics(&mut out);
        out
    }

    /// Lint findings attributed to one definition.
    pub fn diagnostics_for(&self, name: &str) -> &[Diagnostic] {
        self.entries
            .get(name)
            .map_or(&[], |e| e.diagnostics.as_slice())
    }

    /// The statically inferred channel alphabet of a definition, when
    /// computable.
    pub fn alphabet(&self, name: &str) -> Option<&ChannelSet> {
        self.entries.get(name).and_then(|e| e.alphabet.as_ref())
    }

    /// The span of a definition's name, for go-to-definition.
    pub fn definition_span(&self, name: &str) -> Option<Span> {
        self.module.map.get(name).map(|d| d.name)
    }

    /// The FNV-1a content hash of a definition's source extent — the
    /// key its cached results are stored under. `None` for names the
    /// current revision does not define. Callers that cache *derived*
    /// results (the verification service, the workbench pool) combine
    /// these with their own query parameters, so a re-request of an
    /// unchanged definition can be answered without recomputation.
    pub fn def_hash(&self, name: &str) -> Option<u64> {
        self.entries.get(name).map(|e| e.hash)
    }

    /// The number of communications a definition performs before its
    /// first recursive call — the static bound on the trace depth of one
    /// unfolding, shown in editor hovers.
    pub fn prefix_depth(&self, name: &str) -> Option<usize> {
        let def = self.module.defs.get(name)?;
        Some(prefix_depth(def.body()))
    }
}

/// Communications before the shallowest name reference (maximum over
/// branches, sum along prefixes).
fn prefix_depth(p: &Process) -> usize {
    match p {
        Process::Stop | Process::Call { .. } | Process::Error(_) => 0,
        Process::Output { then, .. } | Process::Input { then, .. } => 1 + prefix_depth(then),
        Process::Choice(a, b) => prefix_depth(a).max(prefix_depth(b)),
        Process::Parallel { left, right, .. } => prefix_depth(left).max(prefix_depth(right)),
        Process::Hide { body, .. } => prefix_depth(body),
    }
}

/// Direct callees of a body.
fn called_names(p: &Process, out: &mut BTreeSet<String>) {
    match p {
        Process::Stop | Process::Error(_) => {}
        Process::Call { name, .. } => {
            out.insert(name.clone());
        }
        Process::Output { then, .. } | Process::Input { then, .. } => called_names(then, out),
        Process::Choice(a, b) => {
            called_names(a, out);
            called_names(b, out);
        }
        Process::Parallel { left, right, .. } => {
            called_names(left, out);
            called_names(right, out);
        }
        Process::Hide { body, .. } => called_names(body, out),
    }
}

// The hash [`AnalysisDb`] keys its per-definition results on — the
// workspace-wide FNV-1a from `csp_trace::hash`, re-exported so other
// layers (the verification service's cross-request cache, the workbench
// pool) address content the same way the incremental front-end does.
pub use csp_trace::hash::content_hash;

fn fnv1a(bytes: &[u8]) -> u64 {
    content_hash(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_run_analyses_everything() {
        let mut db = AnalysisDb::new();
        let stats = db.set_source("p = c!0 -> p\nq = d!0 -> q\nnet = p || q");
        assert_eq!(stats.definitions, 3);
        assert_eq!(stats.relinted, 3);
        assert_eq!(stats.cached, 0);
    }

    #[test]
    fn editing_a_leaf_relints_it_and_its_callers() {
        let mut db = AnalysisDb::new();
        db.set_source("p = c!0 -> p\nq = d!0 -> q\nnet = p || q");
        // Changing q dirties q and net (net calls q), but not p.
        let stats = db.set_source("p = c!0 -> p\nq = d!1 -> q\nnet = p || q");
        assert_eq!(stats.relinted, 2);
        assert_eq!(stats.cached, 1);
    }

    #[test]
    fn editing_an_independent_def_relints_only_it() {
        let mut db = AnalysisDb::new();
        db.set_source("p = c!0 -> p\nq = d!0 -> q");
        let stats = db.set_source("p = c!0 -> p\nq = d!1 -> q");
        assert_eq!(stats.relinted, 1);
        assert_eq!(stats.cached, 1);
    }

    #[test]
    fn unchanged_source_is_fully_cached() {
        let src = "p = c!0 -> p\nq = d!0 -> q";
        let mut db = AnalysisDb::new();
        db.set_source(src);
        let stats = db.set_source(src);
        assert_eq!(stats.relinted, 0);
        assert_eq!(stats.cached, 2);
    }

    #[test]
    fn whitespace_only_reflow_keeps_other_defs_cached() {
        let mut db = AnalysisDb::new();
        db.set_source("p = c!0 -> p\nq = d!0 -> q");
        // Indenting q changes q's line but not its extent text… it does
        // change the extent (leading spaces are outside the extent, which
        // starts at the first token). p is untouched either way.
        let stats = db.set_source("p = c!0 -> p\n  q = d!0 -> q");
        assert!(stats.cached >= 1, "{stats:?}");
    }

    #[test]
    fn deleting_a_def_invalidates_callers() {
        let mut db = AnalysisDb::new();
        db.set_source("p = c!0 -> q\nq = d!0 -> q");
        assert!(db.diagnostics().is_empty());
        let stats = db.set_source("p = c!0 -> q");
        // q's deletion dirties p, which now calls an undefined name.
        assert_eq!(stats.relinted, 1);
        let diags = db.diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code.code(), "CSP001");
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn adding_a_def_clears_stale_undefined_findings() {
        let mut db = AnalysisDb::new();
        db.set_source("p = c!0 -> ghost");
        assert_eq!(db.diagnostics().len(), 1);
        db.set_source("p = c!0 -> ghost\nghost = d!0 -> ghost");
        assert!(db.diagnostics().is_empty());
    }

    #[test]
    fn incremental_diagnostics_match_cold_run() {
        let v1 = "p = c!0 -> p\nq = d!0 -> ghost\nnet = p || q";
        let v2 = "p = c!0 -> p\nq = d!2 -> ghost\nnet = p || q";
        let mut db = AnalysisDb::new();
        db.set_source(v1);
        db.set_source(v2);
        let mut cold = AnalysisDb::new();
        cold.set_source(v2);
        assert_eq!(db.diagnostics(), cold.diagnostics());
        assert_eq!(db.stats().relinted, 2); // q and net
    }

    #[test]
    fn broken_definitions_cache_like_any_other() {
        let mut db = AnalysisDb::new();
        db.set_source("bad = c!0 ->\ngood = d!0 -> good");
        assert_eq!(db.parse_errors().len(), 1);
        assert!(db.definitions().get("good").is_some());
        // Fixing the broken def leaves `good` cached.
        let stats = db.set_source("bad = c!0 -> bad\ngood = d!0 -> good");
        assert_eq!(stats.relinted, 1);
        assert!(db.parse_errors().is_empty());
    }

    #[test]
    fn cached_diagnostic_spans_follow_moved_definitions() {
        let v1 = "p = c!0 -> p\nq = d!0 -> ghost";
        let v2 = "p = c!0 -> c!1 -> p\nq = d!0 -> ghost";
        let mut db = AnalysisDb::new();
        db.set_source(v1);
        let before = db.diagnostics()[0].span.expect("spanned");
        // Lengthening p moves q without changing its text: q stays
        // cached, but its CSP001's span must follow it.
        let stats = db.set_source(v2);
        assert_eq!(stats.relinted, 1, "only p re-lints");
        let mut cold = AnalysisDb::new();
        cold.set_source(v2);
        assert_eq!(db.diagnostics(), cold.diagnostics());
        let after = db.diagnostics()[0].span.expect("spanned");
        assert_eq!(after.offset, before.offset + 7);
        assert_eq!(after.line, before.line);
    }

    #[test]
    fn repeating_the_same_source_is_free() {
        let src = "p = c!0 -> p";
        let mut db = AnalysisDb::new();
        db.set_source(src);
        let stats = db.set_source(src);
        assert_eq!(stats.relinted, 0);
        assert_eq!(stats.cached, 1);
        assert_eq!(stats.definitions, 1);
    }

    #[test]
    fn def_hashes_are_content_addressed() {
        let mut db = AnalysisDb::new();
        db.set_source("p = c!0 -> p\nq = d!0 -> q");
        let p0 = db.def_hash("p").expect("p is defined");
        assert_eq!(db.def_hash("ghost"), None);
        // Editing q leaves p's key untouched…
        db.set_source("p = c!0 -> p\nq = d!1 -> q");
        assert_eq!(db.def_hash("p"), Some(p0));
        // …and the key is exactly the extent's content hash.
        assert_eq!(p0, content_hash(b"p = c!0 -> p"));
    }

    #[test]
    fn alphabet_and_depth_queries() {
        let mut db = AnalysisDb::new();
        db.set_source("copier = input?x:NAT -> wire!x -> copier");
        let alpha = db.alphabet("copier").unwrap();
        assert_eq!(alpha.len(), 2);
        assert_eq!(db.prefix_depth("copier"), Some(2));
        assert_eq!(db.definition_span("copier").unwrap().column, 1);
    }
}
