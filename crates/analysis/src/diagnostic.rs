//! Structured diagnostics with stable codes.
//!
//! Every finding the linter can produce has a stable [`LintCode`]
//! (`CSP001`–`CSP010`), a default [`Severity`], and a reference to the
//! paper clause whose side condition it enforces. Tools should key on the
//! code, never on the message text.

use std::fmt;

use csp_lang::Span;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but meaningful: the network has a denotation, it is
    /// just unlikely to be the intended one.
    Warning,
    /// The definitions violate an assumption the semantics or the proof
    /// rules rely on; downstream results are untrustworthy.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable identity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// CSP001: call to a process name with no defining equation.
    UndefinedProcess,
    /// CSP002: call whose subscript count disagrees with the definition.
    ArityMismatch,
    /// CSP003: variable used without a binding input prefix, array
    /// parameter, or host-supplied environment entry.
    UnboundVariable,
    /// CSP004: a recursive call reachable without any communication.
    UnguardedRecursion,
    /// CSP005: an operand of `P ||{X | Y} Q` communicates on a channel
    /// outside its declared alphabet.
    AlphabetCoverage,
    /// CSP006: a channel's endpoint directions are ill-formed across a
    /// composition (two writers, two readers, or more than two sharers).
    DirectionRace,
    /// CSP007: `chan L; P` hides a channel `P` never communicates on.
    UselessHiding,
    /// CSP008: a `sat` assertion mentions a channel outside the process's
    /// alphabet.
    AssertionOutsideAlphabet,
    /// CSP009: a `sat` assertion mentions a channel the process hides.
    AssertionOnHiddenChannel,
    /// CSP010: a composition's initial offers cannot intersect, so it
    /// deadlocks immediately while the model still satisfies every `sat`.
    OfferMismatch,
}

/// All codes, in code order. Useful for documentation and tests.
pub const ALL_CODES: [LintCode; 10] = [
    LintCode::UndefinedProcess,
    LintCode::ArityMismatch,
    LintCode::UnboundVariable,
    LintCode::UnguardedRecursion,
    LintCode::AlphabetCoverage,
    LintCode::DirectionRace,
    LintCode::UselessHiding,
    LintCode::AssertionOutsideAlphabet,
    LintCode::AssertionOnHiddenChannel,
    LintCode::OfferMismatch,
];

impl LintCode {
    /// The stable `CSP0xx` identifier.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UndefinedProcess => "CSP001",
            LintCode::ArityMismatch => "CSP002",
            LintCode::UnboundVariable => "CSP003",
            LintCode::UnguardedRecursion => "CSP004",
            LintCode::AlphabetCoverage => "CSP005",
            LintCode::DirectionRace => "CSP006",
            LintCode::UselessHiding => "CSP007",
            LintCode::AssertionOutsideAlphabet => "CSP008",
            LintCode::AssertionOnHiddenChannel => "CSP009",
            LintCode::OfferMismatch => "CSP010",
        }
    }

    /// Short human title.
    pub fn title(self) -> &'static str {
        match self {
            LintCode::UndefinedProcess => "undefined process",
            LintCode::ArityMismatch => "arity mismatch",
            LintCode::UnboundVariable => "unbound variable",
            LintCode::UnguardedRecursion => "unguarded recursion",
            LintCode::AlphabetCoverage => "operand outside declared alphabet",
            LintCode::DirectionRace => "channel direction race",
            LintCode::UselessHiding => "hiding an unused channel",
            LintCode::AssertionOutsideAlphabet => "assertion outside alphabet",
            LintCode::AssertionOnHiddenChannel => "assertion on hidden channel",
            LintCode::OfferMismatch => "initial offers cannot intersect",
        }
    }

    /// The paper clause whose side condition the code enforces.
    pub fn paper_clause(self) -> &'static str {
        match self {
            LintCode::UndefinedProcess => "§1.2(3): process names denote defining equations",
            LintCode::ArityMismatch => "§1.2(3): q[e] requires q[x:M] = ...",
            LintCode::UnboundVariable => "§1.2: all variables are bound by ? or a subscript",
            LintCode::UnguardedRecursion => "§2.1 rule 8: recursion must be guarded to be sound",
            LintCode::AlphabetCoverage => {
                "§2.1 rule 7 premise: P communicates only on channels in X"
            }
            LintCode::DirectionRace => "§1.2(7): each channel connects at most two processes",
            LintCode::UselessHiding => "§2.1 rule 9 premise: hidden channels occur in the body",
            LintCode::AssertionOutsideAlphabet => {
                "§2.2: ch(s) ranges over the process's own channels"
            }
            LintCode::AssertionOnHiddenChannel => {
                "§2.1 rule 9: the conclusion must not mention hidden channels"
            }
            LintCode::OfferMismatch => "§4: STOP | P = P — the model cannot see deadlock",
        }
    }

    /// The severity this code carries unless a caller overrides it.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::UndefinedProcess
            | LintCode::ArityMismatch
            | LintCode::UnboundVariable
            | LintCode::AlphabetCoverage
            | LintCode::AssertionOnHiddenChannel => Severity::Error,
            LintCode::UnguardedRecursion
            | LintCode::DirectionRace
            | LintCode::UselessHiding
            | LintCode::AssertionOutsideAlphabet
            | LintCode::OfferMismatch => Severity::Warning,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// How a heuristic finding was vetted against a stronger analysis.
///
/// CSP010 (offer mismatch) is syntactic; the Workbench cross-checks it
/// against the bounded LTS deadlock search and records the outcome here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Confirmation {
    /// A bounded semantic search reproduced the finding; `witness` is a
    /// rendering of the trace leading to the stuck state.
    Confirmed {
        /// The witness trace, e.g. `⟨wire.0⟩`.
        witness: String,
    },
    /// The finding rests on the syntactic heuristic alone — the bounded
    /// search could not reproduce it (or could not run).
    Heuristic,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: LintCode,
    /// Severity (defaults to the code's, but the proof checker may
    /// escalate).
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// The definition the finding is in, when attributable.
    pub def: Option<String>,
    /// Source location, when the definitions were parsed with spans.
    pub span: Option<Span>,
    /// Semantic vetting status, for heuristic codes the host re-checked.
    pub confirmation: Option<Confirmation>,
}

impl Diagnostic {
    /// A finding with the code's default severity and no location.
    pub fn new(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            def: None,
            span: None,
            confirmation: None,
        }
    }

    /// Attributes the finding to a definition.
    pub fn in_def(mut self, def: &str) -> Self {
        self.def = Some(def.to_string());
        self
    }

    /// Attaches a source location (ignored when `span` is the unknown
    /// span, so programmatically built syntax stays location-free).
    pub fn at(mut self, span: Option<Span>) -> Self {
        self.span = span.filter(|s| !s.is_unknown());
        self
    }

    /// Renders the finding as one JSON object (no external dependencies;
    /// the schema is part of the CLI contract and covered by tests).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
            self.code.code(),
            self.severity,
            json_escape(&self.message)
        ));
        if let Some(def) = &self.def {
            s.push_str(&format!(",\"def\":\"{}\"", json_escape(def)));
        }
        if let Some(sp) = &self.span {
            s.push_str(&format!(
                ",\"line\":{},\"column\":{},\"offset\":{},\"len\":{}",
                sp.line, sp.column, sp.offset, sp.len
            ));
        }
        match &self.confirmation {
            Some(Confirmation::Confirmed { witness }) => {
                s.push_str(&format!(
                    ",\"confirmation\":\"confirmed\",\"witness\":\"{}\"",
                    json_escape(witness)
                ));
            }
            Some(Confirmation::Heuristic) => {
                s.push_str(",\"confirmation\":\"heuristic\"");
            }
            None => {}
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code.code())?;
        if let Some(sp) = &self.span {
            write!(f, " at {sp}")?;
        }
        if let Some(def) = &self.def {
            write!(f, " in `{def}`")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Renders a slice of diagnostics as a JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// The worst severity present, if any.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = ALL_CODES.iter().map(|c| c.code()).collect();
        assert_eq!(codes[0], "CSP001");
        assert_eq!(codes[9], "CSP010");
        let mut dedup = codes.clone();
        dedup.dedup();
        assert_eq!(codes, dedup);
        for c in ALL_CODES {
            assert!(c.paper_clause().contains('§'));
            assert!(!c.title().is_empty());
        }
    }

    #[test]
    fn display_carries_code_location_and_def() {
        let d = Diagnostic::new(
            LintCode::UndefinedProcess,
            "call to undefined process `ghost`",
        )
        .in_def("p")
        .at(Some(Span::new(4, 5, 1, 5)));
        let s = d.to_string();
        assert!(s.contains("error [CSP001] at 1:5 in `p`"), "{s}");
        assert!(s.contains("ghost"));
    }

    #[test]
    fn unknown_spans_are_dropped() {
        let d = Diagnostic::new(LintCode::UselessHiding, "m").at(Some(Span::default()));
        assert!(d.span.is_none());
        assert!(!d.to_string().contains("?:?"));
    }

    #[test]
    fn json_rendering_escapes_and_nests() {
        let d = Diagnostic::new(LintCode::UnboundVariable, "unbound variable `x\"y`").in_def("p");
        let j = d.to_json();
        assert!(j.contains("\\\"y"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
        let arr = render_json(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("CSP003").count(), 2);
    }

    #[test]
    fn max_severity_prefers_errors() {
        let w = Diagnostic::new(LintCode::UselessHiding, "w");
        let e = Diagnostic::new(LintCode::UndefinedProcess, "e");
        assert_eq!(max_severity(&[]), None);
        assert_eq!(
            max_severity(std::slice::from_ref(&w)),
            Some(Severity::Warning)
        );
        assert_eq!(max_severity(&[w, e]), Some(Severity::Error));
    }
}
