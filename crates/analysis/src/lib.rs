//! # csp-analysis
//!
//! Static analysis for the CSP notation of Zhou & Hoare (1981): a
//! multi-pass linter that checks, *before* proof checking or execution,
//! the side conditions the paper's proof rules (§2.1) and model (§1.2,
//! §4) assume:
//!
//! | Code | Checks | Paper clause |
//! |---|---|---|
//! | `CSP001` | calls name a defining equation | §1.2(3) |
//! | `CSP002` | call arity matches the equation | §1.2(3) |
//! | `CSP003` | every variable is bound | §1.2 |
//! | `CSP004` | recursion is guarded, through call graphs | §2.1 rule 8 |
//! | `CSP005` | operands stay inside declared `‖` alphabets | §2.1 rule 7 premise |
//! | `CSP006` | channels connect ≤ 2 processes, directions coherent | §1.2(7) |
//! | `CSP007` | `chan L; P` hides only channels `P` uses | §2.1 rule 9 premise |
//! | `CSP008` | `sat` assertions stay inside the alphabet | §2.2 |
//! | `CSP009` | `sat` assertions avoid hidden channels | §2.1 rule 9 |
//! | `CSP010` | initial offers of a composition can intersect | §4 |
//!
//! Diagnostics carry stable codes, severities, and — when the
//! definitions come from
//! [`parse_definitions_spanned`](csp_lang::parse_definitions_spanned) —
//! byte-accurate source spans.
//!
//! ```
//! use csp_analysis::{Linter, Severity};
//! use csp_lang::parse_definitions_spanned;
//!
//! let (defs, spans) = parse_definitions_spanned(
//!     "deaf = chan wire; (a!1 -> STOP || b?x:NAT -> STOP)",
//! ).unwrap();
//! let diags = Linter::new(&defs).with_spans(&spans).run();
//! // wire is hidden but unused (CSP007); a and b never meet is fine —
//! // they are private to each side, so no CSP010.
//! assert!(diags.iter().any(|d| d.code.code() == "CSP007"));
//! assert!(diags.iter().all(|d| d.severity == Severity::Warning));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod diagnostic;
mod linter;
mod passes;
mod walk;

pub use db::{content_hash, AnalysisDb, RevisionStats};
pub use diagnostic::{
    max_severity, render_json, Confirmation, Diagnostic, LintCode, Severity, ALL_CODES,
};
pub use linter::Linter;
pub use passes::scope::hidden_channels;
pub use walk::{channel_uses, initial_offers, ChannelUse, Offer};
