//! Shared analyses over process text: spanned traversal, channel
//! direction maps, and initial communication offers.
//!
//! These mirror the unfolding discipline of
//! [`channel_alphabet`](csp_lang::channel_alphabet): process-name
//! references are resolved through the definition list with a visited set
//! keyed on `(name, argument values)`, finite input sets are sampled so
//! value-dependent channel subscripts are covered, and unbounded inputs
//! bind a representative `0`.

use std::collections::{BTreeMap, BTreeSet};

use csp_lang::{Definitions, Env, EvalError, MsgSet, Process};
use csp_trace::{Channel, Value};

/// How one process text uses a channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelUse {
    /// The text contains an output `c!e`.
    pub written: bool,
    /// The text contains an input `c?x:M`.
    pub read: bool,
}

/// The channels a (closed) process text can communicate on, each with the
/// directions it is used in, unfolding definitions.
///
/// # Errors
///
/// Fails like [`channel_alphabet`](csp_lang::channel_alphabet): on
/// unresolvable subscripts or undefined process references.
pub fn channel_uses(
    p: &Process,
    defs: &Definitions,
    env: &Env,
) -> Result<BTreeMap<Channel, ChannelUse>, EvalError> {
    let mut out = BTreeMap::new();
    let mut visited = BTreeSet::new();
    walk_uses(p, defs, env, &mut out, &mut visited)?;
    Ok(out)
}

fn walk_uses(
    p: &Process,
    defs: &Definitions,
    env: &Env,
    out: &mut BTreeMap<Channel, ChannelUse>,
    visited: &mut BTreeSet<(String, Vec<Value>)>,
) -> Result<(), EvalError> {
    match p {
        Process::Stop | Process::Error(_) => Ok(()),
        Process::Call { name, args } => {
            let vals = args
                .iter()
                .map(|e| e.eval(env))
                .collect::<Result<Vec<_>, _>>()?;
            if visited.insert((name.clone(), vals.clone())) {
                let (body, scope) = defs.resolve_call(name, &vals, env)?;
                walk_uses(body, defs, &scope, out, visited)?;
            }
            Ok(())
        }
        Process::Output { chan, then, .. } => {
            out.entry(chan.resolve(env)?).or_default().written = true;
            walk_uses(then, defs, env, out, visited)
        }
        Process::Input {
            chan,
            var,
            set,
            then,
        } => {
            out.entry(chan.resolve(env)?).or_default().read = true;
            let m = set.eval(env)?;
            match m.enumerate(0, &|_| None) {
                Ok(vals) if !vals.is_empty() => {
                    for v in vals {
                        let scope = env.bind(var, v);
                        walk_uses(then, defs, &scope, out, visited)?;
                    }
                    Ok(())
                }
                _ => {
                    let scope = env.bind(var, Value::nat(0));
                    walk_uses(then, defs, &scope, out, visited)
                }
            }
        }
        Process::Choice(a, b) => {
            walk_uses(a, defs, env, out, visited)?;
            walk_uses(b, defs, env, out, visited)
        }
        Process::Parallel { left, right, .. } => {
            walk_uses(left, defs, env, out, visited)?;
            walk_uses(right, defs, env, out, visited)
        }
        Process::Hide { body, .. } => {
            // Hidden channels appear with whatever direction the body
            // uses them in; the declaration alone adds no endpoint.
            walk_uses(body, defs, env, out, visited)
        }
    }
}

/// One communication a process is ready to perform first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Offer {
    /// The concrete channel.
    pub chan: Channel,
    /// The values the communication could carry; `None` when statically
    /// unknown (an unevaluable output or an unbounded input set).
    pub values: Option<BTreeSet<Value>>,
}

impl Offer {
    /// Whether two offers on the same channel could synchronise: their
    /// value sets intersect, with unknown treated as compatible.
    pub fn compatible(&self, other: &Offer) -> bool {
        self.chan == other.chan
            && match (&self.values, &other.values) {
                (Some(a), Some(b)) => !a.is_disjoint(b),
                _ => true,
            }
    }
}

/// The set of first communications `p` can offer, unfolding definitions.
///
/// Returns `None` when the offers cannot be determined syntactically — a
/// nested composition or hiding in first position, an unresolvable
/// subscript, or recursion reached without a guard. `Some(vec![])` means
/// the process provably offers nothing (`STOP`).
pub fn initial_offers(p: &Process, defs: &Definitions, env: &Env) -> Option<Vec<Offer>> {
    let mut visited = BTreeSet::new();
    first_offers(p, defs, env, &mut visited)
}

fn first_offers(
    p: &Process,
    defs: &Definitions,
    env: &Env,
    visited: &mut BTreeSet<(String, Vec<Value>)>,
) -> Option<Vec<Offer>> {
    match p {
        Process::Stop => Some(Vec::new()),
        // An error hole's real offers are unknowable — stay conservative
        // so broken definitions don't trigger spurious CSP010 findings.
        Process::Error(_) => None,
        Process::Call { name, args } => {
            let vals = args
                .iter()
                .map(|e| e.eval(env))
                .collect::<Result<Vec<_>, _>>()
                .ok()?;
            if !visited.insert((name.clone(), vals.clone())) {
                // Unguarded recursion: no communication can come first.
                return None;
            }
            let (body, scope) = defs.resolve_call(name, &vals, env).ok()?;
            first_offers(body, defs, &scope, visited)
        }
        Process::Output { chan, msg, .. } => {
            let chan = chan.resolve(env).ok()?;
            let values = msg.eval(env).ok().map(|v| BTreeSet::from([v]));
            Some(vec![Offer { chan, values }])
        }
        Process::Input { chan, set, .. } => {
            let chan = chan.resolve(env).ok()?;
            let values = match set.eval(env).ok()? {
                MsgSet::Finite(vs) => Some(vs),
                MsgSet::Nat | MsgSet::Named(_) => None,
            };
            Some(vec![Offer { chan, values }])
        }
        Process::Choice(a, b) => {
            // Both arms must be known: an unknown arm might hold the
            // offer that saves the composition.
            let mut out = first_offers(a, defs, env, visited)?;
            out.extend(first_offers(b, defs, env, visited)?);
            Some(out)
        }
        // A nested composition's or hiding's first step depends on the
        // whole sub-network; stay conservative.
        Process::Parallel { .. } | Process::Hide { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_lang::{parse_definitions, parse_process};

    fn uses(src: &str, defs: &str) -> BTreeMap<Channel, ChannelUse> {
        let p = parse_process(src).unwrap();
        let d = parse_definitions(defs).unwrap();
        channel_uses(&p, &d, &Env::new()).unwrap()
    }

    #[test]
    fn uses_track_directions_through_definitions() {
        let m = uses("copier", "copier = input?x:NAT -> wire!x -> copier");
        assert_eq!(
            m[&Channel::simple("input")],
            ChannelUse {
                written: false,
                read: true
            }
        );
        assert_eq!(
            m[&Channel::simple("wire")],
            ChannelUse {
                written: true,
                read: false
            }
        );
    }

    #[test]
    fn uses_merge_both_directions() {
        // The protocol's sender both writes and reads wire.
        let m = uses(
            "sender",
            "sender = input?y:M -> q[y]
             q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])",
        );
        let w = m[&Channel::simple("wire")];
        assert!(w.written && w.read);
    }

    #[test]
    fn offers_of_prefix_choice_and_stop() {
        let d = Definitions::new();
        let env = Env::new();
        let p = parse_process("STOP").unwrap();
        assert_eq!(initial_offers(&p, &d, &env), Some(Vec::new()));

        let p = parse_process("a!1 -> STOP | b?x:{2,3} -> STOP").unwrap();
        let offers = initial_offers(&p, &d, &env).unwrap();
        assert_eq!(offers.len(), 2);
        assert_eq!(offers[0].chan, Channel::simple("a"));
        assert_eq!(offers[0].values, Some(BTreeSet::from([Value::nat(1)])));
        assert_eq!(
            offers[1].values,
            Some(BTreeSet::from([Value::nat(2), Value::nat(3)]))
        );
    }

    #[test]
    fn offers_unfold_calls_and_bail_on_unguarded() {
        let d = parse_definitions("p = a!1 -> p").unwrap();
        let env = Env::new();
        let offers = initial_offers(&Process::call("p"), &d, &env).unwrap();
        assert_eq!(offers.len(), 1);

        let d = parse_definitions("p = p").unwrap();
        assert_eq!(initial_offers(&Process::call("p"), &d, &env), None);
    }

    #[test]
    fn offers_unknown_for_nested_compositions() {
        let d = Definitions::new();
        let p = parse_process("a!1 -> STOP || a?x:NAT -> STOP").unwrap();
        assert_eq!(initial_offers(&p, &d, &Env::new()), None);
        let p = parse_process("chan a; a!1 -> STOP").unwrap();
        assert_eq!(initial_offers(&p, &d, &Env::new()), None);
    }

    #[test]
    fn offer_compatibility() {
        let known = |c: &str, vs: &[u32]| Offer {
            chan: Channel::simple(c),
            values: Some(vs.iter().map(|&n| Value::nat(n)).collect()),
        };
        let unknown = |c: &str| Offer {
            chan: Channel::simple(c),
            values: None,
        };
        assert!(known("a", &[1, 2]).compatible(&known("a", &[2])));
        assert!(!known("a", &[1]).compatible(&known("a", &[2])));
        assert!(!known("a", &[1]).compatible(&known("b", &[1])));
        assert!(known("a", &[1]).compatible(&unknown("a")));
        assert!(unknown("a").compatible(&unknown("a")));
    }
}
