//! CSP005, CSP006, CSP010: checks at parallel compositions.
//!
//! * **CSP005** — when `P ||{X | Y} Q` declares operand alphabets, each
//!   operand must communicate only within its declared set: the premise
//!   of the parallelism rule (§2.1 rule 7).
//! * **CSP006** — §1.2(7) insists each channel connects at most two
//!   processes, with a well-defined direction at each end. Flagged: a
//!   channel shared by more than two components of a composition, and a
//!   channel whose two endpoints are both writers or both readers.
//! * **CSP010** — §4's caveat (`STOP | P = P`): the trace model cannot
//!   observe deadlock, so a composition whose initial offers can never
//!   intersect still satisfies every `sat` while doing nothing. Purely
//!   syntactic and deliberately conservative: it only fires when both
//!   operands' first offers are statically known and provably unable to
//!   meet.

use std::collections::BTreeMap;

use csp_lang::{channel_alphabet, DefSpans, Definition, Definitions, Env, Process, Span, SpanTree};
use csp_trace::{Channel, ChannelSet};

use crate::diagnostic::{Diagnostic, LintCode};
use crate::walk::{channel_uses, initial_offers, ChannelUse};

pub(crate) fn check(
    def: &Definition,
    defs: &Definitions,
    env: &Env,
    spans: Option<&DefSpans>,
    out: &mut Vec<Diagnostic>,
) {
    walk(
        def.name(),
        def.body(),
        spans.map(|s| &s.body),
        defs,
        env,
        false,
        out,
    );
}

fn walk(
    in_def: &str,
    p: &Process,
    t: Option<&SpanTree>,
    defs: &Definitions,
    env: &Env,
    parent_is_parallel: bool,
    out: &mut Vec<Diagnostic>,
) {
    if let Process::Parallel {
        left,
        right,
        left_alpha,
        right_alpha,
    } = p
    {
        let span = t.map(|t| t.span);
        check_alphabet_coverage(in_def, left, left_alpha, "left", defs, env, span, out);
        check_alphabet_coverage(in_def, right, right_alpha, "right", defs, env, span, out);
        if !parent_is_parallel {
            check_direction_races(in_def, p, defs, env, span, out);
        }
        check_offer_mismatch(in_def, left, right, defs, env, span, out);
    }

    let child = |i: usize| t.and_then(|t| t.child(i));
    match p {
        Process::Stop | Process::Call { .. } | Process::Error(_) => {}
        Process::Output { then, .. } | Process::Input { then, .. } => {
            walk(in_def, then, child(0), defs, env, false, out);
        }
        Process::Choice(a, b) => {
            walk(in_def, a, child(0), defs, env, false, out);
            walk(in_def, b, child(1), defs, env, false, out);
        }
        Process::Parallel { left, right, .. } => {
            walk(in_def, left, child(0), defs, env, true, out);
            walk(in_def, right, child(1), defs, env, true, out);
        }
        Process::Hide { body, .. } => {
            walk(in_def, body, child(0), defs, env, false, out);
        }
    }
}

/// CSP005: inferred alphabet of an operand ⊆ its declared alphabet.
#[allow(clippy::too_many_arguments)]
fn check_alphabet_coverage(
    in_def: &str,
    operand: &Process,
    declared: &Option<Vec<csp_lang::ChanRef>>,
    side: &str,
    defs: &Definitions,
    env: &Env,
    span: Option<Span>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(declared) = declared else { return };
    // An unresolvable subscript or undefined call is reported by
    // CSP001/CSP003; don't pile a second finding on top.
    let Ok(inferred) = channel_alphabet(operand, defs, env) else {
        return;
    };
    let mut declared_set = ChannelSet::new();
    for c in declared {
        if let Ok(ch) = c.resolve(env) {
            declared_set.insert(ch);
        }
    }
    for c in inferred.iter() {
        if !declared_set.contains(c) {
            out.push(
                Diagnostic::new(
                    LintCode::AlphabetCoverage,
                    format!("{side} operand communicates on `{c}` outside its declared alphabet"),
                )
                .in_def(in_def)
                .at(span),
            );
        }
    }
}

/// CSP006 at a maximal parallel node: flatten the composition into its
/// components and inspect how each shared channel is used.
fn check_direction_races(
    in_def: &str,
    p: &Process,
    defs: &Definitions,
    env: &Env,
    span: Option<Span>,
    out: &mut Vec<Diagnostic>,
) {
    let mut components = Vec::new();
    flatten(p, &mut components);
    let mut uses: Vec<BTreeMap<Channel, ChannelUse>> = Vec::with_capacity(components.len());
    for c in &components {
        match channel_uses(c, defs, env) {
            Ok(u) => uses.push(u),
            // Unresolvable component: name-resolution passes own it.
            Err(_) => return,
        }
    }
    let mut by_chan: BTreeMap<&Channel, Vec<ChannelUse>> = BTreeMap::new();
    for u in &uses {
        for (chan, us) in u {
            by_chan.entry(chan).or_default().push(*us);
        }
    }
    for (chan, endpoints) in by_chan {
        match endpoints.as_slice() {
            [a, b] => {
                let race = if a.written && b.written && !a.read && !b.read {
                    Some("two writers")
                } else if a.read && b.read && !a.written && !b.written {
                    Some("two readers")
                } else {
                    None
                };
                if let Some(kind) = race {
                    out.push(
                        Diagnostic::new(
                            LintCode::DirectionRace,
                            format!(
                                "channel `{chan}` has {kind} and no opposite endpoint; \
                                 its history is ill-defined"
                            ),
                        )
                        .in_def(in_def)
                        .at(span),
                    );
                }
            }
            many if many.len() > 2 => {
                out.push(
                    Diagnostic::new(
                        LintCode::DirectionRace,
                        format!(
                            "channel `{chan}` is shared by {} components; \
                             §1.2(7) allows a channel to connect at most two",
                            many.len()
                        ),
                    )
                    .in_def(in_def)
                    .at(span),
                );
            }
            _ => {}
        }
    }
}

/// The components of a nested parallel composition, left to right.
fn flatten<'a>(p: &'a Process, out: &mut Vec<&'a Process>) {
    match p {
        Process::Parallel { left, right, .. } => {
            flatten(left, out);
            flatten(right, out);
        }
        other => out.push(other),
    }
}

/// CSP010: both operands' first offers are known and no initial event is
/// possible — no offer on a private channel, no compatible pair on a
/// shared one.
#[allow(clippy::too_many_arguments)]
fn check_offer_mismatch(
    in_def: &str,
    left: &Process,
    right: &Process,
    defs: &Definitions,
    env: &Env,
    span: Option<Span>,
    out: &mut Vec<Diagnostic>,
) {
    let (Some(lo), Some(ro)) = (
        initial_offers(left, defs, env),
        initial_offers(right, defs, env),
    ) else {
        return;
    };
    if lo.is_empty() && ro.is_empty() {
        // `STOP || STOP` is visibly STOP; nothing subtle to warn about.
        return;
    }
    let (Ok(la), Ok(ra)) = (
        channel_alphabet(left, defs, env),
        channel_alphabet(right, defs, env),
    ) else {
        return;
    };
    let left_moves_alone = lo.iter().any(|o| !ra.contains(&o.chan));
    let right_moves_alone = ro.iter().any(|o| !la.contains(&o.chan));
    let can_sync = lo.iter().any(|l| ro.iter().any(|r| l.compatible(r)));
    if !(left_moves_alone || right_moves_alone || can_sync) {
        out.push(
            Diagnostic::new(
                LintCode::OfferMismatch,
                "the composition's initial offers cannot intersect: it deadlocks \
                 immediately, yet its (empty-trace) model satisfies every `sat`"
                    .to_string(),
            )
            .in_def(in_def)
            .at(span),
        );
    }
}
