//! CSP004: guardedness through mutual recursion.
//!
//! §2.1 rule 8 justifies recursion by induction on trace length, which
//! needs every recursive call to sit behind at least one communication.
//! The reachability check crosses definition boundaries, so mutual
//! unguardedness (`p = q`, `q = p`) is caught at every name on the cycle.

use std::collections::BTreeSet;

use csp_lang::{DefSpans, Definition, Definitions, Process};

use crate::diagnostic::{Diagnostic, LintCode};

pub(crate) fn check(
    def: &Definition,
    defs: &Definitions,
    spans: Option<&DefSpans>,
    out: &mut Vec<Diagnostic>,
) {
    let mut visited = BTreeSet::new();
    if unguarded_reaches(def.body(), defs, def.name(), &mut visited) {
        out.push(
            Diagnostic::new(
                LintCode::UnguardedRecursion,
                format!(
                    "`{}` can reach a call to itself without communicating",
                    def.name()
                ),
            )
            .in_def(def.name())
            .at(spans.map(|s| s.name)),
        );
    }
}

/// True if, starting from `p`, a call to `target` is reachable without
/// crossing a communication prefix.
fn unguarded_reaches(
    p: &Process,
    defs: &Definitions,
    target: &str,
    visited: &mut BTreeSet<String>,
) -> bool {
    match p {
        Process::Stop | Process::Output { .. } | Process::Input { .. } | Process::Error(_) => false,
        Process::Call { name, .. } => {
            if name == target {
                return true;
            }
            if !visited.insert(name.clone()) {
                return false;
            }
            defs.get(name)
                .is_some_and(|d| unguarded_reaches(d.body(), defs, target, visited))
        }
        Process::Choice(a, b) => {
            unguarded_reaches(a, defs, target, visited)
                || unguarded_reaches(b, defs, target, visited)
        }
        Process::Parallel { left, right, .. } => {
            unguarded_reaches(left, defs, target, visited)
                || unguarded_reaches(right, defs, target, visited)
        }
        Process::Hide { body, .. } => unguarded_reaches(body, defs, target, visited),
    }
}
