//! CSP007: hiding hygiene.
//!
//! The hiding rule (§2.1 rule 9) concludes `chan c; P sat R` from
//! `P sat R` when `R` does not mention the hidden channel — the whole
//! point being that `c` *does* occur in `P` and is being made internal.
//! Hiding a channel the body never communicates on is legal but always a
//! typo (a renamed channel, a stale declaration), so it is flagged.

use csp_lang::{channel_alphabet, DefSpans, Definition, Definitions, Env, Process, SpanTree};

use crate::diagnostic::{Diagnostic, LintCode};

pub(crate) fn check(
    def: &Definition,
    defs: &Definitions,
    env: &Env,
    spans: Option<&DefSpans>,
    out: &mut Vec<Diagnostic>,
) {
    walk(
        def.name(),
        def.body(),
        spans.map(|s| &s.body),
        defs,
        env,
        out,
    );
}

fn walk(
    in_def: &str,
    p: &Process,
    t: Option<&SpanTree>,
    defs: &Definitions,
    env: &Env,
    out: &mut Vec<Diagnostic>,
) {
    if let Process::Hide { channels, body } = p {
        if let Ok(alpha) = channel_alphabet(body, defs, env) {
            for c in channels {
                let Ok(ch) = c.resolve(env) else { continue };
                if !alpha.contains(&ch) {
                    out.push(
                        Diagnostic::new(
                            LintCode::UselessHiding,
                            format!("hides `{ch}`, a channel the body never communicates on"),
                        )
                        .in_def(in_def)
                        .at(t.map(|t| t.span)),
                    );
                }
            }
        }
    }

    let child = |i: usize| t.and_then(|t| t.child(i));
    match p {
        Process::Stop | Process::Call { .. } | Process::Error(_) => {}
        Process::Output { then, .. } | Process::Input { then, .. } => {
            walk(in_def, then, child(0), defs, env, out);
        }
        Process::Choice(a, b) => {
            walk(in_def, a, child(0), defs, env, out);
            walk(in_def, b, child(1), defs, env, out);
        }
        Process::Parallel { left, right, .. } => {
            walk(in_def, left, child(0), defs, env, out);
            walk(in_def, right, child(1), defs, env, out);
        }
        Process::Hide { body, .. } => {
            walk(in_def, body, child(0), defs, env, out);
        }
    }
}
