//! CSP008/CSP009: `sat` assertion scope.
//!
//! §2.2 defines satisfaction over the histories of the process's own
//! channels. An assertion mentioning a channel outside the process's
//! alphabet is trivially about the empty sequence (CSP008, warning:
//! usually a misspelt channel); an assertion mentioning a channel the
//! process *hides* contradicts the hiding rule's conclusion shape
//! (CSP009, error: rule 9 requires hidden channels to vanish from `R`).

use std::collections::BTreeSet;

use csp_assert::Assertion;
use csp_lang::{channel_alphabet, Definitions, Env, Process, Span};
use csp_trace::{Channel, ChannelSet, Value};

use crate::diagnostic::{Diagnostic, LintCode};

#[allow(clippy::too_many_arguments)]
pub(crate) fn check_assertion(
    target: &str,
    p: &Process,
    assertion: &Assertion,
    defs: &Definitions,
    env: &Env,
    allowed: &ChannelSet,
    span: Option<Span>,
    out: &mut Vec<Diagnostic>,
) {
    let Ok(alpha) = channel_alphabet(p, defs, env) else {
        // Unresolvable process: the definition lint owns that report.
        return;
    };
    let hidden = hidden_channels(p, defs, env);
    let mut seen: BTreeSet<Channel> = BTreeSet::new();
    for c in assertion.channels() {
        let Ok(ch) = c.resolve(env) else { continue };
        if !seen.insert(ch.clone()) {
            continue;
        }
        if hidden.contains(&ch) {
            out.push(
                Diagnostic::new(
                    LintCode::AssertionOnHiddenChannel,
                    format!(
                        "assertion mentions `{ch}`, which `{target}` hides; \
                         the hiding rule requires it to vanish from the conclusion"
                    ),
                )
                .in_def(target)
                .at(span),
            );
        } else if !alpha.contains(&ch) && !allowed.contains(&ch) {
            out.push(
                Diagnostic::new(
                    LintCode::AssertionOutsideAlphabet,
                    format!(
                        "assertion mentions `{ch}`, which is not in the alphabet of \
                         `{target}`; its history is always empty there"
                    ),
                )
                .in_def(target)
                .at(span),
            );
        }
    }
}

/// The channels hidden anywhere inside `p`, unfolding definitions.
/// Best-effort: unresolvable subscripts and calls are skipped.
pub fn hidden_channels(p: &Process, defs: &Definitions, env: &Env) -> ChannelSet {
    let mut out = ChannelSet::new();
    let mut visited = BTreeSet::new();
    collect_hidden(p, defs, env, &mut out, &mut visited);
    out
}

fn collect_hidden(
    p: &Process,
    defs: &Definitions,
    env: &Env,
    out: &mut ChannelSet,
    visited: &mut BTreeSet<(String, Vec<Value>)>,
) {
    match p {
        Process::Stop | Process::Error(_) => {}
        Process::Call { name, args } => {
            let Ok(vals) = args
                .iter()
                .map(|e| e.eval(env))
                .collect::<Result<Vec<_>, _>>()
            else {
                return;
            };
            if visited.insert((name.clone(), vals.clone())) {
                if let Ok((body, scope)) = defs.resolve_call(name, &vals, env) {
                    collect_hidden(body, defs, &scope, out, visited);
                }
            }
        }
        Process::Output { then, .. } | Process::Input { then, .. } => {
            collect_hidden(then, defs, env, out, visited);
        }
        Process::Choice(a, b) => {
            collect_hidden(a, defs, env, out, visited);
            collect_hidden(b, defs, env, out, visited);
        }
        Process::Parallel { left, right, .. } => {
            collect_hidden(left, defs, env, out, visited);
            collect_hidden(right, defs, env, out, visited);
        }
        Process::Hide { channels, body } => {
            for c in channels {
                if let Ok(ch) = c.resolve(env) {
                    out.insert(ch);
                }
            }
            collect_hidden(body, defs, env, out, visited);
        }
    }
}
