//! The individual lint passes, one module per concern.

pub(crate) mod hiding;
pub(crate) mod names;
pub(crate) mod parallel;
pub(crate) mod recursion;
pub(crate) mod scope;
