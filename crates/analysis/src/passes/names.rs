//! CSP001–CSP003: name resolution — undefined processes, call arity,
//! unbound variables — with spans at the offending syntax node.
//!
//! Reimplements the checks of `csp_lang::validate` (which that crate
//! keeps for compatibility) on the spanned walk, so each finding points
//! at the call or the first use of the variable rather than at the whole
//! definition.

use std::collections::BTreeSet;

use csp_lang::{
    free_vars_expr, ChanRef, DefSpans, Definition, Definitions, Process, SetExpr, SpanTree,
};

use crate::diagnostic::{Diagnostic, LintCode};

pub(crate) fn check(
    def: &Definition,
    defs: &Definitions,
    host: &BTreeSet<String>,
    spans: Option<&DefSpans>,
    out: &mut Vec<Diagnostic>,
) {
    let mut bound = BTreeSet::new();
    if let Some((param, _)) = def.param() {
        bound.insert(param.to_string());
    }
    let mut reported = BTreeSet::new();
    walk(
        def.name(),
        def.body(),
        spans.map(|s| &s.body),
        defs,
        host,
        &bound,
        &mut reported,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn walk(
    in_def: &str,
    p: &Process,
    t: Option<&SpanTree>,
    defs: &Definitions,
    host: &BTreeSet<String>,
    bound: &BTreeSet<String>,
    reported: &mut BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let span = t.map(|t| t.span);

    // Variables mentioned at this node (not in sub-processes).
    let mut local = BTreeSet::new();
    let chan_vars = |c: &ChanRef, acc: &mut BTreeSet<String>| {
        for e in c.indices() {
            acc.extend(free_vars_expr(e));
        }
    };
    let set_vars = |s: &SetExpr, acc: &mut BTreeSet<String>| match s {
        SetExpr::Nat | SetExpr::Named(_) => {}
        SetExpr::Range(lo, hi) => {
            acc.extend(free_vars_expr(lo));
            acc.extend(free_vars_expr(hi));
        }
        SetExpr::Enum(es) => {
            for e in es {
                acc.extend(free_vars_expr(e));
            }
        }
    };

    match p {
        Process::Stop | Process::Error(_) => {}
        Process::Call { name, args } => {
            for e in args {
                local.extend(free_vars_expr(e));
            }
            match defs.get(name) {
                None => out.push(
                    Diagnostic::new(
                        LintCode::UndefinedProcess,
                        format!("call to undefined process `{name}`"),
                    )
                    .in_def(in_def)
                    .at(span),
                ),
                Some(d) if d.arity() != args.len() => out.push(
                    Diagnostic::new(
                        LintCode::ArityMismatch,
                        format!(
                            "`{name}` called with {} subscript(s), defined with {}",
                            args.len(),
                            d.arity()
                        ),
                    )
                    .in_def(in_def)
                    .at(span),
                ),
                Some(_) => {}
            }
        }
        Process::Output { chan, msg, .. } => {
            chan_vars(chan, &mut local);
            local.extend(free_vars_expr(msg));
        }
        Process::Input { chan, set, .. } => {
            chan_vars(chan, &mut local);
            set_vars(set, &mut local);
        }
        Process::Choice(_, _) => {}
        Process::Parallel {
            left_alpha,
            right_alpha,
            ..
        } => {
            for alpha in [left_alpha, right_alpha].into_iter().flatten() {
                for c in alpha {
                    chan_vars(c, &mut local);
                }
            }
        }
        Process::Hide { channels, .. } => {
            for c in channels {
                chan_vars(c, &mut local);
            }
        }
    }

    for v in local {
        if !bound.contains(&v) && !host.contains(&v) && reported.insert(v.clone()) {
            out.push(
                Diagnostic::new(LintCode::UnboundVariable, format!("unbound variable `{v}`"))
                    .in_def(in_def)
                    .at(span),
            );
        }
    }

    // Recurse, extending the bound set through input binders.
    let child = |i: usize| t.and_then(|t| t.child(i));
    match p {
        Process::Stop | Process::Call { .. } | Process::Error(_) => {}
        Process::Output { then, .. } => {
            walk(in_def, then, child(0), defs, host, bound, reported, out);
        }
        Process::Input { var, then, .. } => {
            let mut inner = bound.clone();
            inner.insert(var.clone());
            walk(in_def, then, child(0), defs, host, &inner, reported, out);
        }
        Process::Choice(a, b) => {
            walk(in_def, a, child(0), defs, host, bound, reported, out);
            walk(in_def, b, child(1), defs, host, bound, reported, out);
        }
        Process::Parallel { left, right, .. } => {
            walk(in_def, left, child(0), defs, host, bound, reported, out);
            walk(in_def, right, child(1), defs, host, bound, reported, out);
        }
        Process::Hide { body, .. } => {
            walk(in_def, body, child(0), defs, host, bound, reported, out);
        }
    }
}
