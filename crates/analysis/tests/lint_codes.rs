//! One positive (minimal `.csp` reproducer, with its expected span) and
//! one negative test per lint code, plus end-to-end checks that the
//! paper's networks lint clean.

use csp_analysis::{Diagnostic, LintCode, Linter, Severity};
use csp_assert::{parse_assertion, ChannelInfo};
use csp_lang::parse_definitions_spanned;
use csp_trace::ChannelSet;

/// Lints `src` with `host_vars` and returns the diagnostics.
fn lint(src: &str, host_vars: &[&str]) -> Vec<Diagnostic> {
    let (defs, spans) = parse_definitions_spanned(src).expect("reproducer parses");
    Linter::new(&defs)
        .with_spans(&spans)
        .with_host_vars(host_vars.iter().copied().map(String::from))
        .run()
}

#[track_caller]
fn expect_code(diags: &[Diagnostic], code: LintCode, line: usize, column: usize) -> Diagnostic {
    let d = diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no {} in {diags:?}", code.code()));
    let span = d
        .span
        .unwrap_or_else(|| panic!("{} has no span", code.code()));
    assert_eq!(
        (span.line, span.column),
        (line, column),
        "wrong span for {}: {d}",
        code.code()
    );
    d.clone()
}

#[track_caller]
fn expect_clean(diags: &[Diagnostic]) {
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}

// -------------------------------------------------------------- CSP001 --

#[test]
fn csp001_undefined_process() {
    let diags = lint("p = c!0 -> ghost", &[]);
    let d = expect_code(&diags, LintCode::UndefinedProcess, 1, 12);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.def.as_deref(), Some("p"));
    assert_eq!(diags.len(), 1);
}

#[test]
fn csp001_negative_defined_calls() {
    expect_clean(&lint("p = c!0 -> q\nq = d!1 -> p", &[]));
}

// -------------------------------------------------------------- CSP002 --

#[test]
fn csp002_arity_mismatch() {
    let diags = lint("q[x:0..3] = wire!x -> q[x]\np = c!0 -> q", &[]);
    let d = expect_code(&diags, LintCode::ArityMismatch, 2, 12);
    assert!(d.message.contains("0 subscript(s)"));
    assert_eq!(diags.len(), 1);
}

#[test]
fn csp002_negative_correct_arity() {
    expect_clean(&lint("q[x:0..3] = wire!x -> q[x]\np = c!0 -> q[2]", &[]));
}

// -------------------------------------------------------------- CSP003 --

#[test]
fn csp003_unbound_variable() {
    let diags = lint("p = c!x -> p", &[]);
    // The span is the `c` prefix whose message mentions x.
    let d = expect_code(&diags, LintCode::UnboundVariable, 1, 5);
    assert!(d.message.contains("`x`"));
    assert_eq!(diags.len(), 1);
}

#[test]
fn csp003_negative_bound_and_host_vars() {
    // Bound by an input prefix.
    expect_clean(&lint("p = c?x:NAT -> d!x -> p", &[]));
    // Bound by the host environment (the multiplier's constant vector).
    expect_clean(&lint("p = c!v -> p", &["v"]));
}

// -------------------------------------------------------------- CSP004 --

#[test]
fn csp004_unguarded_recursion_through_call_graph() {
    let diags = lint("p = q\nq = p", &[]);
    expect_code(&diags, LintCode::UnguardedRecursion, 1, 1);
    expect_code(
        &diags
            .iter()
            .filter(|d| d.def.as_deref() == Some("q"))
            .cloned()
            .collect::<Vec<_>>(),
        LintCode::UnguardedRecursion,
        2,
        1,
    );
    assert_eq!(diags.len(), 2);
}

#[test]
fn csp004_negative_guarded() {
    expect_clean(&lint("p = c!0 -> q\nq = d!1 -> p", &[]));
}

// -------------------------------------------------------------- CSP005 --

#[test]
fn csp005_operand_outside_declared_alphabet() {
    let diags = lint("p = a!1 -> STOP ||{a | b} b!2 -> c!3 -> STOP", &[]);
    let d = expect_code(&diags, LintCode::AlphabetCoverage, 1, 17);
    assert!(d.message.contains("right operand"), "{d}");
    assert!(d.message.contains("`c`"));
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn csp005_negative_covering_alphabets() {
    expect_clean(&lint(
        "p = a!1 -> STOP ||{a | b, c} b!2 -> c!3 -> STOP",
        &[],
    ));
}

// -------------------------------------------------------------- CSP006 --

#[test]
fn csp006_two_writers() {
    let diags = lint("w1 = c!1 -> w1\nw2 = c!2 -> w2\nnet = w1 || w2", &[]);
    let d = expect_code(&diags, LintCode::DirectionRace, 3, 10);
    assert!(d.message.contains("two writers"), "{d}");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn csp006_two_readers_and_three_sharers() {
    let diags = lint("net = c?x:NAT -> STOP || c?y:NAT -> STOP", &[]);
    assert!(diags
        .iter()
        .any(|d| d.code == LintCode::DirectionRace && d.message.contains("two readers")));

    let diags = lint(
        "net = c!1 -> STOP || c?x:NAT -> STOP || c?y:NAT -> STOP",
        &[],
    );
    assert!(
        diags
            .iter()
            .any(|d| d.code == LintCode::DirectionRace && d.message.contains("3 components")),
        "{diags:?}"
    );
}

#[test]
fn csp006_negative_writer_reader_pair_and_mixed_directions() {
    // One writer, one reader.
    expect_clean(&lint("w = c!1 -> w\nr = c?x:NAT -> r\nnet = w || r", &[]));
    // The protocol pattern: both sides read AND write the wire.
    let diags = lint(
        "s = wire!1 -> (wire?y:{ACK} -> s)\nr = wire?z:NAT -> wire!ACK -> r\nnet = s || r",
        &[],
    );
    assert!(
        !diags.iter().any(|d| d.code == LintCode::DirectionRace),
        "{diags:?}"
    );
}

// -------------------------------------------------------------- CSP007 --

#[test]
fn csp007_hiding_unused_channel() {
    let diags = lint("p = chan h; a!1 -> STOP", &[]);
    let d = expect_code(&diags, LintCode::UselessHiding, 1, 5);
    assert!(d.message.contains("`h`"));
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn csp007_negative_hidden_channel_used() {
    expect_clean(&lint("p = chan a; a!1 -> STOP", &[]));
}

// ------------------------------------------------------ CSP008 / CSP009 --

const PIPELINE: &str = "copier = input?x:NAT -> wire!x -> copier
recopier = wire?y:NAT -> output!y -> recopier
pipeline = chan wire; (copier || recopier)";

fn lint_pipeline_assertion(assert_src: &str) -> Vec<Diagnostic> {
    let (defs, spans) = parse_definitions_spanned(PIPELINE).unwrap();
    let info = ChannelInfo::new().with_channels(["input", "output", "wire", "outputt"]);
    let a = parse_assertion(assert_src, &info).unwrap();
    let linter = Linter::new(&defs).with_spans(&spans);
    let p = defs.get("pipeline").unwrap().body().clone();
    linter.lint_assertion("pipeline", &p, &a, &ChannelSet::new())
}

#[test]
fn csp008_assertion_outside_alphabet() {
    // `outputt` is a typo for `output`.
    let diags = lint_pipeline_assertion("outputt <= input");
    let d = expect_code(&diags, LintCode::AssertionOutsideAlphabet, 3, 1);
    assert!(d.message.contains("`outputt`"));
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(diags.len(), 1);
}

#[test]
fn csp009_assertion_on_hidden_channel() {
    let diags = lint_pipeline_assertion("wire <= input");
    let d = expect_code(&diags, LintCode::AssertionOnHiddenChannel, 3, 1);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(diags.len(), 1);
}

#[test]
fn csp008_csp009_negative_in_scope_assertion() {
    expect_clean(&lint_pipeline_assertion("output <= input"));
}

// -------------------------------------------------------------- CSP010 --

#[test]
fn csp010_disjoint_initial_offers() {
    // Both sides insist on channel a with different values: deadlock at
    // step one, invisible to the trace model.
    let diags = lint("p = a!1 -> STOP || a?x:{2,3} -> STOP", &[]);
    let d = expect_code(&diags, LintCode::OfferMismatch, 1, 17);
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn csp010_negative_compatible_or_independent_offers() {
    // Compatible values.
    let diags = lint("p = a!1 -> STOP || a?x:{1,2} -> STOP", &[]);
    assert!(!diags.iter().any(|d| d.code == LintCode::OfferMismatch));
    // Unknown input set: conservative, no warning.
    let diags = lint("p = a!1 -> STOP || a?x:NAT -> STOP", &[]);
    assert!(!diags.iter().any(|d| d.code == LintCode::OfferMismatch));
    // Private channels: each side can move alone.
    let diags = lint("p = a!1 -> STOP || b!2 -> STOP", &[]);
    assert!(!diags.iter().any(|d| d.code == LintCode::OfferMismatch));
    // The dining-philosophers shape deadlocks *later*; the syntactic
    // heuristic must stay quiet about it.
    let diags = lint(
        "fork[j:0..1] = grab[0][j]?x:{1} -> drop[0][j]?y:{1} -> fork[j]
                      | grab[1][j]?x:{1} -> drop[1][j]?y:{1} -> fork[j]
         phil0 = grab[0][0]!1 -> grab[0][1]!1 -> drop[0][0]!1 -> drop[0][1]!1 -> phil0
         phil1 = grab[1][1]!1 -> grab[1][0]!1 -> drop[1][1]!1 -> drop[1][0]!1 -> phil1
         table = fork[0] || fork[1] || phil0 || phil1",
        &[],
    );
    assert!(
        !diags.iter().any(|d| d.code == LintCode::OfferMismatch),
        "{diags:?}"
    );
}

// --------------------------------------------- span guarantee (ISSUE 7) --

/// No `span: None` escapes a spanned lint run: whatever a pass cannot
/// pin to a token must fall back to the definition's name span.
#[test]
fn every_diagnostic_from_a_spanned_run_carries_a_span() {
    // A battery covering every definition-level code (CSP001–CSP007,
    // CSP010), including shapes where inner SpanTree lookups can miss.
    let sources = [
        "p = c!0 -> ghost",
        "q[x:0..3] = wire!x -> q[x]\np = c!0 -> q",
        "p = c!x -> p",
        "p = q\nq = p",
        "p = a!1 -> STOP ||{a | b} b!2 -> c!3 -> STOP",
        "w1 = c!1 -> w1\nw2 = c!2 -> w2\nnet = w1 || w2",
        "p = chan h; a!1 -> STOP",
        "p = a!1 -> STOP || a?x:{2,3} -> STOP",
        "p = c!x -> ghost | chan h; STOP\nq = q",
        "deep = a?x:NAT -> (b!x -> ghost | chan h; (c!x -> STOP || c?y:{1} -> miss))",
    ];
    for src in sources {
        let diags = lint(src, &[]);
        assert!(!diags.is_empty(), "battery source lints clean: {src}");
        for d in &diags {
            assert!(d.span.is_some(), "span-less diagnostic {d} from {src:?}");
        }
    }
    // Assertion-level codes (CSP008/CSP009) get the same guarantee.
    for assert_src in ["outputt <= input", "wire <= input"] {
        for d in lint_pipeline_assertion(assert_src) {
            assert!(d.span.is_some(), "span-less assertion diagnostic {d}");
        }
    }
}

// ------------------------------------------------- recovery (ISSUE 7) --

/// A syntax error in the first definition must not eat the span-exact
/// diagnostics of the definitions after it.
#[test]
fn lint_survives_a_broken_first_definition() {
    let src = "broken = c!0 -> ->\np = d!0 -> ghost\nq = e!x -> q";
    let module = csp_lang::parse_module(src);
    assert_eq!(module.errors.len(), 1);
    let diags = Linter::new(&module.defs).with_spans(&module.map).run();
    let undefined = diags
        .iter()
        .find(|d| d.code == LintCode::UndefinedProcess)
        .expect("CSP001 from the second definition survives");
    assert_eq!(undefined.span.unwrap().line, 2);
    assert_eq!(undefined.span.unwrap().column, 12);
    let unbound = diags
        .iter()
        .find(|d| d.code == LintCode::UnboundVariable)
        .expect("CSP003 from the third definition survives");
    assert_eq!(unbound.span.unwrap().line, 3);
    // The broken definition contributes no findings of its own.
    assert!(diags.iter().all(|d| d.def.as_deref() != Some("broken")));
}

// ------------------------------------------------------- paper networks --

#[test]
fn paper_networks_lint_clean() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../paper.csp"))
        .expect("paper.csp readable");
    let (defs, spans) = parse_definitions_spanned(&src).unwrap();
    let env = csp_lang::examples::multiplier_env(&[2, 3, 5]);
    let diags = Linter::new(&defs).with_spans(&spans).with_env(&env).run();
    expect_clean(&diags);
}

#[test]
fn determinism_same_input_same_output() {
    let src = "p = c!x -> ghost | chan h; STOP\nq = q";
    let a = lint(src, &[]);
    let b = lint(src, &[]);
    assert_eq!(a, b);
    assert!(a.len() >= 3); // CSP001, CSP003, CSP004, CSP007
}
