//! Bench for experiment E6: per-rule empirical soundness validation
//! throughput (instances checked per second across all ten rules).

use criterion::{criterion_group, criterion_main, Criterion};
use csp_core::validate_all_rules;

fn rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("soundness/rules");
    group.sample_size(10);
    group.bench_function("all_rules_10_instances", |b| {
        b.iter(|| {
            let reports = validate_all_rules(99, 10).expect("validation runs");
            assert!(reports.iter().all(|r| r.sound()));
        });
    });
    group.finish();
}

criterion_group!(benches, rules);
criterion_main!(benches);
