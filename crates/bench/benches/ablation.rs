//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! * the hide-depth multiplier (how much deeper concealed bodies are
//!   explored than the requested visible depth) — correctness insurance
//!   vs. cost;
//! * the pure-premise oracle's history-length bound — confidence vs.
//!   cost of the bounded validity check;
//! * denotational (whole-set merge) vs. operational (on-the-fly)
//!   parallel composition — the optimisation that makes the multiplier
//!   tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_bench::pipeline_workbench;
use csp_core::prelude::*;
use csp_core::{decide_valid, Assertion, DecideConfig, FuncTable, STerm};
use csp_core::{Lts, Semantics};

/// Hide-multiplier sweep: the pipeline needs ≥2 raw events per visible
/// event; multipliers beyond that only cost time.
fn hide_multiplier(c: &mut Criterion) {
    let wb = pipeline_workbench();
    let defs = wb.definitions().clone();
    let uni = wb.universe().clone();
    let env = Env::new();
    let mut group = c.benchmark_group("ablation/hide_multiplier");
    group.sample_size(10);
    for m in [2usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let sem = Semantics::new(&defs, &uni).with_hide_multiplier(m);
            b.iter(|| sem.denote_name("pipeline", &env, 3).expect("denote"));
        });
    }
    group.finish();
}

/// Oracle history-length sweep on the protocol proof's heaviest premise
/// (transitivity of ≤ through f over three channels).
fn oracle_history_len(c: &mut Criterion) {
    let transitivity = Assertion::prefix(STerm::chan("a").app("f"), STerm::chan("b"))
        .and(Assertion::prefix(
            STerm::chan("c"),
            STerm::chan("a").app("f"),
        ))
        .implies(Assertion::prefix(STerm::chan("c"), STerm::chan("b")));
    let uni = Universe::new(1);
    let funcs = FuncTable::with_builtins();
    let mut group = c.benchmark_group("ablation/oracle_history_len");
    group.sample_size(10);
    for len in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let cfg = DecideConfig {
                max_history_len: len,
                max_cases: 50_000_000,
            };
            b.iter(|| {
                assert!(decide_valid(&transitivity, &uni, &funcs, cfg).is_valid());
            });
        });
    }
    group.finish();
}

/// Reference (denotational merge) vs. engine (LTS on-the-fly) parallel
/// composition on the same network and depth.
fn parallel_strategies(c: &mut Criterion) {
    let wb = pipeline_workbench();
    let defs = wb.definitions().clone();
    let uni = wb.universe().clone();
    let env = Env::new();
    let p = csp_core::parse_process("copier || recopier").unwrap();
    let mut group = c.benchmark_group("ablation/parallel_strategy");
    group.sample_size(10);
    group.bench_function("denotational_merge", |b| {
        let sem = Semantics::new(&defs, &uni);
        b.iter(|| sem.denote(&p, &env, 4).expect("denote"));
    });
    group.bench_function("lts_on_the_fly", |b| {
        let lts = Lts::new(&defs, &uni);
        b.iter(|| {
            lts.traces(&csp_core::Config::new(p.clone(), env.clone()), 4)
                .expect("lts")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    hide_multiplier,
    oracle_history_len,
    parallel_strategies
);
criterion_main!(benches);
