//! Benches for the bounded model checker (E1/E4): `sat` checking of the
//! paper's invariants by depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_bench::{
    multiplier_invariant, multiplier_workbench, pipeline_workbench, protocol_workbench,
};

fn copier_sat(c: &mut Criterion) {
    let wb = pipeline_workbench();
    let mut group = c.benchmark_group("sat/copier_wire_le_input");
    for depth in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| {
                assert!(wb
                    .check_sat("copier", "wire <= input", d)
                    .expect("check runs")
                    .holds());
            });
        });
    }
    group.finish();
}

fn protocol_sat(c: &mut Criterion) {
    let wb = protocol_workbench();
    let mut group = c.benchmark_group("sat/protocol_output_le_input");
    group.sample_size(10);
    for depth in [2usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| {
                assert!(wb
                    .check_sat("protocol", "output <= input", d)
                    .expect("check runs")
                    .holds());
            });
        });
    }
    group.finish();
}

fn multiplier_sat(c: &mut Criterion) {
    let wb = multiplier_workbench(3);
    let inv = multiplier_invariant(3);
    let mut group = c.benchmark_group("sat/multiplier_invariant");
    group.sample_size(10);
    group.bench_function("width3_depth4", |b| {
        b.iter(|| {
            assert!(wb
                .check_sat("multiplier", &inv, 4)
                .expect("check runs")
                .holds());
        });
    });
    group.finish();
}

criterion_group!(benches, copier_sat, protocol_sat, multiplier_sat);
criterion_main!(benches);
