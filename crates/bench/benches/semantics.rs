//! Benches for the semantic engines (E5/E7): fixpoint iteration,
//! denotational vs. operational evaluation, and the §4 identity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_bench::pipeline_workbench;
use csp_core::prelude::*;
use csp_core::{compare, Lts, Semantics};

fn fixpoint_convergence(c: &mut Criterion) {
    let wb = pipeline_workbench();
    let mut group = c.benchmark_group("semantics/fixpoint_convergence");
    group.sample_size(10);
    for depth in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| {
                let run = wb.fixpoint(d, 24).expect("fixpoint runs");
                assert!(run.converged_at.is_some());
            });
        });
    }
    group.finish();
}

fn denotational_vs_operational(c: &mut Criterion) {
    let wb = pipeline_workbench();
    let defs = wb.definitions().clone();
    let uni = wb.universe().clone();
    let env = Env::new();
    let mut group = c.benchmark_group("semantics/engines");
    group.bench_function("denote_pipeline_d4", |b| {
        let sem = Semantics::new(&defs, &uni);
        b.iter(|| sem.denote_name("pipeline", &env, 4).expect("denote"));
    });
    group.bench_function("lts_pipeline_d4", |b| {
        let lts = Lts::new(&defs, &uni);
        b.iter(|| lts.traces(&lts.initial("pipeline", &env), 4).expect("lts"));
    });
    group.finish();
}

fn stop_choice_identity(c: &mut Criterion) {
    let wb = pipeline_workbench();
    let defs = wb.definitions().clone();
    let uni = wb.universe().clone();
    c.bench_function("semantics/stop_choice_identity", |b| {
        let sem = Semantics::new(&defs, &uni);
        let env = Env::new();
        b.iter(|| {
            let plain = sem.denote_name("copier", &env, 4).expect("denote");
            let with_stop = sem
                .denote(&Process::Stop.or(Process::call("copier")), &env, 4)
                .expect("denote");
            assert!(compare(&plain, &with_stop).is_none());
        });
    });
}

criterion_group!(
    benches,
    fixpoint_convergence,
    denotational_vs_operational,
    stop_choice_identity
);
criterion_main!(benches);
