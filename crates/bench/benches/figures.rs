//! Benches regenerating the data behind the paper's figures (F1/F2):
//! pipeline trace enumeration by depth, and multiplier-network
//! exploration by width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_bench::{chain_workbench, multiplier_workbench, pipeline_workbench};

fn pipeline_traces(c: &mut Criterion) {
    let wb = pipeline_workbench();
    let mut group = c.benchmark_group("figures/pipeline_traces");
    for depth in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| wb.traces("pipeline", d).expect("traces"));
        });
    }
    group.finish();
}

fn multiplier_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/multiplier_scaling");
    group.sample_size(10);
    for width in [1usize, 2, 3] {
        let wb = multiplier_workbench(width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| wb.traces("multiplier", 3).expect("traces"));
        });
    }
    group.finish();
}

fn chain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/chain_scaling");
    group.sample_size(10);
    for stages in [1usize, 2, 3, 4] {
        let wb = chain_workbench(stages);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| wb.traces("chain", 3).expect("traces"));
        });
    }
    group.finish();
}

criterion_group!(benches, pipeline_traces, multiplier_scaling, chain_scaling);
criterion_main!(benches);
