//! Performance characterisation (P1–P4): enumeration scaling, parallel
//! composition & hiding, proof-checker throughput, and concurrent
//! runtime throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use csp_bench::{chain_workbench, pipeline_workbench};
use csp_core::prelude::*;
use csp_core::proofs;

/// P1 — trace enumeration vs. depth and universe size.
fn enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/enumeration");
    for bound in [1u32, 2, 3] {
        let mut wb = Workbench::new().with_universe(Universe::new(bound));
        wb.define_source(csp_core::examples::PIPELINE_SRC)
            .expect("parses");
        group.bench_with_input(BenchmarkId::new("universe", bound), &bound, |b, _| {
            b.iter(|| wb.traces("copier", 5).expect("traces"));
        });
    }
    group.finish();
}

/// P2 — parallel composition and hiding cost vs. chain length.
fn parallel_hiding(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/parallel_hiding");
    group.sample_size(10);
    for stages in [2usize, 3, 4, 5] {
        let wb = chain_workbench(stages);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| wb.traces("chain", 4).expect("traces"));
        });
    }
    group.finish();
}

/// P3 — proof-checker throughput across the whole script suite.
fn proof_throughput(c: &mut Criterion) {
    let scripts = proofs::all_scripts();
    let total_rules: usize = scripts
        .iter()
        .map(|s| s.check().expect("checks").rule_count())
        .sum();
    let mut group = c.benchmark_group("perf/proof_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_rules as u64));
    group.bench_function("all_scripts", |b| {
        b.iter(|| {
            for script in &scripts {
                script.check().expect("checks");
            }
        });
    });
    group.finish();
}

/// P4 — concurrent runtime throughput (events per second through the
/// thread-per-component executor).
fn runtime_throughput(c: &mut Criterion) {
    let wb = pipeline_workbench();
    let mut group = c.benchmark_group("perf/runtime");
    group.sample_size(10);
    for steps in [32usize, 128] {
        group.throughput(Throughput::Elements(steps as u64));
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &n| {
            b.iter(|| {
                let res = wb
                    .run(
                        "pipeline",
                        RunOptions {
                            max_steps: n,
                            scheduler: Scheduler::seeded(5),
                            ..RunOptions::default()
                        },
                    )
                    .expect("runs");
                assert_eq!(res.steps, n);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    enumeration,
    parallel_hiding,
    proof_throughput,
    runtime_throughput
);
criterion_main!(benches);
