//! Benches for the proof checker (T1/E2/E3): how fast each paper proof
//! checks, including all pure-premise discharges.

use criterion::{criterion_group, criterion_main, Criterion};
use csp_core::proofs;

fn table1_check(c: &mut Criterion) {
    let script = proofs::protocol::sender_table1();
    c.bench_function("proofs/table1_check", |b| {
        b.iter(|| script.check().expect("Table 1 checks"));
    });
}

fn receiver_check(c: &mut Criterion) {
    let script = proofs::protocol::receiver_exercise();
    c.bench_function("proofs/receiver_check", |b| {
        b.iter(|| script.check().expect("receiver checks"));
    });
}

fn protocol_check(c: &mut Criterion) {
    let script = proofs::protocol::protocol_output_le_input();
    let mut group = c.benchmark_group("proofs");
    group.sample_size(10); // the transitivity oracle enumerates 3 channels
    group.bench_function("protocol_check", |b| {
        b.iter(|| script.check().expect("protocol checks"));
    });
    group.finish();
}

fn copier_check(c: &mut Criterion) {
    let script = proofs::pipeline::copier_wire_le_input();
    c.bench_function("proofs/copier_check", |b| {
        b.iter(|| script.check().expect("copier checks"));
    });
}

criterion_group!(
    benches,
    table1_check,
    receiver_check,
    protocol_check,
    copier_check
);
criterion_main!(benches);
