//! The `bench-json --serve` load driver: drives a running `csp serve`
//! instance with the same request mix an editor/CI fleet would produce
//! and reports four gateable rows:
//!
//! * `serve/cold_check_ms` — median `/v1/check` latency when every
//!   request is a guaranteed cache miss (each sample appends a distinct
//!   probe definition, moving the content hash);
//! * `serve/warm_check_ms` — median latency re-requesting one fixed
//!   body (pure cache hits after priming);
//! * `serve/rps_mixed` — concurrent lint/check/prove mix over
//!   `paper.csp` and the `examples/*.csp` modules. Stored as
//!   **milliseconds per 1000 requests** (`1e6 / rps`) so the shared
//!   wall-time gate is directionally correct — a throughput *drop*
//!   raises the stored number and trips the ±tolerance check — and
//!   well clear of the gate's 1 ms noise floor. The actual
//!   requests-per-second figure rides in the `peak_set` column;
//! * `serve/p99_ms` — 99th-percentile latency across the mixed phase.
//!
//! The driver also *enforces* the cache's reason for existing: the
//! warm median must beat the cold median by at least
//! [`WARM_SPEEDUP_FLOOR`]×, and every response's `X-Csp-Cache` header
//! must match the phase (miss when re-keyed, hit when repeated).

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::report::{BenchRecord, SpanAttr};
use csp_serve::Client;

/// The paper's module (lint traffic in the mixed phase).
const PAPER_CSP: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../paper.csp"));
/// The shipped example modules (check/prove traffic).
const PIPELINE_CSP: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/pipeline.csp"
));
const PROTOCOL_CSP: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/protocol.csp"
));
const BUFFER_CSP: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/buffer.csp"
));

/// Acceptance floor: a warm (cache-hit) re-request of an unchanged
/// module must be at least this many times faster than a cold one.
pub const WARM_SPEEDUP_FLOOR: f64 = 5.0;

/// Cold/warm phase samples.
const CHECK_SAMPLES: usize = 8;
/// Concurrent clients in the mixed phase.
const MIXED_CLIENTS: usize = 4;
/// Requests each mixed-phase client issues over its one connection.
const MIXED_REQUESTS_PER_CLIENT: usize = 100;
/// Mixed-phase repetitions; the best-throughput round is reported
/// (best-of-N resists one bad scheduling window on a shared CI box).
const MIXED_ROUNDS: usize = 5;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One request shape in the mixed phase.
struct Shot {
    path: &'static str,
    body: String,
}

fn check_body(source: &str, process: &str, assertion: &str, extra: &str) -> String {
    format!(
        "{{\"source\":{},\"process\":{},\"assertion\":{},\"depth\":3{extra}}}",
        json_escape(source),
        json_escape(process),
        json_escape(assertion),
    )
}

/// The mixed-phase request palette: lint / check / prove over the
/// shipped modules, echoing the README's command tour.
fn mixed_palette() -> Vec<Shot> {
    vec![
        Shot {
            path: "/v1/lint",
            body: format!(
                "{{\"source\":{},\"module\":\"paper\"}}",
                json_escape(PAPER_CSP)
            ),
        },
        Shot {
            path: "/v1/check",
            body: check_body(
                PIPELINE_CSP,
                "pipeline",
                "output <= input",
                ",\"nat_bound\":1",
            ),
        },
        Shot {
            path: "/v1/check",
            body: check_body(
                PROTOCOL_CSP,
                "protocol",
                "output <= input",
                ",\"nat_bound\":0,\"sets\":{\"M\":[0,1]}",
            ),
        },
        Shot {
            path: "/v1/check",
            body: check_body(BUFFER_CSP, "buffer2", "out <= in", ",\"nat_bound\":1"),
        },
        Shot {
            path: "/v1/prove",
            body: format!(
                "{{\"source\":{},\"specs\":[{{\"process\":\"copier\",\
                 \"assertion\":\"wire <= input\"}}],\"nat_bound\":1}}",
                json_escape(PIPELINE_CSP)
            ),
        },
        Shot {
            path: "/v1/lint",
            body: format!(
                "{{\"source\":{},\"module\":\"buffer\"}}",
                json_escape(BUFFER_CSP)
            ),
        },
    ]
}

/// Polls `/healthz` until the server answers (or the deadline passes).
///
/// # Errors
///
/// Reports the last connection failure after ~30 s of retries.
pub fn wait_ready(base_url: &str) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = String::new();
    while Instant::now() < deadline {
        match Client::connect(base_url).and_then(|mut c| c.get("/healthz")) {
            Ok(resp) if resp.status == 200 => return Ok(()),
            Ok(resp) => last = format!("healthz returned {}", resp.status),
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!("server at {base_url} never became ready: {last}"))
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    xs[xs.len() / 2]
}

fn expect_cache(resp: &csp_serve::ClientResponse, want: &str, ctx: &str) -> Result<(), String> {
    if resp.status != 200 {
        return Err(format!("{ctx}: status {} body {}", resp.status, resp.body));
    }
    match resp.header("X-Csp-Cache") {
        Some(got) if got == want => Ok(()),
        other => Err(format!("{ctx}: expected X-Csp-Cache {want}, got {other:?}")),
    }
}

/// One mixed-load round: concurrent clients each playing the palette
/// over a persistent connection. Returns `(rps, p99_ms, requests)`.
fn mixed_round(base_url: &str, palette: &[Shot]) -> Result<(f64, f64, usize), String> {
    let t0 = Instant::now();
    let latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..MIXED_CLIENTS)
            .map(|id| {
                s.spawn(move || -> Result<Vec<f64>, String> {
                    let mut client = Client::connect(base_url).map_err(|e| e.to_string())?;
                    // One untimed request absorbs connection setup so
                    // p99 measures the steady keep-alive state.
                    let warmup = &palette[id % palette.len()];
                    client
                        .post(warmup.path, &warmup.body)
                        .map_err(|e| e.to_string())?;
                    let mut times = Vec::with_capacity(MIXED_REQUESTS_PER_CLIENT);
                    for i in 0..MIXED_REQUESTS_PER_CLIENT {
                        // Per-client offset staggers the mix.
                        let shot = &palette[(id + i) % palette.len()];
                        let t = Instant::now();
                        let resp = client
                            .post(shot.path, &shot.body)
                            .map_err(|e| e.to_string())?;
                        times.push(t.elapsed().as_secs_f64() * 1e3);
                        if resp.status != 200 {
                            return Err(format!(
                                "mixed {} failed: {} {}",
                                shot.path, resp.status, resp.body
                            ));
                        }
                    }
                    Ok(times)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?;
    let wall_s = t0.elapsed().as_secs_f64();
    let mut all: Vec<f64> = latencies.into_iter().flatten().collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let total = all.len();
    let rps = total as f64 / wall_s.max(1e-9);
    let p99 = all[((total as f64 * 0.99).ceil() as usize).clamp(1, total) - 1];
    Ok((rps, p99, total))
}

/// Runs the full load suite against `base_url`; the server must already
/// be listening (see [`wait_ready`]).
///
/// # Errors
///
/// Reports transport failures, cache-header mismatches, and a
/// warm-vs-cold speedup below [`WARM_SPEEDUP_FLOOR`]×.
pub fn run_load(base_url: &str) -> Result<Vec<BenchRecord>, String> {
    wait_ready(base_url)?;
    let err = |e: std::io::Error| e.to_string();

    // Nonce so repeated driver runs against one long-lived server still
    // start cold: it moves every cold-phase content hash.
    let nonce = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);

    // -- cold phase: every sample re-keys the module ------------------
    let mut client = Client::connect(base_url).map_err(err)?;
    let mut cold_times = Vec::with_capacity(CHECK_SAMPLES);
    for i in 0..CHECK_SAMPLES {
        let source =
            format!("{PIPELINE_CSP}\ncold_probe_{nonce}_{i} = probe!0 -> cold_probe_{nonce}_{i}\n");
        let body = check_body(&source, "pipeline", "output <= input", ",\"nat_bound\":1");
        let t0 = Instant::now();
        let resp = client.post("/v1/check", &body).map_err(err)?;
        cold_times.push(t0.elapsed().as_secs_f64() * 1e3);
        expect_cache(&resp, "miss", "cold check")?;
    }
    let cold_ms = median(cold_times);

    // -- warm phase: one fixed body, hits after priming ---------------
    let warm_body = check_body(
        &format!("{PIPELINE_CSP}\nwarm_probe_{nonce} = probe!0 -> warm_probe_{nonce}\n"),
        "pipeline",
        "output <= input",
        ",\"nat_bound\":1",
    );
    let prime = client.post("/v1/check", &warm_body).map_err(err)?;
    expect_cache(&prime, "miss", "warm prime")?;
    let mut warm_times = Vec::with_capacity(CHECK_SAMPLES);
    for _ in 0..CHECK_SAMPLES {
        let t0 = Instant::now();
        let resp = client.post("/v1/check", &warm_body).map_err(err)?;
        warm_times.push(t0.elapsed().as_secs_f64() * 1e3);
        expect_cache(&resp, "hit", "warm check")?;
        if resp.body != prime.body {
            return Err("warm response body differs from the cold one".to_string());
        }
    }
    let warm_ms = median(warm_times);
    let speedup = cold_ms / warm_ms.max(1e-6);
    eprintln!("serve: cold {cold_ms:.2} ms, warm {warm_ms:.3} ms ({speedup:.1}x speedup)");
    if speedup < WARM_SPEEDUP_FLOOR {
        return Err(format!(
            "cache speedup {speedup:.1}x is below the {WARM_SPEEDUP_FLOOR}x floor \
             (cold {cold_ms:.2} ms vs warm {warm_ms:.3} ms)"
        ));
    }

    // -- mixed phase: concurrent lint/check/prove ---------------------
    let palette = mixed_palette();
    // Prime once so the phase measures the steady (warm) state the
    // cache exists to provide.
    for shot in &palette {
        let resp = client.post(shot.path, &shot.body).map_err(err)?;
        if resp.status != 200 {
            return Err(format!(
                "prime {} failed: {} {}",
                shot.path, resp.status, resp.body
            ));
        }
    }

    // Best-of-N rounds: on a shared CI box a single bad scheduling
    // window can halve measured throughput; the best round is the
    // machine's real capability and is what the gate should track.
    let mut rps = 0.0f64;
    let mut p99 = f64::INFINITY;
    let mut total = 0usize;
    for round in 0..MIXED_ROUNDS {
        let (round_rps, round_p99, round_total) = mixed_round(base_url, &palette)?;
        eprintln!(
            "serve: mixed round {}/{MIXED_ROUNDS}: {round_total} requests over \
             {MIXED_CLIENTS} connections = {round_rps:.0} rps, p99 {round_p99:.2} ms",
            round + 1
        );
        if round_rps > rps {
            rps = round_rps;
            p99 = round_p99;
            total = round_total;
        }
    }

    let no_spans: Vec<SpanAttr> = Vec::new();
    Ok(vec![
        BenchRecord {
            name: "serve/cold_check_ms".to_string(),
            wall_ms: cold_ms,
            traces: CHECK_SAMPLES as u64,
            peak_set: 0,
            engine: String::new(),
            spans: no_spans.clone(),
        },
        BenchRecord {
            name: "serve/warm_check_ms".to_string(),
            wall_ms: warm_ms,
            traces: CHECK_SAMPLES as u64,
            peak_set: speedup as u64,
            engine: String::new(),
            spans: no_spans.clone(),
        },
        BenchRecord {
            // ms per 1000 requests, so the wall-time gate treats a
            // throughput drop as the regression it is (and the number
            // sits far above the gate's 1 ms noise floor).
            name: "serve/rps_mixed".to_string(),
            wall_ms: 1e6 / rps.max(1e-9),
            traces: total as u64,
            peak_set: rps as u64,
            engine: String::new(),
            spans: no_spans.clone(),
        },
        BenchRecord {
            name: "serve/p99_ms".to_string(),
            wall_ms: p99,
            traces: total as u64,
            peak_set: 0,
            engine: String::new(),
            spans: no_spans,
        },
    ])
}
