//! Machine-readable benchmark reports and the CI regression gate.
//!
//! The `bench-json` binary emits a [`Report`] as JSON; CI re-runs the
//! same workloads on every PR and calls [`gate`] to compare the fresh
//! numbers against the committed `BENCH_baseline.json`. A bench that
//! slowed down by more than the tolerance fails the gate; one that sped
//! up past the tolerance is only a warning — the signal that the
//! baseline should be refreshed.
//!
//! The JSON schema is deliberately flat (one object per bench with
//! `name`, `wall_ms`, `traces`, `peak_set`, plus one small object per
//! attributed span) so this module can parse it back with a small
//! scanner instead of a serde dependency — the build environment is
//! offline.

use std::fmt::Write as _;

/// Per-span time attribution for one bench: where the workload's wall
/// time went, by span name. Recorded only when the bench ran with a
/// live collector (`--metrics-out`).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAttr {
    /// The span name (`fixpoint.iter`, `satcheck.explore`, …).
    pub span: String,
    /// Total inclusive nanoseconds across the workload's samples.
    pub total_ns: u64,
    /// Number of spans closed under this name.
    pub count: u64,
}

/// One benchmark's measured numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable bench identifier, e.g. `E5/fixpoint/multiplier_w3_d2`.
    pub name: String,
    /// Median wall-clock time over the samples, in milliseconds.
    pub wall_ms: f64,
    /// Number of traces produced by the workload (0 where meaningless).
    pub traces: u64,
    /// Peak trace-set size observed during the workload.
    pub peak_set: u64,
    /// The verification engine the workload ran on (`"enumerative"` /
    /// `"compiled"`), or empty for workloads where the distinction does
    /// not apply (proofs, runtime, front-end). Recorded so baselines
    /// stay comparable: an engine switch shows up as a schema-visible
    /// change, not a silent wall-time cliff.
    pub engine: String,
    /// Top spans by total time (empty when run unobserved).
    pub spans: Vec<SpanAttr>,
}

/// A full `bench-json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Samples per bench the medians were taken over.
    pub samples: usize,
    /// The per-bench records, in execution order.
    pub benches: Vec<BenchRecord>,
}

impl Report {
    /// Serialises the report to the committed JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"csp-bench-json/v1\",\n");
        let _ = writeln!(out, "  \"samples\": {},", self.samples);
        out.push_str("  \"benches\": [\n");
        for (i, b) in self.benches.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"traces\": {}, \"peak_set\": {}",
                b.name, b.wall_ms, b.traces, b.peak_set
            );
            if !b.engine.is_empty() {
                let _ = write!(out, ", \"engine\": \"{}\"", b.engine);
            }
            if b.spans.is_empty() {
                out.push('}');
            } else {
                out.push_str(", \"spans\": [\n");
                for (j, s) in b.spans.iter().enumerate() {
                    let _ = write!(
                        out,
                        "      {{\"span\": \"{}\", \"total_ns\": {}, \"count\": {}}}",
                        s.span, s.total_ns, s.count
                    );
                    out.push_str(if j + 1 < b.spans.len() { ",\n" } else { "\n" });
                }
                out.push_str("    ]}");
            }
            out.push_str(if i + 1 < self.benches.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously written by [`Report::to_json`].
    ///
    /// The scanner accepts exactly the flat schema this module writes;
    /// it is not a general JSON parser.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed record.
    pub fn from_json(src: &str) -> Result<Report, String> {
        let samples = scan_u64(src, "\"samples\"")
            .ok_or_else(|| "missing \"samples\" field".to_string())? as usize;
        let mut benches: Vec<BenchRecord> = Vec::new();
        for obj in src.split('{').skip(1) {
            if obj.contains("\"wall_ms\"") {
                let name = scan_string(obj, "\"name\"")
                    .ok_or_else(|| format!("bench record without name: {obj:.60}"))?;
                let wall_ms = scan_f64(obj, "\"wall_ms\"")
                    .ok_or_else(|| format!("bench `{name}` without wall_ms"))?;
                let traces = scan_u64(obj, "\"traces\"").unwrap_or(0);
                let peak_set = scan_u64(obj, "\"peak_set\"").unwrap_or(0);
                benches.push(BenchRecord {
                    name,
                    wall_ms,
                    traces,
                    peak_set,
                    engine: scan_string(obj, "\"engine\"").unwrap_or_default(),
                    spans: Vec::new(),
                });
            } else if obj.contains("\"total_ns\"") {
                // A span-attribution object: belongs to the preceding
                // bench record.
                let bench = benches
                    .last_mut()
                    .ok_or_else(|| format!("span attribution before any bench: {obj:.60}"))?;
                let span = scan_string(obj, "\"span\"")
                    .ok_or_else(|| format!("span attribution without span name: {obj:.60}"))?;
                bench.spans.push(SpanAttr {
                    span,
                    total_ns: scan_u64(obj, "\"total_ns\"").unwrap_or(0),
                    count: scan_u64(obj, "\"count\"").unwrap_or(0),
                });
            }
        }
        if benches.is_empty() {
            return Err("no bench records found".to_string());
        }
        Ok(Report { samples, benches })
    }
}

fn scan_after<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let at = src.find(key)? + key.len();
    let rest = src[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    Some(rest)
}

fn scan_string(src: &str, key: &str) -> Option<String> {
    let rest = scan_after(src, key)?.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn scan_f64(src: &str, key: &str) -> Option<f64> {
    let rest = scan_after(src, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scan_u64(src: &str, key: &str) -> Option<u64> {
    scan_f64(src, key).map(|f| f as u64)
}

/// Verdict of comparing one bench against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// Slower than baseline by more than the tolerance — fails the gate.
    Regression,
    /// Faster than baseline by more than the tolerance — refresh the
    /// committed baseline to tighten the gate.
    Improvement,
    /// Present in only one of the two reports.
    Unmatched,
}

/// One span named as responsible for a bench regression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanCulprit {
    /// The regressing span name.
    pub span: String,
    /// How much more time it took than in the baseline, in ns.
    pub delta_ns: i64,
    /// Its baseline total, for relative reporting (0 when new).
    pub baseline_ns: u64,
}

/// One line of the gate comparison.
#[derive(Debug, Clone)]
pub struct GateLine {
    /// Bench name.
    pub name: String,
    /// Baseline median, if the bench exists in the baseline.
    pub baseline_ms: Option<f64>,
    /// Current median, if the bench exists in the current report.
    pub current_ms: Option<f64>,
    /// The comparison verdict.
    pub verdict: Verdict,
    /// For a [`Verdict::Regression`] with span attribution on both
    /// sides: the spans whose time grew the most, worst first (at most
    /// three). Empty otherwise.
    pub culprits: Vec<SpanCulprit>,
}

/// Result of gating a fresh report against the committed baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-bench comparison lines, baseline order first.
    pub lines: Vec<GateLine>,
    /// The relative tolerance the gate ran with (e.g. `0.30`).
    pub tolerance: f64,
}

impl GateReport {
    /// True when no bench regressed past the tolerance.
    pub fn passed(&self) -> bool {
        !self.lines.iter().any(|l| l.verdict == Verdict::Regression)
    }

    /// The benches that improved past the tolerance (baseline refresh
    /// candidates).
    pub fn improvements(&self) -> Vec<&GateLine> {
        self.lines
            .iter()
            .filter(|l| l.verdict == Verdict::Improvement)
            .collect()
    }
}

/// Compares `current` to `baseline` with a relative wall-time
/// `tolerance` (0.30 = ±30%). Floors both sides at one millisecond so
/// sub-millisecond noise cannot trip the gate.
pub fn gate(baseline: &Report, current: &Report, tolerance: f64) -> GateReport {
    let mut lines = Vec::new();
    for b in &baseline.benches {
        let cur = current.benches.iter().find(|c| c.name == b.name);
        let line = match cur {
            None => GateLine {
                name: b.name.clone(),
                baseline_ms: Some(b.wall_ms),
                current_ms: None,
                verdict: Verdict::Unmatched,
                culprits: Vec::new(),
            },
            Some(c) => {
                let base = b.wall_ms.max(1.0);
                let now = c.wall_ms.max(1.0);
                let verdict = if now > base * (1.0 + tolerance) {
                    Verdict::Regression
                } else if now < base * (1.0 - tolerance) {
                    Verdict::Improvement
                } else {
                    Verdict::Ok
                };
                let culprits = if verdict == Verdict::Regression {
                    top_regressing_spans(b, c)
                } else {
                    Vec::new()
                };
                GateLine {
                    name: b.name.clone(),
                    baseline_ms: Some(b.wall_ms),
                    current_ms: Some(c.wall_ms),
                    verdict,
                    culprits,
                }
            }
        };
        lines.push(line);
    }
    for c in &current.benches {
        if !baseline.benches.iter().any(|b| b.name == c.name) {
            lines.push(GateLine {
                name: c.name.clone(),
                baseline_ms: None,
                current_ms: Some(c.wall_ms),
                verdict: Verdict::Unmatched,
                culprits: Vec::new(),
            });
        }
    }
    GateReport { lines, tolerance }
}

/// The spans whose total time grew the most between two attributed
/// records, worst first, capped at three. Spans that shrank (or are
/// attribution-free) never appear — the point is to *name* a
/// regression, not to inventory it.
fn top_regressing_spans(baseline: &BenchRecord, current: &BenchRecord) -> Vec<SpanCulprit> {
    let mut culprits: Vec<SpanCulprit> = current
        .spans
        .iter()
        .map(|c| {
            let base = baseline
                .spans
                .iter()
                .find(|b| b.span == c.span)
                .map_or(0, |b| b.total_ns);
            SpanCulprit {
                span: c.span.clone(),
                delta_ns: c.total_ns as i64 - base as i64,
                baseline_ns: base,
            }
        })
        .filter(|s| s.delta_ns > 0)
        .collect();
    culprits.sort_by_key(|s| (std::cmp::Reverse(s.delta_ns), s.span.clone()));
    culprits.truncate(3);
    culprits
}

/// One summarized bench run, as appended to `BENCH_history.jsonl` —
/// the recorded perf trajectory (`csp bench report` prints it).
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// Wall-clock timestamp of the run, milliseconds since the epoch
    /// (0 when unknown).
    pub unix_ms: u64,
    /// Samples per bench the medians were taken over.
    pub samples: usize,
    /// Sum of all bench medians, in milliseconds.
    pub total_wall_ms: f64,
    /// Per-bench medians, in execution order.
    pub benches: Vec<(String, f64)>,
    /// Per-bench verification engine, for the benches that recorded one
    /// (see [`BenchRecord::engine`]). Rows written before the engine
    /// split parse back with this empty.
    pub engines: Vec<(String, String)>,
}

impl HistoryRow {
    /// Summarizes a report into one history row.
    pub fn from_report(report: &Report, unix_ms: u64) -> HistoryRow {
        HistoryRow {
            unix_ms,
            samples: report.samples,
            total_wall_ms: report.benches.iter().map(|b| b.wall_ms).sum(),
            benches: report
                .benches
                .iter()
                .map(|b| (b.name.clone(), b.wall_ms))
                .collect(),
            engines: report
                .benches
                .iter()
                .filter(|b| !b.engine.is_empty())
                .map(|b| (b.name.clone(), b.engine.clone()))
                .collect(),
        }
    }

    /// Renders the row as one `csp-bench-history/v1` JSONL line (no
    /// trailing newline).
    pub fn to_jsonl_line(&self) -> String {
        let mut out = format!(
            "{{\"schema\": \"csp-bench-history/v1\", \"unix_ms\": {}, \"samples\": {}, \
             \"total_wall_ms\": {:.3}, \"benches\": {{",
            self.unix_ms, self.samples, self.total_wall_ms
        );
        for (i, (name, ms)) in self.benches.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {ms:.3}");
        }
        out.push('}');
        if !self.engines.is_empty() {
            out.push_str(", \"engines\": {");
            for (i, (name, engine)) in self.engines.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{name}\": \"{engine}\"");
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Parses a `BENCH_history.jsonl` file (one [`HistoryRow`] per line;
/// blank lines skipped).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_history(src: &str) -> Result<Vec<HistoryRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("history line {}: {what}", i + 1);
        let benches_at = line
            .find("\"benches\"")
            .ok_or_else(|| err("missing benches map"))?;
        let map = scan_after(&line[benches_at..], "\"benches\"")
            .and_then(|rest| rest.strip_prefix('{'))
            .ok_or_else(|| err("benches is not an object"))?;
        let map = &map[..map
            .find('}')
            .ok_or_else(|| err("unterminated benches map"))?];
        let mut benches = Vec::new();
        for pair in map.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (name, ms) = pair
                .split_once(':')
                .ok_or_else(|| err("bench entry without `:`"))?;
            let name = name.trim().trim_matches('"').to_string();
            let ms: f64 = ms
                .trim()
                .parse()
                .map_err(|_| err("bench entry with non-numeric median"))?;
            benches.push((name, ms));
        }
        // The engines map is optional — rows written before the engine
        // split simply do not have one.
        let mut engines = Vec::new();
        if let Some(at) = line.find("\"engines\"") {
            let map = scan_after(&line[at..], "\"engines\"")
                .and_then(|rest| rest.strip_prefix('{'))
                .ok_or_else(|| err("engines is not an object"))?;
            let map = &map[..map
                .find('}')
                .ok_or_else(|| err("unterminated engines map"))?];
            for pair in map.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let (name, engine) = pair
                    .split_once(':')
                    .ok_or_else(|| err("engine entry without `:`"))?;
                engines.push((
                    name.trim().trim_matches('"').to_string(),
                    engine.trim().trim_matches('"').to_string(),
                ));
            }
        }
        rows.push(HistoryRow {
            unix_ms: scan_u64(line, "\"unix_ms\"").unwrap_or(0),
            samples: scan_u64(line, "\"samples\"").unwrap_or(0) as usize,
            total_wall_ms: scan_f64(line, "\"total_wall_ms\"").unwrap_or(0.0),
            benches,
            engines,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, f64)]) -> Report {
        Report {
            samples: 3,
            benches: pairs
                .iter()
                .map(|&(name, wall_ms)| BenchRecord {
                    name: name.to_string(),
                    wall_ms,
                    traces: 10,
                    peak_set: 20,
                    engine: String::new(),
                    spans: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = report(&[("E5/fixpoint/multiplier_w3_d2", 123.456), ("P1/enum", 7.0)]);
        let parsed = Report::from_json(&r.to_json()).expect("parses");
        assert_eq!(parsed.samples, 3);
        assert_eq!(parsed.benches.len(), 2);
        assert_eq!(parsed.benches[0].name, "E5/fixpoint/multiplier_w3_d2");
        assert!((parsed.benches[0].wall_ms - 123.456).abs() < 1e-9);
        assert_eq!(parsed.benches[1].traces, 10);
        assert_eq!(parsed.benches[1].peak_set, 20);
    }

    #[test]
    fn synthetic_two_x_slowdown_fails_the_gate() {
        let base = report(&[("a", 100.0), ("b", 40.0)]);
        let slow = report(&[("a", 200.0), ("b", 41.0)]);
        let g = gate(&base, &slow, 0.30);
        assert!(!g.passed());
        assert_eq!(g.lines[0].verdict, Verdict::Regression);
        assert_eq!(g.lines[1].verdict, Verdict::Ok);
    }

    #[test]
    fn identical_numbers_pass_the_gate() {
        let base = report(&[("a", 100.0), ("b", 40.0)]);
        let g = gate(&base, &base, 0.30);
        assert!(g.passed());
        assert!(g.improvements().is_empty());
    }

    #[test]
    fn improvement_warns_but_passes() {
        let base = report(&[("a", 100.0)]);
        let fast = report(&[("a", 20.0)]);
        let g = gate(&base, &fast, 0.30);
        assert!(g.passed());
        assert_eq!(g.improvements().len(), 1);
    }

    #[test]
    fn unmatched_benches_pass_but_are_flagged() {
        let base = report(&[("old", 10.0)]);
        let cur = report(&[("new", 10.0)]);
        let g = gate(&base, &cur, 0.30);
        assert!(g.passed());
        assert_eq!(g.lines.len(), 2);
        assert!(g.lines.iter().all(|l| l.verdict == Verdict::Unmatched));
    }

    #[test]
    fn sub_millisecond_noise_is_floored() {
        let base = report(&[("tiny", 0.02)]);
        let cur = report(&[("tiny", 0.9)]);
        // 45× slower in raw ratio, but both under the 1 ms floor.
        assert!(gate(&base, &cur, 0.30).passed());
    }

    fn with_spans(mut r: Report, spans: &[(&str, u64, u64)]) -> Report {
        for b in &mut r.benches {
            b.spans = spans
                .iter()
                .map(|&(span, total_ns, count)| SpanAttr {
                    span: span.to_string(),
                    total_ns,
                    count,
                })
                .collect();
        }
        r
    }

    #[test]
    fn span_attribution_round_trips_through_json() {
        let r = with_spans(
            report(&[("E5/fixpoint/pipeline_d4", 50.0)]),
            &[
                ("fixpoint.iter", 30_000_000, 12),
                ("fixpoint", 48_000_000, 1),
            ],
        );
        let parsed = Report::from_json(&r.to_json()).expect("parses");
        assert_eq!(parsed.benches[0].spans, r.benches[0].spans);
        // A report without attribution still parses (empty spans).
        let plain = report(&[("a", 1.0)]);
        assert_eq!(
            Report::from_json(&plain.to_json()).unwrap().benches[0].spans,
            Vec::new()
        );
    }

    /// The acceptance scenario: a doctored row slows one span down and
    /// the gate names it, worst first.
    #[test]
    fn gate_names_the_top_regressing_span() {
        let base = with_spans(
            report(&[("E5/fixpoint/pipeline_d4", 100.0)]),
            &[
                ("fixpoint.iter", 60_000_000, 12),
                ("fixpoint.key", 30_000_000, 48),
            ],
        );
        // Doctored: fixpoint.iter tripled, fixpoint.key grew slightly.
        let slow = with_spans(
            report(&[("E5/fixpoint/pipeline_d4", 210.0)]),
            &[
                ("fixpoint.iter", 180_000_000, 12),
                ("fixpoint.key", 31_000_000, 48),
            ],
        );
        let g = gate(&base, &slow, 0.30);
        assert!(!g.passed());
        let culprits = &g.lines[0].culprits;
        assert_eq!(culprits[0].span, "fixpoint.iter");
        assert_eq!(culprits[0].delta_ns, 120_000_000);
        assert_eq!(culprits[0].baseline_ns, 60_000_000);
        assert_eq!(culprits[1].span, "fixpoint.key");
        // Within-tolerance benches carry no culprits.
        let ok = gate(&base, &base, 0.30);
        assert!(ok.lines[0].culprits.is_empty());
    }

    #[test]
    fn culprits_are_capped_and_exclude_shrinking_spans() {
        let base = with_spans(
            report(&[("a", 100.0)]),
            &[
                ("s1", 10, 1),
                ("s2", 20, 1),
                ("s3", 30, 1),
                ("s4", 40, 1),
                ("s5", 1000, 1),
            ],
        );
        let slow = with_spans(
            report(&[("a", 200.0)]),
            &[
                ("s1", 50, 1),
                ("s2", 50, 1),
                ("s3", 50, 1),
                ("s4", 50, 1),
                ("s5", 10, 1),
            ],
        );
        let g = gate(&base, &slow, 0.30);
        let culprits = &g.lines[0].culprits;
        assert_eq!(culprits.len(), 3);
        assert!(culprits.iter().all(|c| c.delta_ns > 0 && c.span != "s5"));
        assert_eq!(culprits[0].span, "s1", "largest delta first");
    }

    #[test]
    fn engine_round_trips_and_legacy_records_parse() {
        let mut r = report(&[("lts/pipeline_d8", 3.0), ("P3/proofs/all_scripts", 9.0)]);
        r.benches[0].engine = "compiled".to_string();
        let parsed = Report::from_json(&r.to_json()).expect("parses");
        assert_eq!(parsed.benches[0].engine, "compiled");
        assert_eq!(
            parsed.benches[1].engine, "",
            "engine-free rows stay engine-free"
        );
        // A pre-engine report (no "engine" members) still parses.
        let legacy = report(&[("a", 1.0)]).to_json();
        assert!(!legacy.contains("\"engine\""));
        assert_eq!(Report::from_json(&legacy).unwrap().benches[0].engine, "");
        // The history row carries the engines map for the recorded rows
        // only, and a legacy history line parses back with none.
        let row = HistoryRow::from_report(&r, 7);
        assert_eq!(
            row.engines,
            vec![("lts/pipeline_d8".to_string(), "compiled".to_string())]
        );
        let rows = parse_history(&format!("{}\n", row.to_jsonl_line())).expect("parses");
        assert_eq!(rows[0], row);
        let legacy_line = "{\"schema\": \"csp-bench-history/v1\", \"unix_ms\": 1, \
             \"samples\": 3, \"total_wall_ms\": 1.000, \"benches\": {\"a\": 1.000}}";
        let rows = parse_history(legacy_line).expect("parses");
        assert!(rows[0].engines.is_empty());
    }

    #[test]
    fn history_rows_round_trip_through_jsonl() {
        let r = report(&[("a", 10.5), ("b", 2.25)]);
        let row = HistoryRow::from_report(&r, 1_700_000_000_000);
        assert!((row.total_wall_ms - 12.75).abs() < 1e-9);
        let mut file = String::new();
        file.push_str(&row.to_jsonl_line());
        file.push('\n');
        file.push_str(&HistoryRow::from_report(&r, 1_700_000_600_000).to_jsonl_line());
        file.push('\n');
        let rows = parse_history(&file).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], row);
        assert_eq!(rows[1].unix_ms, 1_700_000_600_000);
        assert_eq!(
            rows[1].benches,
            vec![("a".to_string(), 10.5), ("b".to_string(), 2.25)]
        );
    }
}
