//! Machine-readable benchmark reports and the CI regression gate.
//!
//! The `bench-json` binary emits a [`Report`] as JSON; CI re-runs the
//! same workloads on every PR and calls [`gate`] to compare the fresh
//! numbers against the committed `BENCH_baseline.json`. A bench that
//! slowed down by more than the tolerance fails the gate; one that sped
//! up past the tolerance is only a warning — the signal that the
//! baseline should be refreshed.
//!
//! The JSON schema is deliberately flat (one object per bench with
//! `name`, `wall_ms`, `traces`, `peak_set`) so this module can parse it
//! back with a small scanner instead of a serde dependency — the build
//! environment is offline.

use std::fmt::Write as _;

/// One benchmark's measured numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable bench identifier, e.g. `E5/fixpoint/multiplier_w3_d2`.
    pub name: String,
    /// Median wall-clock time over the samples, in milliseconds.
    pub wall_ms: f64,
    /// Number of traces produced by the workload (0 where meaningless).
    pub traces: u64,
    /// Peak trace-set size observed during the workload.
    pub peak_set: u64,
}

/// A full `bench-json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Samples per bench the medians were taken over.
    pub samples: usize,
    /// The per-bench records, in execution order.
    pub benches: Vec<BenchRecord>,
}

impl Report {
    /// Serialises the report to the committed JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"csp-bench-json/v1\",\n");
        let _ = writeln!(out, "  \"samples\": {},", self.samples);
        out.push_str("  \"benches\": [\n");
        for (i, b) in self.benches.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"traces\": {}, \"peak_set\": {}}}",
                b.name, b.wall_ms, b.traces, b.peak_set
            );
            out.push_str(if i + 1 < self.benches.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously written by [`Report::to_json`].
    ///
    /// The scanner accepts exactly the flat schema this module writes;
    /// it is not a general JSON parser.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed record.
    pub fn from_json(src: &str) -> Result<Report, String> {
        let samples = scan_u64(src, "\"samples\"")
            .ok_or_else(|| "missing \"samples\" field".to_string())? as usize;
        let mut benches = Vec::new();
        for obj in src.split('{').skip(1) {
            if !obj.contains("\"wall_ms\"") {
                continue; // header object, not a bench record
            }
            let name = scan_string(obj, "\"name\"")
                .ok_or_else(|| format!("bench record without name: {obj:.60}"))?;
            let wall_ms = scan_f64(obj, "\"wall_ms\"")
                .ok_or_else(|| format!("bench `{name}` without wall_ms"))?;
            let traces = scan_u64(obj, "\"traces\"").unwrap_or(0);
            let peak_set = scan_u64(obj, "\"peak_set\"").unwrap_or(0);
            benches.push(BenchRecord {
                name,
                wall_ms,
                traces,
                peak_set,
            });
        }
        if benches.is_empty() {
            return Err("no bench records found".to_string());
        }
        Ok(Report { samples, benches })
    }
}

fn scan_after<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let at = src.find(key)? + key.len();
    let rest = src[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    Some(rest)
}

fn scan_string(src: &str, key: &str) -> Option<String> {
    let rest = scan_after(src, key)?.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn scan_f64(src: &str, key: &str) -> Option<f64> {
    let rest = scan_after(src, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scan_u64(src: &str, key: &str) -> Option<u64> {
    scan_f64(src, key).map(|f| f as u64)
}

/// Verdict of comparing one bench against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// Slower than baseline by more than the tolerance — fails the gate.
    Regression,
    /// Faster than baseline by more than the tolerance — refresh the
    /// committed baseline to tighten the gate.
    Improvement,
    /// Present in only one of the two reports.
    Unmatched,
}

/// One line of the gate comparison.
#[derive(Debug, Clone)]
pub struct GateLine {
    /// Bench name.
    pub name: String,
    /// Baseline median, if the bench exists in the baseline.
    pub baseline_ms: Option<f64>,
    /// Current median, if the bench exists in the current report.
    pub current_ms: Option<f64>,
    /// The comparison verdict.
    pub verdict: Verdict,
}

/// Result of gating a fresh report against the committed baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-bench comparison lines, baseline order first.
    pub lines: Vec<GateLine>,
    /// The relative tolerance the gate ran with (e.g. `0.30`).
    pub tolerance: f64,
}

impl GateReport {
    /// True when no bench regressed past the tolerance.
    pub fn passed(&self) -> bool {
        !self.lines.iter().any(|l| l.verdict == Verdict::Regression)
    }

    /// The benches that improved past the tolerance (baseline refresh
    /// candidates).
    pub fn improvements(&self) -> Vec<&GateLine> {
        self.lines
            .iter()
            .filter(|l| l.verdict == Verdict::Improvement)
            .collect()
    }
}

/// Compares `current` to `baseline` with a relative wall-time
/// `tolerance` (0.30 = ±30%). Floors both sides at one millisecond so
/// sub-millisecond noise cannot trip the gate.
pub fn gate(baseline: &Report, current: &Report, tolerance: f64) -> GateReport {
    let mut lines = Vec::new();
    for b in &baseline.benches {
        let cur = current.benches.iter().find(|c| c.name == b.name);
        let line = match cur {
            None => GateLine {
                name: b.name.clone(),
                baseline_ms: Some(b.wall_ms),
                current_ms: None,
                verdict: Verdict::Unmatched,
            },
            Some(c) => {
                let base = b.wall_ms.max(1.0);
                let now = c.wall_ms.max(1.0);
                let verdict = if now > base * (1.0 + tolerance) {
                    Verdict::Regression
                } else if now < base * (1.0 - tolerance) {
                    Verdict::Improvement
                } else {
                    Verdict::Ok
                };
                GateLine {
                    name: b.name.clone(),
                    baseline_ms: Some(b.wall_ms),
                    current_ms: Some(c.wall_ms),
                    verdict,
                }
            }
        };
        lines.push(line);
    }
    for c in &current.benches {
        if !baseline.benches.iter().any(|b| b.name == c.name) {
            lines.push(GateLine {
                name: c.name.clone(),
                baseline_ms: None,
                current_ms: Some(c.wall_ms),
                verdict: Verdict::Unmatched,
            });
        }
    }
    GateReport { lines, tolerance }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, f64)]) -> Report {
        Report {
            samples: 3,
            benches: pairs
                .iter()
                .map(|&(name, wall_ms)| BenchRecord {
                    name: name.to_string(),
                    wall_ms,
                    traces: 10,
                    peak_set: 20,
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = report(&[("E5/fixpoint/multiplier_w3_d2", 123.456), ("P1/enum", 7.0)]);
        let parsed = Report::from_json(&r.to_json()).expect("parses");
        assert_eq!(parsed.samples, 3);
        assert_eq!(parsed.benches.len(), 2);
        assert_eq!(parsed.benches[0].name, "E5/fixpoint/multiplier_w3_d2");
        assert!((parsed.benches[0].wall_ms - 123.456).abs() < 1e-9);
        assert_eq!(parsed.benches[1].traces, 10);
        assert_eq!(parsed.benches[1].peak_set, 20);
    }

    #[test]
    fn synthetic_two_x_slowdown_fails_the_gate() {
        let base = report(&[("a", 100.0), ("b", 40.0)]);
        let slow = report(&[("a", 200.0), ("b", 41.0)]);
        let g = gate(&base, &slow, 0.30);
        assert!(!g.passed());
        assert_eq!(g.lines[0].verdict, Verdict::Regression);
        assert_eq!(g.lines[1].verdict, Verdict::Ok);
    }

    #[test]
    fn identical_numbers_pass_the_gate() {
        let base = report(&[("a", 100.0), ("b", 40.0)]);
        let g = gate(&base, &base, 0.30);
        assert!(g.passed());
        assert!(g.improvements().is_empty());
    }

    #[test]
    fn improvement_warns_but_passes() {
        let base = report(&[("a", 100.0)]);
        let fast = report(&[("a", 20.0)]);
        let g = gate(&base, &fast, 0.30);
        assert!(g.passed());
        assert_eq!(g.improvements().len(), 1);
    }

    #[test]
    fn unmatched_benches_pass_but_are_flagged() {
        let base = report(&[("old", 10.0)]);
        let cur = report(&[("new", 10.0)]);
        let g = gate(&base, &cur, 0.30);
        assert!(g.passed());
        assert_eq!(g.lines.len(), 2);
        assert!(g.lines.iter().all(|l| l.verdict == Verdict::Unmatched));
    }

    #[test]
    fn sub_millisecond_noise_is_floored() {
        let base = report(&[("tiny", 0.02)]);
        let cur = report(&[("tiny", 0.9)]);
        // 45× slower in raw ratio, but both under the 1 ms floor.
        assert!(gate(&base, &cur, 0.30).passed());
    }
}
