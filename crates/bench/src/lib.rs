//! # csp-bench
//!
//! The benchmark and experiment harness regenerating every table and
//! figure of Zhou & Hoare (1981), per the experiment index in
//! `DESIGN.md`:
//!
//! * `cargo run -p csp-bench --bin table1` — **T1**: prints the checked
//!   Table 1 proof;
//! * `cargo run -p csp-bench --bin figures` — **F1/F2**: regenerates the
//!   paper's two network figures from the parsed definitions;
//! * `cargo run -p csp-bench --bin experiments` — **E1–E7**: runs every
//!   experiment and prints paper-claim vs. measured-result rows;
//! * `cargo bench -p csp-bench` — the Criterion performance
//!   characterisation (**P1–P4** plus per-artifact regeneration benches).

#![forbid(unsafe_code)]

pub mod load;
pub mod report;

use csp_core::prelude::*;

/// The standard pipeline workbench (universe `NAT ↾ {0,1}`).
pub fn pipeline_workbench() -> Workbench {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp_core::examples::PIPELINE_SRC)
        .expect("built-in pipeline parses");
    wb
}

/// The standard protocol workbench (`M = {0,1}`).
pub fn protocol_workbench() -> Workbench {
    let mut wb = Workbench::new()
        .with_universe(Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]));
    wb.define_source(csp_core::examples::PROTOCOL_SRC)
        .expect("built-in protocol parses");
    wb
}

/// A bounded-rows multiplier workbench of the given width (rows over
/// `{0..1}`, columns over a NAT bound covering all partial sums for the
/// weight vector `v = (1, 2, …, width)`).
pub fn multiplier_workbench(width: usize) -> Workbench {
    let v: Vec<i64> = (1..=width as i64).collect();
    let bound = v.iter().sum::<i64>() as u32; // rows ≤ 1 ⇒ sums ≤ Σv
    let mut wb = Workbench::new().with_universe(Universe::new(bound.max(1)));
    wb.bind_vector("v", &v);
    let mults = (1..=width)
        .map(|i| format!("mult[{i}]"))
        .collect::<Vec<_>>()
        .join(" || ");
    wb.define_source(&format!(
        "mult[i:1..{width}] = row[i]?x:{{0..1}} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]\n\
         zeroes = col[0]!0 -> zeroes\n\
         last = col[{width}]?y:NAT -> output!y -> last\n\
         network = zeroes || {mults} || last\n\
         multiplier = chan col[0..{width}]; network\n",
    ))
    .expect("generated multiplier parses");
    wb
}

/// The full scalar-product invariant of §2 for a given width.
pub fn multiplier_invariant(width: usize) -> String {
    let sum = (1..=width)
        .map(|j| format!("v[{j}]*row[{j}][i]"))
        .collect::<Vec<_>>()
        .join(" + ");
    format!("forall i:NAT. 1 <= i and i <= #output => output[i] == {sum}")
}

/// An `n`-stage copier chain workbench (generalised pipeline).
pub fn chain_workbench(stages: usize) -> Workbench {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(&csp_core::examples::pipeline_src(stages))
        .expect("generated chain parses");
    wb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_workbenches_are_clean() {
        assert!(pipeline_workbench().lint().is_empty());
        assert!(protocol_workbench().lint().is_empty());
        for w in 1..=4 {
            assert!(multiplier_workbench(w).lint().is_empty(), "width {w}");
        }
        for n in 1..=4 {
            assert!(chain_workbench(n).lint().is_empty(), "stages {n}");
        }
    }

    #[test]
    fn multiplier_invariant_parses_for_each_width() {
        for w in 1..=3 {
            let wb = multiplier_workbench(w);
            wb.assertion(&multiplier_invariant(w))
                .unwrap_or_else(|e| panic!("width {w}: {e}"));
        }
    }
}
