//! Experiments **E1–E7**: runs every evaluation artifact of the paper
//! and prints a paper-claim vs. measured-result row for each. The same
//! rows are recorded in `EXPERIMENTS.md`.
//!
//! `cargo run -p csp-bench --bin experiments`

use csp_bench::{
    multiplier_invariant, multiplier_workbench, pipeline_workbench, protocol_workbench,
};
use csp_core::prelude::*;
use csp_core::proofs;
use csp_core::{cross_validate_scripts, stop_choice_identity, validate_all_rules};

fn row(id: &str, paper: &str, measured: &str, ok: bool) {
    println!(
        "[{}] {:<4} {:<52} {}",
        if ok { "ok" } else { "!!" },
        id,
        paper,
        measured
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Zhou & Hoare (1981) — experiment suite ==\n");

    // ---------------------------------------------------------- E1 ----
    let wb = pipeline_workbench();
    for (name, claim) in [
        ("copier", "wire <= input"),
        ("recopier", "output <= wire"),
        ("copier", "#input <= #wire + 1"),
        ("pipeline", "output <= input"),
    ] {
        let verdict = wb.check_sat(name, claim, 4)?;
        let measured = match &verdict {
            SatResult::Holds {
                traces_checked,
                depth,
                engine,
            } => {
                format!("holds on {traces_checked} traces (depth {depth}, engine {engine})")
            }
            SatResult::Counterexample { trace, .. } => format!("REFUTED by {trace}"),
        };
        row(
            "E1",
            &format!("{name} sat {claim}"),
            &measured,
            verdict.holds(),
        );
    }

    // ---------------------------------------------------------- T1 ----
    let table1 = proofs::protocol::sender_table1();
    let report = table1.check()?;
    row(
        "T1",
        "Table 1: sender sat f(wire) <= input",
        &format!(
            "proof checks: {} rule applications, {} pure premises",
            report.rule_count(),
            report.obligations.len()
        ),
        true,
    );

    // ---------------------------------------------------------- E2 ----
    let receiver = proofs::protocol::receiver_exercise();
    let report = receiver.check()?;
    row(
        "E2",
        "§2.2(2) exercise: receiver sat output <= f(wire)",
        &format!("proof completed & checks ({} steps)", report.rule_count()),
        true,
    );
    let pwb = protocol_workbench();
    let verdict = pwb.check_sat("receiver", "output <= f(wire)", 4)?;
    row(
        "E2",
        "  …and model-checked",
        &format!("holds: {}", verdict.holds()),
        verdict.holds(),
    );

    // ---------------------------------------------------------- E3 ----
    let protocol = proofs::protocol::protocol_output_le_input();
    let report = protocol.check()?;
    row(
        "E3",
        "§2.2(3): protocol sat output <= input (6-step proof)",
        &format!("proof checks ({} steps)", report.rule_count()),
        true,
    );
    let verdict = pwb.check_sat("protocol", "output <= input", 3)?;
    row(
        "E3",
        "  …and model-checked",
        &format!("holds: {}", verdict.holds()),
        verdict.holds(),
    );

    // ---------------------------------------------------------- E4 ----
    let mwb = multiplier_workbench(3);
    let inv = multiplier_invariant(3);
    let verdict = mwb.check_sat("multiplier", &inv, 4)?;
    row(
        "E4",
        "§2: multiplier output_i = Σ v[j]·row[j]_i",
        &format!("model-checked to depth 4: holds = {}", verdict.holds()),
        verdict.holds(),
    );

    // ---------------------------------------------------------- E5 ----
    let run = wb.fixpoint(4, 20)?;
    let growth = run.growth_of(&("copier".to_string(), vec![]));
    row(
        "E5",
        "§3.3 fixpoint: a0 ⊆ a1 ⊆ … converges",
        &format!(
            "copier iterate sizes {:?}, converged at a{}",
            growth,
            run.converged_at.map(|i| i + 1).unwrap_or(0),
        ),
        run.converged_at.is_some(),
    );

    // ---------------------------------------------------------- E6 ----
    let reports = validate_all_rules(2026, 30)?;
    let all_sound = reports.iter().all(|r| r.sound());
    let informative: usize = reports.iter().map(|r| r.premises_held).sum();
    row(
        "E6",
        "§3.4: all 10 inference rules sound in the model",
        &format!(
            "{} rules × 30 seeded instances, {informative} informative, 0 violations = {}",
            reports.len(),
            all_sound
        ),
        all_sound,
    );
    for r in &reports {
        println!(
            "        {:<18} {:>3} instances, {:>3} with premises held, {} violations",
            r.rule,
            r.instances,
            r.premises_held,
            r.violations.len()
        );
    }
    let cross = cross_validate_scripts(3)?;
    let agreed = cross.iter().all(|c| c.agreed());
    row(
        "E6",
        "  …and every proof script confirmed by the model",
        &format!(
            "{} scripts cross-validated, all agree = {agreed}",
            cross.len()
        ),
        agreed,
    );

    // ---------------------------------------------------------- E7 ----
    let uni = Universe::new(1);
    let mut all_equal = true;
    let mut sizes = Vec::new();
    for name in ["copier", "pipeline"] {
        let (a, b) = stop_choice_identity(&csp_core::examples::pipeline(), &uni, name, 4)?;
        all_equal &= a == b;
        sizes.push(format!("{name}: {a}={b}"));
    }
    row(
        "E7",
        "§4 defect: STOP | P = P in the model",
        &format!("trace-set sizes equal ({})", sizes.join(", ")),
        all_equal,
    );

    println!("\nAll experiments reproduce the paper's claims.");
    Ok(())
}
