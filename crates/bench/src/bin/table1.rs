//! Experiment **T1**: regenerates Table 1 of the paper — the
//! natural-deduction proof that `sender sat f(wire) ≤ input` — by
//! checking the encoded proof tree and printing every step and every
//! discharged pure premise.
//!
//! `cargo run -p csp-bench --bin table1`

use csp_core::proofs::protocol::sender_table1;
use csp_core::render_report;

fn main() {
    let script = sender_table1();
    let report = script
        .check()
        .expect("the paper's Table 1 proof must check");
    println!("{}", render_report(script.paper_ref, &report));
    println!(
        "Table 1 regenerated: {} rule applications, {} pure premises, all discharged.",
        report.rule_count(),
        report.obligations.len()
    );
}
