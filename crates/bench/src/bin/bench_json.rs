//! `bench-json` — the machine-readable perf baseline (P1–P4 + E1–E7).
//!
//! Runs every paper workload at fixed sizes, measures median wall time
//! plus semantic size metrics (trace counts, peak set sizes), and emits
//! `csp-bench-json/v1` JSON. CI runs this on every PR and gates the
//! numbers against the committed `BENCH_baseline.json`.
//!
//! ```text
//! cargo run --release -p csp-bench --bin bench-json                 # print JSON
//! cargo run --release -p csp-bench --bin bench-json -- --out BENCH_baseline.json
//! cargo run --release -p csp-bench --bin bench-json -- \
//!     --compare BENCH_baseline.json --tolerance 0.30               # CI gate
//! cargo run --release -p csp-bench --bin bench-json -- \
//!     --metrics-out bench-events.jsonl                 # + span event log
//! ```
//!
//! `--metrics-out` activates a shared collector across all workloads and
//! writes the recorded span stream as JSONL, so the CI gate runs with
//! observability enabled — the ±30% tolerance therefore also bounds the
//! instrumentation overhead.
//!
//! `--serve URL|spawn` switches to the **server load driver**: instead
//! of the in-process workloads it drives a running `csp serve` instance
//! (or spawns one in-process with `spawn`) through the HTTP API and
//! reports `serve/cold_check_ms`, `serve/warm_check_ms`,
//! `serve/rps_mixed` (stored as ms per 1000 requests so the shared
//! wall-time gate catches throughput drops) and `serve/p99_ms`. The same
//! `--out`/`--compare`/`--tolerance` gate path applies. The driver
//! itself enforces the ≥5× warm-over-cold cache speedup.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use csp_bench::report::{gate, BenchRecord, HistoryRow, Report, SpanAttr, Verdict};
use csp_bench::{
    chain_workbench, multiplier_invariant, multiplier_workbench, pipeline_workbench,
    protocol_workbench,
};
use csp_core::prelude::*;
use csp_core::proofs;
use csp_core::{stop_choice_identity, validate_all_rules, AnalysisDb};

/// The paper's module, benched as the front-end's reference input.
const PAPER_CSP: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../paper.csp"));

/// Size metrics one workload reports back alongside its wall time.
#[derive(Debug, Clone, Copy, Default)]
struct Metrics {
    traces: u64,
    peak_set: u64,
    /// Which verification engine the workload pinned itself to, or ""
    /// where the distinction does not apply. The sat workloads pin
    /// explicitly rather than trusting `auto`, so the committed
    /// baseline keeps measuring the engine it was recorded on.
    engine: &'static str,
}

fn peak_of_run(run: &csp_core::FixpointRun) -> u64 {
    run.iterates
        .iter()
        .flat_map(|a| a.values())
        .map(|t| t.len() as u64)
        .max()
        .unwrap_or(0)
}

type Workload = (&'static str, Box<dyn Fn(&Collector) -> Metrics>);

fn workloads() -> Vec<Workload> {
    let mut v: Vec<Workload> = Vec::new();

    // P1 — trace enumeration vs. universe size at fixed depth.
    v.push((
        "P1/enumeration/copier_u3_d5",
        Box::new(|_c| {
            let mut wb = Workbench::new().with_universe(Universe::new(3));
            wb.define_source(csp_core::examples::PIPELINE_SRC)
                .expect("parses");
            let t = wb.traces("copier", 5).expect("traces");
            Metrics {
                traces: t.len() as u64,
                peak_set: t.len() as u64,
                engine: "",
            }
        }),
    ));

    // P2 — parallel composition & hiding cost on a 4-stage chain.
    v.push((
        "P2/parallel_hiding/chain4_d4",
        Box::new(|_c| {
            let wb = chain_workbench(4);
            let t = wb.traces("chain", 4).expect("traces");
            Metrics {
                traces: t.len() as u64,
                peak_set: t.len() as u64,
                engine: "",
            }
        }),
    ));

    // P3 — proof-checker throughput over the whole script suite.
    v.push((
        "P3/proofs/all_scripts",
        Box::new(|_c| {
            let mut rules = 0u64;
            for script in proofs::all_scripts() {
                rules += script.check().expect("checks").rule_count() as u64;
            }
            Metrics {
                traces: rules,
                peak_set: 0,
                engine: "",
            }
        }),
    ));

    // P4 — concurrent runtime throughput (128 scheduled steps).
    v.push((
        "P4/runtime/pipeline_s128",
        Box::new(|c| {
            let wb = pipeline_workbench();
            let res = wb
                .session_with(c.clone())
                .run(
                    "pipeline",
                    RunOptions {
                        max_steps: 128,
                        scheduler: Scheduler::seeded(5),
                        ..RunOptions::default()
                    },
                )
                .expect("runs");
            Metrics {
                traces: res.steps as u64,
                peak_set: 0,
                engine: "",
            }
        }),
    ));

    // E1 — the §2 pipeline claims, bounded-model-checked.
    v.push((
        "E1/sat/copier_wire_le_input_d5",
        Box::new(|c| {
            let wb = pipeline_workbench();
            let verdict = wb
                .session_with(c.clone())
                .check_sat(
                    "copier",
                    "wire <= input",
                    SatOptions::from(5).with_engine(Engine::Enumerative),
                )
                .expect("checks");
            let SatResult::Holds { traces_checked, .. } = verdict else {
                panic!("E1 claim refuted");
            };
            Metrics {
                traces: traces_checked as u64,
                peak_set: traces_checked as u64,
                engine: "enumerative",
            }
        }),
    ));

    // E2 — the completed §2.2(2) exercise, model-checked.
    v.push((
        "E2/sat/receiver_d3",
        Box::new(|c| {
            let wb = protocol_workbench();
            let verdict = wb
                .session_with(c.clone())
                .check_sat(
                    "receiver",
                    "output <= f(wire)",
                    SatOptions::from(3).with_engine(Engine::Enumerative),
                )
                .expect("checks");
            let SatResult::Holds { traces_checked, .. } = verdict else {
                panic!("E2 claim refuted");
            };
            Metrics {
                traces: traces_checked as u64,
                peak_set: traces_checked as u64,
                engine: "enumerative",
            }
        }),
    ));

    // E3 — the 6-step protocol proof's claim, model-checked.
    v.push((
        "E3/sat/protocol_d3",
        Box::new(|c| {
            let wb = protocol_workbench();
            let verdict = wb
                .session_with(c.clone())
                .check_sat(
                    "protocol",
                    "output <= input",
                    SatOptions::from(3).with_engine(Engine::Enumerative),
                )
                .expect("checks");
            let SatResult::Holds { traces_checked, .. } = verdict else {
                panic!("E3 claim refuted");
            };
            Metrics {
                traces: traces_checked as u64,
                peak_set: traces_checked as u64,
                engine: "enumerative",
            }
        }),
    ));

    // E4 — multiplier correctness at width 2.
    v.push((
        "E4/sat/multiplier_w2_d3",
        Box::new(|c| {
            let wb = multiplier_workbench(2);
            let inv = multiplier_invariant(2);
            let verdict = wb
                .session_with(c.clone())
                .check_sat(
                    "multiplier",
                    &inv,
                    SatOptions::from(3).with_engine(Engine::Enumerative),
                )
                .expect("checks");
            let SatResult::Holds { traces_checked, .. } = verdict else {
                panic!("E4 claim refuted");
            };
            Metrics {
                traces: traces_checked as u64,
                peak_set: traces_checked as u64,
                engine: "enumerative",
            }
        }),
    ));

    // E5 — the §3.3 fixpoint construction on all three paper networks.
    v.push((
        "E5/fixpoint/pipeline_d4",
        Box::new(|c| {
            let wb = pipeline_workbench();
            let run = wb
                .session_with(c.clone())
                .fixpoint(4, 24)
                .expect("fixpoint");
            assert!(run.converged_at.is_some());
            Metrics {
                traces: run.iterates.len() as u64,
                peak_set: peak_of_run(&run),
                engine: "",
            }
        }),
    ));
    v.push((
        "E5/fixpoint/protocol_d3",
        Box::new(|c| {
            let wb = protocol_workbench();
            let run = wb
                .session_with(c.clone())
                .fixpoint(3, 24)
                .expect("fixpoint");
            assert!(run.converged_at.is_some());
            Metrics {
                traces: run.iterates.len() as u64,
                peak_set: peak_of_run(&run),
                engine: "",
            }
        }),
    ));
    v.push((
        "E5/fixpoint/multiplier_w3_d2",
        Box::new(|c| {
            let wb = multiplier_workbench(3);
            let run = wb
                .session_with(c.clone())
                .fixpoint(2, 16)
                .expect("fixpoint");
            assert!(run.converged_at.is_some());
            Metrics {
                traces: run.iterates.len() as u64,
                peak_set: peak_of_run(&run),
                engine: "",
            }
        }),
    ));

    // E6 — empirical soundness of the ten §2.1 rules.
    v.push((
        "E6/soundness/rules_x12",
        Box::new(|_c| {
            let reports = validate_all_rules(2026, 12).expect("validates");
            assert!(reports.iter().all(|r| r.sound()));
            Metrics {
                traces: reports.iter().map(|r| r.premises_held as u64).sum(),
                peak_set: 0,
                engine: "",
            }
        }),
    ));

    // E7 — the §4 defect STOP | P = P, verified semantically.
    v.push((
        "E7/stop_choice/pipeline_d4",
        Box::new(|_c| {
            let wb = pipeline_workbench();
            let (a, b) =
                stop_choice_identity(wb.definitions(), wb.universe(), "pipeline", 4).expect("E7");
            assert_eq!(a, b);
            Metrics {
                traces: a as u64,
                peak_set: a as u64,
                engine: "",
            }
        }),
    ));

    // LTS — the compiled engine on workloads past the enumerative
    // engine's comfortable range: the width-4 multiplier at depth 4 and
    // the pipeline at depth 8. Both pin `--engine compiled`; the gate's
    // ±30% tolerance is the budget the compiled engine must keep.
    v.push((
        "lts/multiplier_w4_d4",
        Box::new(|c| {
            let wb = multiplier_workbench(4);
            let inv = multiplier_invariant(4);
            let verdict = wb
                .session_with(c.clone())
                .check_sat(
                    "multiplier",
                    &inv,
                    SatOptions::from(4).with_engine(Engine::Compiled),
                )
                .expect("checks");
            let SatResult::Holds { traces_checked, .. } = verdict else {
                panic!("lts multiplier claim refuted");
            };
            Metrics {
                traces: traces_checked as u64,
                peak_set: traces_checked as u64,
                engine: "compiled",
            }
        }),
    ));
    v.push((
        "lts/pipeline_d8",
        Box::new(|c| {
            let wb = pipeline_workbench();
            let verdict = wb
                .session_with(c.clone())
                .check_sat(
                    "pipeline",
                    "output <= input",
                    SatOptions::from(8).with_engine(Engine::Compiled),
                )
                .expect("checks");
            let SatResult::Holds { traces_checked, .. } = verdict else {
                panic!("lts pipeline claim refuted");
            };
            Metrics {
                traces: traces_checked as u64,
                peak_set: traces_checked as u64,
                engine: "compiled",
            }
        }),
    ));

    // Front-end — cold full parse + lint of the paper module through the
    // incremental AnalysisDb. Target (ROADMAP/ISSUE 7): under 1 ms. The
    // gate clamps sub-millisecond baselines to 1 ms, so the ±30%
    // comparison doubles as an absolute "stays under ~1.3 ms" bound.
    v.push((
        "frontend/lint_paper_csp",
        Box::new(|_c| {
            let mut db = AnalysisDb::new();
            let stats = db.set_source(PAPER_CSP);
            assert!(db.parse_errors().is_empty(), "paper.csp parses cleanly");
            Metrics {
                traces: stats.relinted as u64,
                peak_set: db.diagnostics().len() as u64,
                engine: "",
            }
        }),
    ));

    // Front-end — incremental re-lint after a single-definition edit:
    // toggle one appended leaf definition and re-run. Target: at least
    // 10× cheaper than the cold run above. The persistent db lives in a
    // RefCell because workloads are `Fn` closures called repeatedly.
    v.push(("frontend/relint_one_def", {
        let sources = [
            format!("{PAPER_CSP}\nbench_probe = probe!0 -> bench_probe\n"),
            format!("{PAPER_CSP}\nbench_probe = probe!1 -> bench_probe\n"),
        ];
        let primed = {
            let mut db = AnalysisDb::new();
            db.set_source(&sources[0]);
            std::cell::RefCell::new((db, 0usize))
        };
        Box::new(move |_c| {
            let (db, flip) = &mut *primed.borrow_mut();
            *flip ^= 1;
            let stats = db.set_source(&sources[*flip]);
            assert_eq!(stats.relinted, 1, "the edit dirties exactly one definition");
            Metrics {
                traces: stats.relinted as u64,
                peak_set: stats.cached as u64,
                engine: "",
            }
        })
    }));

    // Fault-conformance sweep — the PR-1 robustness workload.
    v.push((
        "verify/faultconf/pipeline_4x2",
        Box::new(|_c| {
            let wb = pipeline_workbench();
            let sweep = FaultSweep::new(
                [1, 2, 3, 4],
                [FaultPlan::none(), FaultPlan::none().crash("copier", 12)],
            )
            .with_max_steps(32);
            let conf = wb
                .fault_conformance("pipeline", ["output <= input"], &sweep)
                .expect("sweeps");
            assert!(conf.all_conformant());
            Metrics {
                traces: conf.runs.len() as u64,
                peak_set: conf.runs.iter().map(|r| r.steps as u64).max().unwrap_or(0),
                engine: "",
            }
        }),
    ));

    // Online-monitoring overhead — the PR-10 causal-observability
    // workload: a crash-and-replay pipeline run with the runtime
    // monitor replaying every visible event through the compiled LTS
    // and re-checking `output <= input` on each prefix. The ±30% gate
    // against the committed baseline is the monitor-overhead budget;
    // `tests/causal_monitor.rs` separately asserts the monitored/
    // unmonitored ratio stays under 2×.
    v.push((
        "run/monitor_overhead",
        Box::new(|c| {
            let wb = pipeline_workbench();
            let spec = wb.monitor_spec(["output <= input"]).expect("assertion");
            let res = wb
                .session_with(c.clone())
                .run(
                    "pipeline",
                    RunOptions {
                        max_steps: 96,
                        scheduler: Scheduler::seeded(7),
                        faults: FaultPlan::none()
                            .crash("copier", 12)
                            .with_restart(RestartPolicy::Replay),
                        monitor: Some(spec),
                        ..RunOptions::default()
                    },
                )
                .expect("runs");
            let monitor = res.monitor.as_ref().expect("monitored");
            assert!(monitor.is_conforming(), "fault-free replay must conform");
            Metrics {
                traces: monitor.events_checked as u64,
                peak_set: res.causal.len() as u64,
                engine: "compiled",
            }
        }),
    ));

    v
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    xs[xs.len() / 2]
}

/// The spans a workload spent the most time in, from the collector
/// delta across its samples: positive time only, biggest first, capped
/// so the report stays small.
fn span_attribution(delta: &csp_core::obs::MetricsDelta) -> Vec<SpanAttr> {
    let mut spans: Vec<SpanAttr> = delta
        .spans
        .iter()
        .filter(|(_, s)| s.total_ns > 0)
        .map(|(name, s)| SpanAttr {
            span: name.clone(),
            total_ns: s.total_ns as u64,
            count: s.count.max(0) as u64,
        })
        .collect();
    spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.span.cmp(&b.span)));
    spans.truncate(8);
    spans
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-json [--samples N] [--out PATH] [--filter SUBSTR] \
         [--metrics-out EVENTS.jsonl] [--history HISTORY.jsonl] \
         [--serve URL|spawn] [--compare BASELINE [--tolerance FRAC]]"
    );
    std::process::exit(2);
}

fn main() {
    let mut samples = 3usize;
    let mut out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut tolerance = 0.30f64;
    let mut filter: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut history: Option<String> = None;
    let mut serve: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--compare" => compare = Some(args.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--filter" => filter = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-out" => metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--history" => history = Some(args.next().unwrap_or_else(|| usage())),
            "--serve" => serve = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let samples = samples.max(1);

    // With --metrics-out every instrumentable workload records into one
    // shared collector, so the gated timings include the observability
    // layer's overhead; otherwise the disabled fast path is measured.
    let collector = match &metrics_out {
        Some(_) => Collector::new(),
        None => Collector::disabled(),
    };

    let mut benches = Vec::new();
    if let Some(target) = &serve {
        // Server load mode: drive a csp serve instance over HTTP
        // instead of running the in-process workloads.
        let spawned = if target == "spawn" {
            let cfg = csp_serve::ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                ..csp_serve::ServeConfig::default()
            };
            let server = csp_serve::CspServer::bind(&cfg).expect("bind in-process server");
            let handle = server.spawn().expect("spawn in-process server");
            eprintln!("spawned in-process csp serve at {}", handle.url());
            Some(handle)
        } else {
            None
        };
        let url = spawned
            .as_ref()
            .map_or_else(|| target.clone(), csp_serve::ServerHandle::url);
        benches = csp_bench::load::run_load(&url).unwrap_or_else(|e| {
            eprintln!("serve load driver failed: {e}");
            std::process::exit(1);
        });
        for b in &benches {
            eprintln!(
                "{:<36} {:>10.2} ms  traces={} peak={}",
                b.name, b.wall_ms, b.traces, b.peak_set
            );
        }
        if let Some(handle) = spawned {
            handle.stop();
        }
    }
    let run_workloads = serve.is_none();
    for (name, work) in workloads().into_iter().filter(|_| run_workloads) {
        if let Some(f) = &filter {
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        // One untimed warm-up so allocator and interner state are hot.
        let mut metrics = work(&collector);
        // Span attribution: the collector delta across the timed
        // samples says where each workload's wall time went.
        let before = collector.snapshot();
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            metrics = work(&collector);
            times.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let spans = span_attribution(&collector.snapshot().delta(&before));
        let wall_ms = median(times);
        eprintln!(
            "{name:<36} {wall_ms:>10.2} ms  traces={} peak={}",
            metrics.traces, metrics.peak_set
        );
        benches.push(BenchRecord {
            name: name.to_string(),
            wall_ms,
            traces: metrics.traces,
            peak_set: metrics.peak_set,
            engine: metrics.engine.to_string(),
            spans,
        });
    }

    let report = Report { samples, benches };
    let json = report.to_json();
    match &out {
        Some(path) => std::fs::write(path, &json).expect("write report"),
        None => print!("{json}"),
    }

    if let Some(path) = &history {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let row = HistoryRow::from_report(&report, unix_ms);
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("cannot open history {path}: {e}"));
        writeln!(f, "{}", row.to_jsonl_line()).expect("append history row");
        eprintln!(
            "appended history row to {path} (total {:.2} ms over {} benches)",
            row.total_wall_ms,
            row.benches.len()
        );
    }

    if let Some(path) = &metrics_out {
        let mut f = std::fs::File::create(path).expect("create event log");
        collector.write_jsonl(&mut f).expect("write event log");
        eprintln!(
            "wrote span event log to {path} ({} span(s), {} evicted)",
            collector.records().len(),
            collector.dropped()
        );
    }

    if let Some(path) = compare {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = Report::from_json(&src).expect("baseline parses");
        let g = gate(&baseline, &report, tolerance);
        eprintln!("\n== gate vs {path} (±{:.0}%) ==", tolerance * 100.0);
        for line in &g.lines {
            let fmt_ms = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.2}"));
            let tag = match line.verdict {
                Verdict::Ok => "ok",
                Verdict::Regression => "REGRESSION",
                Verdict::Improvement => "improved",
                Verdict::Unmatched => "unmatched",
            };
            eprintln!(
                "[{tag:>10}] {:<36} base {:>10} ms → now {:>10} ms",
                line.name,
                fmt_ms(line.baseline_ms),
                fmt_ms(line.current_ms),
            );
            for c in &line.culprits {
                eprintln!(
                    "             ↳ top regressing span: {} (+{:.2} ms)",
                    c.span,
                    c.delta_ns as f64 / 1e6
                );
            }
        }
        if !g.improvements().is_empty() {
            eprintln!("note: improvements past tolerance — refresh BENCH_baseline.json");
        }
        if !g.passed() {
            eprintln!(
                "gate FAILED: wall-time regression past ±{:.0}%",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("gate passed");
    }
}
