//! Experiments **F1/F2**: regenerates the paper's two network figures —
//! the copier pipeline (§1.0/§1.2) and the multiplier array (§1.3(5)) —
//! as ASCII diagrams derived from the *parsed definitions* (components
//! and alphabets come from `flatten`, not from hand-drawn text), together
//! with the example traces the paper prints beneath them.
//!
//! `cargo run -p csp-bench --bin figures`

use csp_bench::{multiplier_workbench, pipeline_workbench};
use csp_core::prelude::*;
use csp_core::{flatten, Channel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    figure1()?;
    figure2()?;
    Ok(())
}

/// F1 — §1.0/§1.2: input → copier → wire → recopier → output, and its
/// black-box form with the wire concealed.
fn figure1() -> Result<(), Box<dyn std::error::Error>> {
    let wb = pipeline_workbench();
    println!("Figure 1 (§1.0/§1.2): the copier pipeline\n");
    render_network(&wb, "copier || recopier")?;
    println!("\nwith `chan wire` the box closes over the internal channel:\n");
    render_network(&wb, "pipeline")?;

    // The traces the paper lists under the figure (§1.0 (i)–(iii)).
    let mut wide = Workbench::new().with_universe(Universe::new(27));
    wide.define_source(csp_core::examples::PIPELINE_SRC)?;
    let traces = wide.traces("copier", 5)?;
    println!("\nexample copier traces (as in §1.0):");
    for t in [
        Trace::empty(),
        Trace::parse_like([("input", Value::nat(3)), ("wire", Value::nat(3))]),
        Trace::parse_like([
            ("input", Value::nat(27)),
            ("wire", Value::nat(27)),
            ("input", Value::nat(0)),
            ("wire", Value::nat(0)),
            ("input", Value::nat(3)),
        ]),
    ] {
        assert!(traces.contains(&t), "semantics must admit {t}");
        println!("  {t}");
    }
    println!();
    Ok(())
}

/// F2 — §1.3(5): the multiplier array with its row/col channel grid.
fn figure2() -> Result<(), Box<dyn std::error::Error>> {
    let wb = multiplier_workbench(3);
    println!("Figure 2 (§1.3(5)): the multiplier network\n");
    render_network(&wb, "multiplier")?;
    println!(
        "\nfirst-round check: with v = (1,2,3) and rows ≤ 1 the network's\n\
         outputs equal Σⱼ v[j]·row[j]ᵢ — verified by `experiments` (E4).\n"
    );
    Ok(())
}

/// Draws a network as component boxes with their connecting channels,
/// derived from the flattened structure.
fn render_network(wb: &Workbench, expr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let p = csp_core::parse_process(expr)?;
    let net = flatten(&p, wb.definitions(), wb.env())?;

    // Channel → connected component indices.
    let mut channels: Vec<(Channel, Vec<usize>)> = Vec::new();
    for (i, c) in net.components.iter().enumerate() {
        for ch in c.alphabet.iter() {
            match channels.iter_mut().find(|(x, _)| x == ch) {
                Some((_, v)) => v.push(i),
                None => channels.push((ch.clone(), vec![i])),
            }
        }
    }

    for (i, c) in net.components.iter().enumerate() {
        let name = c.label.split([' ', '?']).next().unwrap_or(&c.label);
        println!("  [{i}] {name:<12}  alphabet {}", c.alphabet);
    }
    println!("  channels:");
    for (ch, comps) in &channels {
        let hidden = if net.hidden.contains(ch) {
            " (concealed)"
        } else {
            ""
        };
        let ends = comps
            .iter()
            .map(|i| format!("[{i}]"))
            .collect::<Vec<_>>()
            .join(" ── ");
        let external = if comps.len() == 1 { " ── env" } else { "" };
        println!("    {ch:<8} {ends}{external}{hidden}");
    }
    Ok(())
}
