//! Proof synthesis: automatic construction of `sat` proofs for guarded
//! recursive definitions.
//!
//! The paper's proofs all follow one discipline: apply the recursion
//! rule, then walk the definition body — input/output rules down each
//! prefix, the alternative rule at each choice — and close every
//! recursive call with the hypothesis (weakened by consequence) or, for
//! array elements, with ∀-elimination. [`synthesize`] mechanises exactly
//! that discipline, so invariants that are *inductive* in the paper's
//! sense prove themselves:
//!
//! ```
//! use csp_assert::{Assertion, STerm};
//! use csp_lang::parse_definitions;
//! use csp_proof::{check, synthesize, Context, Judgement};
//! use csp_semantics::Universe;
//!
//! let defs = parse_definitions("copier = input?x:NAT -> wire!x -> copier").unwrap();
//! let ctx = Context::new(defs, Universe::new(1));
//! let inv = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
//! let specs = vec![("copier".to_string(), inv)];
//! let proof = synthesize(&ctx, &specs, 0).unwrap();
//! let goal = csp_proof::spec_goal(&ctx, &specs[0]).unwrap();
//! assert!(check(&ctx, &goal, &proof).is_ok());
//! ```
//!
//! Synthesis produces a *candidate* tree; [`check`](crate::check) remains
//! the judge. A non-inductive invariant yields a candidate whose
//! consequence obligations the oracle refutes — synthesis never makes an
//! unsound claim, it only saves the writing.

use csp_assert::{subst_var, Assertion};
use csp_lang::{Expr, Process};

use crate::{Context, Judgement, Proof, ProofError};

/// Why synthesis gave up (before checking).
#[derive(Debug, Clone)]
pub enum SynthError {
    /// A name in the specs has no defining equation.
    Undefined(String),
    /// The body calls a process that has no spec to close against.
    NoSpecFor {
        /// The called name.
        name: String,
        /// The spec being synthesised when it was encountered.
        within: String,
    },
    /// The body contains network structure (`‖`, `chan`), which the
    /// prefix-walking discipline does not cover — compose those proofs
    /// manually with the parallelism/hiding rules.
    NetworkStructure {
        /// The spec being synthesised.
        within: String,
    },
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::Undefined(n) => write!(f, "no definition for `{n}`"),
            SynthError::NoSpecFor { name, within } => write!(
                f,
                "body of `{within}` calls `{name}`, which has no spec in the recursion"
            ),
            SynthError::NetworkStructure { within } => write!(
                f,
                "body of `{within}` contains || or chan; synthesis covers sequential bodies"
            ),
        }
    }
}

impl std::error::Error for SynthError {}

/// The judgement a spec pair claims (public so callers can hand the goal
/// to [`check`](crate::check)); plain names give `p sat R`, array names
/// give `∀x:M. q[x] sat R`.
///
/// # Errors
///
/// Fails if the name is undefined.
pub fn spec_goal(ctx: &Context, spec: &(String, Assertion)) -> Result<Judgement, ProofError> {
    let (name, inv) = spec;
    let def = ctx
        .defs
        .get(name)
        .ok_or_else(|| ProofError::BadRecursion(format!("`{name}` undefined")))?;
    Ok(match def.param() {
        None => Judgement::sat(Process::call(name), inv.clone()),
        Some((var, set)) => Judgement::forall(
            var,
            set.clone(),
            Judgement::sat(Process::call1(name, Expr::var(var)), inv.clone()),
        ),
    })
}

/// Synthesises a joint recursion proof for the given specs, concluding
/// spec `select`.
///
/// # Errors
///
/// Returns a [`SynthError`] when the bodies fall outside the covered
/// fragment. The produced proof must still be passed through
/// [`check`](crate::check); invariants that are not inductive fail there.
pub fn synthesize(
    ctx: &Context,
    specs: &[(String, Assertion)],
    select: usize,
) -> Result<Proof, SynthError> {
    let mut bodies = Vec::with_capacity(specs.len());
    let mut fresh_counter = 0usize;
    for (name, _) in specs {
        let def = ctx
            .defs
            .get(name)
            .ok_or_else(|| SynthError::Undefined(name.clone()))?;
        let inner = synth_body(
            ctx,
            specs,
            name,
            def.body(),
            &mut fresh_counter,
            &mut Vec::new(),
        )?;
        let body = match def.param() {
            None => inner,
            Some(_) => Proof::ForallIntro {
                body: Box::new(inner),
            },
        };
        bodies.push(body);
    }
    Ok(Proof::Recursion {
        specs: specs.to_vec(),
        bodies,
        select,
    })
}

/// Walks a definition body, emitting one rule application per syntactic
/// construct and closing calls against the spec hypotheses. `renames`
/// maps body input variables to the fresh variables the input rule
/// introduces, so call arguments are stated in the checker's vocabulary.
fn synth_body(
    ctx: &Context,
    specs: &[(String, Assertion)],
    within: &str,
    p: &Process,
    fresh: &mut usize,
    renames: &mut Vec<(String, Expr)>,
) -> Result<Proof, SynthError> {
    match p {
        // An error hole denotes STOP (empty trace only), so the
        // emptiness rule r2 covers it just as it covers `STOP`.
        Process::Stop | Process::Error(_) => Ok(Proof::Emptiness),
        Process::Output { then, .. } => Ok(Proof::output(synth_body(
            ctx, specs, within, then, fresh, renames,
        )?)),
        Process::Input { var, then, .. } => {
            *fresh += 1;
            let v = format!("v{fresh}");
            renames.push((var.clone(), Expr::var(&v)));
            let body = synth_body(ctx, specs, within, then, fresh, renames)?;
            renames.pop();
            Ok(Proof::input(&v, body))
        }
        Process::Choice(a, b) => Ok(Proof::alternative(
            synth_body(ctx, specs, within, a, fresh, renames)?,
            synth_body(ctx, specs, within, b, fresh, renames)?,
        )),
        Process::Call { name, args } => {
            let (_, inv) =
                specs
                    .iter()
                    .find(|(n, _)| n == name)
                    .ok_or_else(|| SynthError::NoSpecFor {
                        name: name.clone(),
                        within: within.to_string(),
                    })?;
            let def = ctx
                .defs
                .get(name)
                .ok_or_else(|| SynthError::Undefined(name.clone()))?;
            // The hypothesis gives `inv` (instantiated at the call's
            // argument for arrays); the local goal generally differs by
            // the channel substitutions accumulated on the way down, so
            // close with a consequence whose obligation the oracle
            // discharges iff the invariant is inductive.
            match def.param() {
                None => Ok(Proof::consequence(inv.clone(), Proof::Hypothesis)),
                Some((param, _)) => {
                    let mut arg = args.first().cloned().unwrap_or_else(|| Expr::var(param));
                    // Re-state the argument with the fresh variables the
                    // input rule introduced on the way down (latest
                    // binding of a shadowed name wins).
                    for (from, to) in renames.iter().rev() {
                        arg = csp_lang::subst_expr_with(&arg, from, to);
                    }
                    let instantiated = subst_var(inv, param, &arg);
                    Ok(Proof::consequence(instantiated, Proof::Instantiate { arg }))
                }
            }
        }
        Process::Parallel { .. } | Process::Hide { .. } => Err(SynthError::NetworkStructure {
            within: within.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use csp_assert::STerm;
    use csp_lang::{examples, parse_definitions};
    use csp_semantics::Universe;
    use csp_trace::Value;

    fn prove_auto(ctx: &Context, specs: Vec<(String, Assertion)>, select: usize) {
        let proof =
            synthesize(ctx, &specs, select).unwrap_or_else(|e| panic!("synthesis failed: {e}"));
        let goal = spec_goal(ctx, &specs[select]).unwrap();
        check(ctx, &goal, &proof)
            .unwrap_or_else(|e| panic!("synthesised proof failed to check: {e}"));
    }

    #[test]
    fn synthesises_copier_and_recopier() {
        let ctx = Context::new(examples::pipeline(), Universe::new(1));
        prove_auto(
            &ctx,
            vec![(
                "copier".to_string(),
                Assertion::prefix(STerm::chan("wire"), STerm::chan("input")),
            )],
            0,
        );
        prove_auto(
            &ctx,
            vec![(
                "recopier".to_string(),
                Assertion::prefix(STerm::chan("output"), STerm::chan("wire")),
            )],
            0,
        );
    }

    #[test]
    fn synthesises_length_bound() {
        use csp_assert::{CmpOp, Term};
        let ctx = Context::new(examples::pipeline(), Universe::new(1));
        prove_auto(
            &ctx,
            vec![(
                "copier".to_string(),
                Assertion::Cmp(
                    CmpOp::Le,
                    Term::length(STerm::chan("input")),
                    Term::length(STerm::chan("wire")).add(Term::int(1)),
                ),
            )],
            0,
        );
    }

    #[test]
    fn regenerates_table1_automatically() {
        // The headline: the joint sender/q recursion of Table 1 is
        // synthesised from the definitions and the two invariants alone.
        let ctx = Context::new(
            examples::protocol(),
            Universe::new(1).with_named("M", [Value::nat(0), Value::nat(1)]),
        );
        let specs = vec![
            (
                "sender".to_string(),
                Assertion::prefix(STerm::chan("wire").app("f"), STerm::chan("input")),
            ),
            (
                "q".to_string(),
                Assertion::prefix(
                    STerm::chan("wire").app("f"),
                    STerm::chan("input").cons(csp_assert::Term::var("x")),
                ),
            ),
        ];
        prove_auto(&ctx, specs.clone(), 0);
        // And the q-family conclusion too.
        prove_auto(&ctx, specs, 1);
    }

    #[test]
    fn synthesises_receiver_exercise() {
        let ctx = Context::new(
            examples::protocol(),
            Universe::new(1).with_named("M", [Value::nat(0), Value::nat(1)]),
        );
        prove_auto(
            &ctx,
            vec![(
                "receiver".to_string(),
                Assertion::prefix(STerm::chan("output"), STerm::chan("wire").app("f")),
            )],
            0,
        );
    }

    #[test]
    fn non_inductive_invariant_fails_at_check_not_unsoundly() {
        let ctx = Context::new(examples::pipeline(), Universe::new(1));
        let specs = vec![(
            "copier".to_string(),
            Assertion::prefix(STerm::chan("input"), STerm::chan("wire")),
        )];
        let proof = synthesize(&ctx, &specs, 0).expect("synthesis itself succeeds");
        let goal = spec_goal(&ctx, &specs[0]).unwrap();
        assert!(check(&ctx, &goal, &proof).is_err());
    }

    #[test]
    fn network_bodies_are_rejected_with_guidance() {
        let ctx = Context::new(examples::pipeline(), Universe::new(1));
        let specs = vec![(
            "pipeline".to_string(),
            Assertion::prefix(STerm::chan("output"), STerm::chan("input")),
        )];
        match synthesize(&ctx, &specs, 0) {
            Err(SynthError::NetworkStructure { within }) => assert_eq!(within, "pipeline"),
            other => panic!("expected NetworkStructure, got {other:?}"),
        }
    }

    #[test]
    fn missing_spec_for_called_process_reported() {
        let defs = parse_definitions(
            "a = c!0 -> b
             b = c!1 -> a",
        )
        .unwrap();
        let ctx = Context::new(defs, Universe::new(1));
        let specs = vec![(
            "a".to_string(),
            Assertion::prefix(STerm::Empty, STerm::chan("c")),
        )];
        assert!(matches!(
            synthesize(&ctx, &specs, 0),
            Err(SynthError::NoSpecFor { .. })
        ));
    }

    #[test]
    fn mutual_recursion_synthesises_with_both_specs() {
        use csp_assert::{CmpOp, Term};
        let defs = parse_definitions(
            "ping = a!0 -> pong
             pong = b!0 -> ping",
        )
        .unwrap();
        let ctx = Context::new(defs, Universe::new(1));
        // The mutually inductive pair (both true of <>):
        //   ping sat (#b ≤ #a ∧ #a ≤ #b + 1)
        //   pong sat (#a ≤ #b ∧ #b ≤ #a + 1)
        let le = |x: STerm, y: Term| Assertion::Cmp(CmpOp::Le, Term::length(x), y);
        let specs = vec![
            (
                "ping".to_string(),
                le(STerm::chan("b"), Term::length(STerm::chan("a"))).and(le(
                    STerm::chan("a"),
                    Term::length(STerm::chan("b")).add(Term::int(1)),
                )),
            ),
            (
                "pong".to_string(),
                le(STerm::chan("a"), Term::length(STerm::chan("b"))).and(le(
                    STerm::chan("b"),
                    Term::length(STerm::chan("a")).add(Term::int(1)),
                )),
            ),
        ];
        prove_auto(&ctx, specs.clone(), 0);
        prove_auto(&ctx, specs, 1);
    }
}
