//! Proof trees — one node per application of a §2.1 inference rule.
//!
//! A [`Proof`] does not carry its conclusion; the checker
//! ([`crate::check`]) is handed the goal judgement and verifies that the
//! tree derives exactly that goal, computing sub-goals on the way down
//! and discharging pure premises with the
//! [`decide_valid`](csp_assert::decide_valid) oracle.

use csp_assert::Assertion;
use csp_lang::Expr;

/// One node of a proof tree. Variant names follow the paper's rule names
/// (§2.1 (1)–(10)); `Hypothesis`, `Instantiate` and `ForallIntro` are the
/// natural-deduction plumbing the paper takes for granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Proof {
    /// Close the goal against a hypothesis in Γ (syntactic match).
    Hypothesis,
    /// ∀-elimination: a hypothesis `∀x:M. q[x] sat S` specialised at
    /// `arg`, concluding `q[arg] sat S^x_arg`. Emits the membership
    /// obligation `arg ∈ M`.
    Instantiate {
        /// The instantiating expression.
        arg: Expr,
    },
    /// ∀-introduction: proves `∀x:M. J` from a proof of `J` with `x`
    /// held abstract (ranging over `M`).
    ForallIntro {
        /// Proof of the body with the variable abstract.
        body: Box<Proof>,
    },
    /// Rule 1 (triviality): `P sat T` for a `T` that is valid outright.
    Triviality,
    /// Rule 2 (consequence): from `P sat stronger` and the validity of
    /// `stronger ⇒ goal`, conclude `P sat goal`.
    Consequence {
        /// The stronger invariant actually proven.
        stronger: Assertion,
        /// Proof of `P sat stronger`.
        premise: Box<Proof>,
    },
    /// Rule 3 (conjunction): `P sat R` and `P sat S` give
    /// `P sat (R & S)`.
    Conjunction {
        /// Proof of the left conjunct.
        left: Box<Proof>,
        /// Proof of the right conjunct.
        right: Box<Proof>,
    },
    /// Rule 4 (emptiness): `STOP sat R` provided `R_<>` is valid.
    Emptiness,
    /// Rule 5 (output): `(c!e → P) sat R` from `R_<>` valid and
    /// `P sat R^c_{e^c}`.
    Output {
        /// Proof of the continuation's substituted invariant.
        body: Box<Proof>,
    },
    /// Rule 6 (input): `(c?x:M → P) sat R` from `R_<>` valid and
    /// `∀v:M. P^x_v sat R^c_{v^c}` with `v` fresh. The body proof runs
    /// with `v` abstract (the ∀-introduction is folded in).
    Input {
        /// The fresh variable name standing for the received value.
        fresh: String,
        /// Proof of the substituted judgement, generic in `fresh`.
        body: Box<Proof>,
    },
    /// Rule 7 (alternative): `(P | Q) sat R` from both arms satisfying
    /// `R`.
    Alternative {
        /// Proof for the left arm.
        left: Box<Proof>,
        /// Proof for the right arm.
        right: Box<Proof>,
    },
    /// Rule 8 (parallelism): `(P ‖ Q) sat (R & S)` from `P sat R` and
    /// `Q sat S`, provided the channels of `R` are among `P`'s and those
    /// of `S` among `Q`'s.
    Parallelism {
        /// Proof of `P sat R`.
        left: Box<Proof>,
        /// Proof of `Q sat S`.
        right: Box<Proof>,
    },
    /// Rule 9 (channel hiding): `(chan L; P) sat R` from `P sat R`,
    /// provided `R` mentions no channel of `L`.
    Hiding {
        /// Proof of the body's invariant.
        body: Box<Proof>,
    },
    /// Rule 10 (recursion), in its general joint form covering plain
    /// names, process arrays, and mutual recursion. Each spec pairs a
    /// defined name with the invariant claimed for it; all specs become
    /// hypotheses while each body is proven; the node concludes the
    /// `select`ed spec's judgement.
    ///
    /// The base premises `R_<>` (one per spec) are emitted as pure
    /// obligations automatically.
    Recursion {
        /// `(name, invariant)` pairs; a name defined as an array
        /// `q[x:M] = Q` claims `∀x:M. q[x] sat S`.
        specs: Vec<(String, Assertion)>,
        /// One proof per spec, of the definition body's judgement under
        /// all spec hypotheses.
        bodies: Vec<Proof>,
        /// Which spec this node concludes.
        select: usize,
    },
}

impl Proof {
    /// Convenience: single-equation recursion.
    pub fn recursion(name: &str, invariant: Assertion, body: Proof) -> Proof {
        Proof::Recursion {
            specs: vec![(name.to_string(), invariant)],
            bodies: vec![body],
            select: 0,
        }
    }

    /// Convenience: consequence node.
    pub fn consequence(stronger: Assertion, premise: Proof) -> Proof {
        Proof::Consequence {
            stronger,
            premise: Box::new(premise),
        }
    }

    /// Convenience: input node.
    pub fn input(fresh: &str, body: Proof) -> Proof {
        Proof::Input {
            fresh: fresh.to_string(),
            body: Box::new(body),
        }
    }

    /// Convenience: output node.
    pub fn output(body: Proof) -> Proof {
        Proof::Output {
            body: Box::new(body),
        }
    }

    /// Convenience: alternative node.
    pub fn alternative(left: Proof, right: Proof) -> Proof {
        Proof::Alternative {
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Number of rule applications in the tree (a proof-size metric used
    /// by the benchmarks).
    pub fn size(&self) -> usize {
        match self {
            Proof::Hypothesis
            | Proof::Instantiate { .. }
            | Proof::Triviality
            | Proof::Emptiness => 1,
            Proof::ForallIntro { body }
            | Proof::Output { body }
            | Proof::Input { body, .. }
            | Proof::Hiding { body } => 1 + body.size(),
            Proof::Consequence { premise, .. } => 1 + premise.size(),
            Proof::Conjunction { left, right }
            | Proof::Alternative { left, right }
            | Proof::Parallelism { left, right } => 1 + left.size() + right.size(),
            Proof::Recursion { bodies, .. } => 1 + bodies.iter().map(Proof::size).sum::<usize>(),
        }
    }

    /// The paper rule (or plumbing step) this node applies.
    pub fn rule_name(&self) -> &'static str {
        match self {
            Proof::Hypothesis => "hypothesis",
            Proof::Instantiate { .. } => "forall-elim",
            Proof::ForallIntro { .. } => "forall-intro",
            Proof::Triviality => "triviality (1)",
            Proof::Consequence { .. } => "consequence (2)",
            Proof::Conjunction { .. } => "conjunction (3)",
            Proof::Emptiness => "emptiness (4)",
            Proof::Output { .. } => "output (5)",
            Proof::Input { .. } => "input (6)",
            Proof::Alternative { .. } => "alternative (7)",
            Proof::Parallelism { .. } => "parallelism (8)",
            Proof::Hiding { .. } => "hiding (9)",
            Proof::Recursion { .. } => "recursion (10)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_assert::STerm;

    #[test]
    fn size_counts_rule_applications() {
        let p = Proof::recursion(
            "copier",
            Assertion::prefix(STerm::chan("wire"), STerm::chan("input")),
            Proof::input(
                "v",
                Proof::output(Proof::consequence(
                    Assertion::prefix(STerm::chan("wire"), STerm::chan("input")),
                    Proof::Hypothesis,
                )),
            ),
        );
        assert_eq!(p.size(), 5);
        assert_eq!(p.rule_name(), "recursion (10)");
    }
}
