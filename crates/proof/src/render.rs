//! Rendering checked proofs as numbered tables, in the style of the
//! paper's Table 1.

use crate::{CheckReport, Discharge};

/// Renders a check report as a numbered step table followed by the pure
/// obligations and how each was discharged.
///
/// # Examples
///
/// ```
/// use csp_proof::{render_report, scripts};
///
/// let script = scripts::pipeline::copier_wire_le_input();
/// let report = script.check().unwrap();
/// let table = render_report(&script.paper_ref, &report);
/// assert!(table.contains("recursion"));
/// assert!(table.contains("cons-monotonicity"));
/// ```
pub fn render_report(title: &str, report: &CheckReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&"=".repeat(title.len().min(78)));
    out.push('\n');
    for (i, step) in report.steps.iter().enumerate() {
        out.push_str(&format!("({:>2}) {step}\n", i + 1));
    }
    if !report.obligations.is_empty() {
        out.push_str("\npure premises:\n");
        for ob in &report.obligations {
            let how = match &ob.discharge {
                Discharge::Syntactic(law) => format!("syntactic: {law}"),
                Discharge::Bounded(cases) => format!("bounded check, {cases} cases"),
                Discharge::Binder => "closed by binder".to_string(),
                Discharge::MembershipChecked => "membership checked".to_string(),
                Discharge::MembershipAssumed => "assumed (abstract set)".to_string(),
            };
            out.push_str(&format!("  [{}] {}  — {how}\n", ob.rule, ob.formula));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::scripts;

    #[test]
    fn table1_renders_with_steps_and_premises() {
        let script = scripts::protocol::sender_table1();
        let report = script.check().unwrap();
        let rendered = super::render_report(script.paper_ref, &report);
        assert!(rendered.contains("( 1)"), "{rendered}");
        assert!(rendered.contains("pure premises:"), "{rendered}");
        assert!(rendered.contains("[input (6)]"), "{rendered}");
    }
}
