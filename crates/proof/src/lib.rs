//! # csp-proof
//!
//! The ten-rule inference system of Zhou & Hoare (1981) §2.1 for partial
//! correctness of communicating processes, as a checkable proof calculus.
//!
//! A claim `P sat R` means "R is true before and after every
//! communication by P". Proofs are explicit [`Proof`] trees whose nodes
//! are the paper's rules — triviality, consequence, conjunction,
//! emptiness, output, input, alternative, parallelism, channel hiding,
//! and (joint/array) recursion — plus the natural-deduction plumbing the
//! paper takes for granted (hypothesis use, ∀-introduction and
//! -elimination). [`check`] verifies a tree against a goal [`Judgement`]
//! in a [`Context`], discharging every *pure* premise (the `R_<>`s and
//! `(def f)` facts) through `csp-assert`'s validity oracle and recording
//! the method in a [`CheckReport`].
//!
//! The [`scripts`] module contains machine-checked encodings of **every
//! proof in the paper**: the copier examples of §2.1, Table 1's sender
//! lemma, the §2.2(2) receiver exercise, and the six-step protocol
//! theorem of §2.2(3).
//!
//! ```
//! use csp_proof::{render_report, scripts};
//!
//! let table1 = scripts::protocol::sender_table1();
//! let report = table1.check().expect("the paper's Table 1 proof checks");
//! println!("{}", render_report(table1.paper_ref, &report));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod judgement;
mod proof;
mod render;
mod synth;

pub mod scripts;

pub use checker::{check, check_with, CheckReport, Context, Discharge, Obligation, ProofError};
pub use judgement::Judgement;
pub use proof::Proof;
pub use render::render_report;
pub use synth::{spec_goal, synthesize, SynthError};
