//! Judgements — the conclusions and hypotheses of the proof system.
//!
//! The paper's sequents `Γ ⊢ Δ` contain predicates of the form `P sat R`
//! and universally quantified families `∀x:M. q[x] sat S` (the
//! process-array form of the recursion rule).

use std::fmt;

use csp_assert::Assertion;
use csp_lang::{Process, SetExpr};

/// A provable statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Judgement {
    /// `P sat R` — the assertion `R` is true before and after every
    /// communication of `P` (§2).
    Sat {
        /// The process expression.
        process: Process,
        /// The invariant assertion.
        assertion: Assertion,
    },
    /// `∀x:M. J` — a family of judgements indexed by a set, as used for
    /// process arrays.
    Forall {
        /// The bound variable.
        var: String,
        /// Its range.
        set: SetExpr,
        /// The body judgement (mentions `var`).
        body: Box<Judgement>,
    },
}

impl Judgement {
    /// `P sat R`.
    pub fn sat(process: Process, assertion: Assertion) -> Judgement {
        Judgement::Sat { process, assertion }
    }

    /// `∀var:set. body`.
    pub fn forall(var: &str, set: SetExpr, body: Judgement) -> Judgement {
        Judgement::Forall {
            var: var.to_string(),
            set,
            body: Box::new(body),
        }
    }

    /// The `sat` core, looking through quantifiers.
    pub fn core(&self) -> (&Process, &Assertion) {
        match self {
            Judgement::Sat { process, assertion } => (process, assertion),
            Judgement::Forall { body, .. } => body.core(),
        }
    }
}

impl fmt::Display for Judgement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Judgement::Sat { process, assertion } => {
                write!(f, "{process} sat {assertion}")
            }
            Judgement::Forall { var, set, body } => {
                write!(f, "forall {var}:{set}. {body}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_assert::STerm;

    #[test]
    fn display_matches_paper_notation() {
        let j = Judgement::sat(
            Process::call("copier"),
            Assertion::prefix(STerm::chan("wire"), STerm::chan("input")),
        );
        assert_eq!(j.to_string(), "copier sat wire <= input");
        let q = Judgement::forall("x", SetExpr::Named("M".into()), j.clone());
        assert_eq!(q.to_string(), "forall x:M. copier sat wire <= input");
        assert_eq!(q.core().0, &Process::call("copier"));
    }
}
