//! Proofs about the copier pipeline (§1.3(1), §2, §2.1 examples).

use csp_assert::{Assertion, CmpOp, STerm, Term};
use csp_lang::{examples, Process};
use csp_semantics::Universe;

use super::Script;
use crate::{Context, Judgement, Proof};

fn ctx() -> Context {
    Context::new(examples::pipeline(), Universe::new(1))
}

/// `wire ≤ input`.
fn wire_le_input() -> Assertion {
    Assertion::prefix(STerm::chan("wire"), STerm::chan("input"))
}

/// `output ≤ wire`.
fn output_le_wire() -> Assertion {
    Assertion::prefix(STerm::chan("output"), STerm::chan("wire"))
}

/// §2.1(10): `copier sat wire ≤ input`, by recursion, input, output, and
/// consequence — the proof the paper says to "read backwards" in rule
/// (6)'s example.
pub fn copier_wire_le_input() -> Script {
    let inv = wire_le_input();
    Script {
        name: "copier",
        paper_ref: "§2.1 rules (6)/(10) example: copier sat wire <= input",
        context: ctx(),
        goal: Judgement::sat(Process::call("copier"), inv.clone()),
        proof: Proof::recursion(
            "copier",
            inv.clone(),
            Proof::input(
                "v",
                Proof::output(Proof::consequence(inv, Proof::Hypothesis)),
            ),
        ),
    }
}

/// The symmetric claim `recopier sat output ≤ wire` assumed in the
/// parallelism example of §2.1(8).
pub fn recopier_output_le_wire() -> Script {
    let inv = output_le_wire();
    Script {
        name: "recopier",
        paper_ref: "§2.1 rule (8) example premise: recopier sat output <= wire",
        context: ctx(),
        goal: Judgement::sat(Process::call("recopier"), inv.clone()),
        proof: Proof::recursion(
            "recopier",
            inv.clone(),
            Proof::input(
                "v",
                Proof::output(Proof::consequence(inv, Proof::Hypothesis)),
            ),
        ),
    }
}

/// §2 operator (2) example: `copier sat #input ≤ #wire + 1`.
pub fn copier_length_bound() -> Script {
    let inv = Assertion::Cmp(
        CmpOp::Le,
        Term::length(STerm::chan("input")),
        Term::length(STerm::chan("wire")).add(Term::int(1)),
    );
    Script {
        name: "copier-length",
        paper_ref: "§2 example: copier sat #input <= #wire + 1",
        context: ctx(),
        goal: Judgement::sat(Process::call("copier"), inv.clone()),
        proof: Proof::recursion(
            "copier",
            inv.clone(),
            Proof::input(
                "v",
                Proof::output(Proof::consequence(inv, Proof::Hypothesis)),
            ),
        ),
    }
}

/// §2.1 rules (8)–(9) example: the hidden pipeline satisfies
/// `output ≤ input` — parallelism, consequence (transitivity of ≤), and
/// channel hiding.
pub fn pipeline_output_le_input() -> Script {
    let goal_inv = Assertion::prefix(STerm::chan("output"), STerm::chan("input"));
    let stronger = wire_le_input().and(output_le_wire());
    // Sub-proofs for the two components, inlined (their own scripts prove
    // the same judgements standalone).
    let copier_proof = copier_wire_le_input().proof;
    let recopier_proof = recopier_output_le_wire().proof;
    Script {
        name: "pipeline",
        paper_ref:
            "§2.1 rules (8)/(9) example: (chan wire; copier || recopier) sat output <= input",
        context: ctx(),
        goal: Judgement::sat(Process::call("pipeline"), goal_inv.clone()),
        proof: Proof::recursion(
            "pipeline",
            goal_inv,
            Proof::Hiding {
                body: Box::new(Proof::consequence(
                    stronger,
                    Proof::Parallelism {
                        left: Box::new(copier_proof),
                        right: Box::new(recopier_proof),
                    },
                )),
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Discharge;

    #[test]
    fn copier_proof_checks_and_uses_cons_monotonicity() {
        let report = copier_wire_le_input().check().expect("copier proof");
        // The key step is the consequence obligation discharged by the
        // syntactic cons-monotonicity law.
        assert!(report
            .obligations
            .iter()
            .any(|o| matches!(o.discharge, Discharge::Syntactic("cons-monotonicity"))));
        assert!(report.fully_discharged());
    }

    #[test]
    fn length_bound_proof_checks() {
        let report = copier_length_bound().check().expect("length proof");
        assert!(report.rule_count() >= 4);
    }

    #[test]
    fn pipeline_proof_checks_with_transitivity() {
        let report = pipeline_output_le_input().check().expect("pipeline proof");
        // Parallelism, hiding, consequence, and both component proofs.
        assert!(report.rule_count() >= 10);
        assert!(report
            .steps
            .iter()
            .any(|s| s.starts_with("parallelism (8)")));
        assert!(report.steps.iter().any(|s| s.starts_with("hiding (9)")));
    }

    #[test]
    fn wrong_invariant_is_rejected() {
        // copier sat input ≤ wire is false; the proof attempt must fail.
        let bad = Assertion::prefix(STerm::chan("input"), STerm::chan("wire"));
        let script = Script {
            name: "bad",
            paper_ref: "negative test",
            context: ctx(),
            goal: Judgement::sat(Process::call("copier"), bad.clone()),
            proof: Proof::recursion(
                "copier",
                bad.clone(),
                Proof::input(
                    "v",
                    Proof::output(Proof::consequence(bad, Proof::Hypothesis)),
                ),
            ),
        };
        assert!(script.check().is_err());
    }

    #[test]
    fn hiding_rejects_assertions_about_hidden_channels() {
        // (chan wire; …) sat wire ≤ input violates rule 9's side
        // condition.
        let leaky = wire_le_input();
        let script = Script {
            name: "leaky",
            paper_ref: "negative test",
            context: ctx(),
            goal: Judgement::sat(Process::call("pipeline"), leaky.clone()),
            proof: Proof::recursion(
                "pipeline",
                leaky,
                Proof::Hiding {
                    body: Box::new(Proof::Triviality),
                },
            ),
        };
        let err = script.check().unwrap_err();
        assert!(err.to_string().contains("hiding"), "{err}");
    }
}
