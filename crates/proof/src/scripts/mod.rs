//! Machine-checked encodings of every proof in the paper.
//!
//! Each script bundles a [`Context`], a goal [`Judgement`], and a
//! [`Proof`] tree, and exposes a `check()` that runs the checker. The
//! scripts are:
//!
//! | Script | Paper artifact |
//! |---|---|
//! | [`pipeline::copier_wire_le_input`] | §2.1(10) example: `copier sat wire ≤ input` |
//! | [`pipeline::recopier_output_le_wire`] | §2.1(8) example premise |
//! | [`pipeline::copier_length_bound`] | §2's `copier sat #input ≤ #wire + 1` |
//! | [`pipeline::pipeline_output_le_input`] | §2.1(8)–(9) example: the hidden pipeline |
//! | [`protocol::sender_table1`] | **Table 1**: `sender sat f(wire) ≤ input` |
//! | [`protocol::receiver_exercise`] | §2.2(2), "left as an exercise" |
//! | [`protocol::protocol_output_le_input`] | §2.2(3): the 6-step protocol proof |
//! | [`multiplier::zeroes_all_zero`] | §1.3(5) boundary process invariant |
//! | [`multiplier::last_output_le_col`] | §1.3(5) boundary process invariant |
//! | [`buffer::buffer2_out_le_in`] | buffer chain (composition beyond the worked examples) |
//! | [`buffer::buffer2_capacity_bound`] | buffer capacity `#in ≤ #out + 2` |

pub mod buffer;
pub mod multiplier;
pub mod pipeline;
pub mod protocol;

use crate::{check, CheckReport, Context, Judgement, Proof, ProofError};

/// A packaged, checkable proof of one paper claim.
pub struct Script {
    /// Short identifier, e.g. `"table1"`.
    pub name: &'static str,
    /// What the paper calls this result.
    pub paper_ref: &'static str,
    /// The checking context (definitions, universe, functions).
    pub context: Context,
    /// The claim.
    pub goal: Judgement,
    /// The derivation.
    pub proof: Proof,
}

impl Script {
    /// Runs the checker on this script.
    ///
    /// # Errors
    ///
    /// Propagates any [`ProofError`] — a failure means the reproduction
    /// of the paper's proof is broken, so tests treat it as fatal.
    pub fn check(&self) -> Result<CheckReport, ProofError> {
        check(&self.context, &self.goal, &self.proof)
    }
}

/// All scripts, in paper order.
pub fn all_scripts() -> Vec<Script> {
    vec![
        pipeline::copier_wire_le_input(),
        pipeline::recopier_output_le_wire(),
        pipeline::copier_length_bound(),
        pipeline::pipeline_output_le_input(),
        protocol::sender_table1(),
        protocol::receiver_exercise(),
        protocol::protocol_output_le_input(),
        multiplier::zeroes_all_zero(),
        multiplier::last_output_le_col(),
        buffer::buffer2_out_le_in(),
        buffer::buffer2_capacity_bound(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_script_checks() {
        for script in all_scripts() {
            let report = script
                .check()
                .unwrap_or_else(|e| panic!("script `{}` failed: {e}", script.name));
            assert!(report.rule_count() > 0, "{} proved nothing", script.name);
        }
    }

    #[test]
    fn scripts_have_distinct_names() {
        let scripts = all_scripts();
        let mut names: Vec<_> = scripts.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scripts.len());
    }
}
