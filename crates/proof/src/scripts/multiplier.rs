//! Proofs about the multiplier network's boundary processes (§1.3(5)).
//!
//! The paper *states* the full scalar-product invariant of the multiplier
//! but gives no formal proof; the full invariant is verified by bounded
//! model checking in `csp-verify` (experiment E4 of `DESIGN.md`). The
//! boundary processes, however, have copier-shaped invariants that the
//! proof system handles directly, and they exercise subscripted channels
//! in assertions.

use csp_assert::{Assertion, CmpOp, STerm, Term};
use csp_lang::{examples, Expr, Process, SetExpr};
use csp_semantics::Universe;

use super::Script;
use crate::{Context, Judgement, Proof};

fn ctx() -> Context {
    let mut c = Context::new(examples::multiplier(), Universe::new(1));
    c.env = examples::multiplier_env(&[1, 1, 1]);
    c
}

/// `zeroes sat ∀i:NAT. 1 ≤ i ≤ #col[0] ⇒ col[0]_i = 0` — everything the
/// boundary process ever sends on `col[0]` is zero.
pub fn zeroes_all_zero() -> Script {
    let col0 = || STerm::chan_at("col", Expr::int(0));
    let guard = Assertion::Cmp(CmpOp::Le, Term::int(1), Term::var("i")).and(Assertion::Cmp(
        CmpOp::Le,
        Term::var("i"),
        Term::length(col0()),
    ));
    let body = Assertion::Cmp(
        CmpOp::Eq,
        Term::Index(Box::new(col0()), Box::new(Term::var("i"))),
        Term::int(0),
    );
    let inv = Assertion::ForallIn("i".into(), SetExpr::Nat, Box::new(guard.implies(body)));
    Script {
        name: "zeroes",
        paper_ref: "§1.3(5) boundary: zeroes only ever outputs 0 on col[0]",
        context: ctx(),
        goal: Judgement::sat(Process::call("zeroes"), inv.clone()),
        proof: Proof::recursion(
            "zeroes",
            inv.clone(),
            Proof::output(Proof::consequence(inv, Proof::Hypothesis)),
        ),
    }
}

/// `last sat output ≤ col[3]` — the drain process copies the final
/// column to the output channel.
pub fn last_output_le_col() -> Script {
    let inv = Assertion::prefix(STerm::chan("output"), STerm::chan_at("col", Expr::int(3)));
    Script {
        name: "last",
        paper_ref: "§1.3(5) boundary: last sat output <= col[3]",
        context: ctx(),
        goal: Judgement::sat(Process::call("last"), inv.clone()),
        proof: Proof::recursion(
            "last",
            inv.clone(),
            Proof::input(
                "v",
                Proof::output(Proof::consequence(inv, Proof::Hypothesis)),
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroes_invariant_checks() {
        let report = zeroes_all_zero().check().expect("zeroes proof");
        assert!(report.rule_count() >= 3);
    }

    #[test]
    fn last_invariant_checks() {
        let report = last_output_le_col().check().expect("last proof");
        assert!(report.rule_count() >= 4);
    }

    #[test]
    fn subscripted_channels_are_distinct_in_assertions() {
        // last sat output ≤ col[2] is false (it reads col[3]); the
        // consequence obligation must be refuted.
        let wrong = Assertion::prefix(STerm::chan("output"), STerm::chan_at("col", Expr::int(2)));
        let script = Script {
            name: "bad-last",
            paper_ref: "negative test",
            context: ctx(),
            goal: Judgement::sat(Process::call("last"), wrong.clone()),
            proof: Proof::recursion(
                "last",
                wrong.clone(),
                Proof::input(
                    "v",
                    Proof::output(Proof::consequence(wrong, Proof::Hypothesis)),
                ),
            ),
        };
        assert!(script.check().is_err());
    }
}
