//! Composed-network proofs for the buffer chain — the pipeline proof
//! pattern (§2.1 rules (8)–(10)) applied to a system the paper does not
//! spell out, demonstrating that the rule set composes beyond the
//! worked examples.
//!
//! `buffer2 = chan link; (cell0 || cell1)` with
//! `cell0 = in?x:NAT -> link!x -> cell0` and
//! `cell1 = link?y:NAT -> out!y -> cell1`. We prove the per-cell copier
//! invariants by synthesis-shaped trees and compose them to
//! `buffer2 sat out ≤ in`, plus the buffering bound
//! `#in ≤ #out + 2` (at most two messages in flight).

use csp_assert::{Assertion, CmpOp, STerm, Term};
use csp_lang::{examples, Process};
use csp_semantics::Universe;

use super::Script;
use crate::{Context, Judgement, Proof};

fn ctx() -> Context {
    let mut c = Context::new(examples::buffer2(), Universe::new(1));
    // The capacity proof's consequence obligation ranges over three
    // channels; histories of length ≤ 2 already exercise every shape a
    // length-arithmetic implication can distinguish, and keep the oracle
    // at ~9k cases instead of ~600k.
    c.decide_config.max_history_len = 2;
    c
}

fn link_le_in() -> Assertion {
    Assertion::prefix(STerm::chan("link"), STerm::chan("in"))
}

fn out_le_link() -> Assertion {
    Assertion::prefix(STerm::chan("out"), STerm::chan("link"))
}

/// `buffer2 sat out ≤ in` — FIFO delivery through the hidden link.
pub fn buffer2_out_le_in() -> Script {
    let goal_inv = Assertion::prefix(STerm::chan("out"), STerm::chan("in"));
    let cell0 = Proof::recursion(
        "cell0",
        link_le_in(),
        Proof::input(
            "v",
            Proof::output(Proof::consequence(link_le_in(), Proof::Hypothesis)),
        ),
    );
    let cell1 = Proof::recursion(
        "cell1",
        out_le_link(),
        Proof::input(
            "v",
            Proof::output(Proof::consequence(out_le_link(), Proof::Hypothesis)),
        ),
    );
    Script {
        name: "buffer2",
        paper_ref: "buffer chain: (chan link; cell0 || cell1) sat out <= in",
        context: ctx(),
        goal: Judgement::sat(Process::call("buffer2"), goal_inv.clone()),
        proof: Proof::recursion(
            "buffer2",
            goal_inv,
            Proof::Hiding {
                body: Box::new(Proof::consequence(
                    link_le_in().and(out_le_link()),
                    Proof::Parallelism {
                        left: Box::new(cell0),
                        right: Box::new(cell1),
                    },
                )),
            },
        ),
    }
}

/// `buffer2 sat #in ≤ #out + 2` — the capacity bound: a two-cell chain
/// holds at most two undelivered messages.
pub fn buffer2_capacity_bound() -> Script {
    // Per-cell length invariants, chained through the link:
    //   cell0 sat #in ≤ #link + 1
    //   cell1 sat #link ≤ #out + 1
    // together give #in ≤ #out + 2 by consequence.
    let c0 = Assertion::Cmp(
        CmpOp::Le,
        Term::length(STerm::chan("in")),
        Term::length(STerm::chan("link")).add(Term::int(1)),
    );
    let c1 = Assertion::Cmp(
        CmpOp::Le,
        Term::length(STerm::chan("link")),
        Term::length(STerm::chan("out")).add(Term::int(1)),
    );
    let goal_inv = Assertion::Cmp(
        CmpOp::Le,
        Term::length(STerm::chan("in")),
        Term::length(STerm::chan("out")).add(Term::int(2)),
    );
    let cell0 = Proof::recursion(
        "cell0",
        c0.clone(),
        Proof::input(
            "v",
            Proof::output(Proof::consequence(c0.clone(), Proof::Hypothesis)),
        ),
    );
    let cell1 = Proof::recursion(
        "cell1",
        c1.clone(),
        Proof::input(
            "v",
            Proof::output(Proof::consequence(c1.clone(), Proof::Hypothesis)),
        ),
    );
    Script {
        name: "buffer2-capacity",
        paper_ref: "buffer chain: buffer2 sat #in <= #out + 2 (capacity bound)",
        context: ctx(),
        goal: Judgement::sat(Process::call("buffer2"), goal_inv.clone()),
        proof: Proof::recursion(
            "buffer2",
            goal_inv,
            Proof::Hiding {
                body: Box::new(Proof::consequence(
                    c0.and(c1),
                    Proof::Parallelism {
                        left: Box::new(cell0),
                        right: Box::new(cell1),
                    },
                )),
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_fifo_proof_checks() {
        let report = buffer2_out_le_in().check().expect("buffer2 proof");
        assert!(report.rule_count() >= 10);
    }

    #[test]
    fn capacity_bound_proof_checks() {
        let report = buffer2_capacity_bound().check().expect("capacity proof");
        assert!(report.rule_count() >= 10);
    }

    #[test]
    fn hiding_blocks_capacity_claims_about_the_link() {
        // #in ≤ #link + 1 mentions the concealed link: rule 9 must
        // refuse to push it through the hiding.
        let leaky = Assertion::Cmp(
            CmpOp::Le,
            Term::length(STerm::chan("in")),
            Term::length(STerm::chan("link")).add(Term::int(1)),
        );
        let script = Script {
            name: "leaky-buffer",
            paper_ref: "negative test",
            context: ctx(),
            goal: Judgement::sat(Process::call("buffer2"), leaky.clone()),
            proof: Proof::recursion(
                "buffer2",
                leaky,
                Proof::Hiding {
                    body: Box::new(Proof::Triviality),
                },
            ),
        };
        assert!(script.check().is_err());
    }
}
