//! The retransmission-protocol proofs of §2.2, including **Table 1**.

use csp_assert::{Assertion, STerm};
use csp_lang::{examples, Expr, Process};
use csp_semantics::Universe;
use csp_trace::Value;

use super::Script;
use crate::{Context, Judgement, Proof};

/// The protocol context: Δ1–Δ3, with the abstract message set `M`
/// sampled as `{0, 1}` for the bounded oracle (proof structure itself is
/// symbolic in `M`).
fn ctx() -> Context {
    Context::new(
        examples::protocol(),
        Universe::new(1).with_named("M", [Value::nat(0), Value::nat(1)]),
    )
}

/// `f(wire) ≤ input` — the sender's invariant.
fn sender_inv() -> Assertion {
    Assertion::prefix(STerm::chan("wire").app("f"), STerm::chan("input"))
}

/// `f(wire) ≤ x^input` — the invariant of the array element `q[x]`.
fn q_inv() -> Assertion {
    Assertion::prefix(
        STerm::chan("wire").app("f"),
        STerm::chan("input").cons(csp_assert::Term::var("x")),
    )
}

/// `output ≤ f(wire)` — the receiver's invariant.
fn receiver_inv() -> Assertion {
    Assertion::prefix(STerm::chan("output"), STerm::chan("wire").app("f"))
}

/// The joint recursion proof of Δ1 (sender and q together), concluding
/// the selected spec. Table 1 of the paper is the `q` body; steps
/// (1)–(21) map onto the nodes as follows:
///
/// * steps (1)–(2): the two recursion hypotheses;
/// * steps (3)–(4): the `sender` body — input rule, `R_<>` premise
///   `f(<>) ≤ <>`, and ∀-elim of hypothesis (2) at the received value;
/// * steps (5)–(19): the `q[x]` body — ∀-intro on `x ∈ M`, output rule
///   on `wire!x` (step (18)'s `f(<x>) ≤ <x>` base), the alternative rule
///   (step (17)), and per arm the input rule with the `(def f)`
///   consequences of steps (8), (9) and (12);
/// * steps (20)–(21): ∀-introduction and assembly, performed by the
///   recursion node.
fn delta1_proof(select: usize) -> Proof {
    let sender_body = Proof::input(
        "v",
        // q[v] sat f(wire) ≤ v^input — ∀-elim of the q hypothesis.
        Proof::Instantiate {
            arg: Expr::var("v"),
        },
    );
    // Left arm: wire?y:{ACK} → sender.
    let ack_arm = Proof::input("w", Proof::consequence(sender_inv(), Proof::Hypothesis));
    // Right arm: wire?y:{NACK} → q[x].
    let nack_arm = Proof::input(
        "w",
        Proof::consequence(
            q_inv(),
            Proof::Instantiate {
                arg: Expr::var("x"),
            },
        ),
    );
    let q_body = Proof::ForallIntro {
        body: Box::new(Proof::output(Proof::alternative(ack_arm, nack_arm))),
    };
    Proof::Recursion {
        specs: vec![
            ("sender".to_string(), sender_inv()),
            ("q".to_string(), q_inv()),
        ],
        bodies: vec![sender_body, q_body],
        select,
    }
}

/// **Table 1**: `Δ1 ⊢ sender sat f(wire) ≤ input`.
pub fn sender_table1() -> Script {
    Script {
        name: "table1",
        paper_ref: "Table 1: sender sat f(wire) <= input (joint recursion with q)",
        context: ctx(),
        goal: Judgement::sat(Process::call("sender"), sender_inv()),
        proof: delta1_proof(0),
    }
}

/// §2.2(2): `Δ2 ⊢ receiver sat output ≤ f(wire)` — "the proof is left as
/// an exercise", completed here.
pub fn receiver_exercise() -> Script {
    let inv = receiver_inv();
    // receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
    //                         | wire!NACK -> receiver)
    let ack_arm = Proof::output(Proof::output(Proof::consequence(
        inv.clone(),
        Proof::Hypothesis,
    )));
    let nack_arm = Proof::output(Proof::consequence(inv.clone(), Proof::Hypothesis));
    Script {
        name: "receiver",
        paper_ref: "§2.2(2) exercise: receiver sat output <= f(wire)",
        context: ctx(),
        goal: Judgement::sat(Process::call("receiver"), inv.clone()),
        proof: Proof::recursion(
            "receiver",
            inv,
            Proof::input("v", Proof::alternative(ack_arm, nack_arm)),
        ),
    }
}

/// §2.2(3): the six-step proof that
/// `Δ1, Δ2, Δ3 ⊢ protocol sat output ≤ input`:
///
/// 1. `sender sat f(wire) ≤ input` (Table 1);
/// 2. `receiver sat output ≤ f(wire)` (the exercise);
/// 3. parallelism: the conjunction;
/// 4. consequence: transitivity of `≤` through `f`;
/// 5. hiding of `wire`;
/// 6. recursion (definition unfolding of `protocol`).
pub fn protocol_output_le_input() -> Script {
    let goal_inv = Assertion::prefix(STerm::chan("output"), STerm::chan("input"));
    let stronger = sender_inv().and(receiver_inv());
    Script {
        name: "protocol",
        paper_ref: "§2.2(3): protocol sat output <= input",
        context: ctx(),
        goal: Judgement::sat(Process::call("protocol"), goal_inv.clone()),
        proof: Proof::recursion(
            "protocol",
            goal_inv,
            Proof::Hiding {
                body: Box::new(Proof::consequence(
                    stronger,
                    Proof::Parallelism {
                        left: Box::new(delta1_proof(0)),
                        right: Box::new(receiver_exercise().proof),
                    },
                )),
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Discharge;

    #[test]
    fn table1_checks() {
        let report = sender_table1().check().expect("Table 1");
        // The paper's table has 21 numbered steps; our tree compresses
        // the natural-deduction plumbing but must still contain the
        // essential rule applications.
        assert!(
            report.rule_count() >= 9,
            "only {} steps",
            report.rule_count()
        );
        assert!(report.steps.iter().any(|s| s.starts_with("recursion")));
        assert!(report.steps.iter().any(|s| s.starts_with("alternative")));
        // Every `(def f)` obligation must actually discharge.
        assert!(report
            .obligations
            .iter()
            .all(|o| !matches!(o.discharge, Discharge::MembershipAssumed)));
    }

    #[test]
    fn receiver_exercise_checks() {
        let report = receiver_exercise().check().expect("receiver");
        assert!(report.rule_count() >= 7);
    }

    #[test]
    fn protocol_six_step_proof_checks() {
        let report = protocol_output_le_input().check().expect("protocol");
        for rule in [
            "parallelism (8)",
            "hiding (9)",
            "consequence (2)",
            "recursion (10)",
        ] {
            assert!(
                report.steps.iter().any(|s| s.starts_with(rule)),
                "missing {rule}"
            );
        }
    }

    #[test]
    fn swapped_arms_fail() {
        // Using the ACK consequence in the NACK arm must be rejected:
        // f(x^ACK^wire) ≠ f(x^NACK^wire).
        let bad_arm_left = Proof::input(
            "w",
            Proof::consequence(
                q_inv(),
                Proof::Instantiate {
                    arg: Expr::var("x"),
                },
            ),
        );
        // For the ACK arm the continuation is `sender`, so consequence
        // from the q-invariant will fail at premise matching or at the
        // implication; either way the check errs.
        let bad_q_body = Proof::ForallIntro {
            body: Box::new(Proof::output(Proof::alternative(
                bad_arm_left.clone(),
                bad_arm_left,
            ))),
        };
        let proof = Proof::Recursion {
            specs: vec![
                ("sender".to_string(), sender_inv()),
                ("q".to_string(), q_inv()),
            ],
            bodies: vec![
                Proof::input(
                    "v",
                    Proof::Instantiate {
                        arg: Expr::var("v"),
                    },
                ),
                bad_q_body,
            ],
            select: 0,
        };
        let script = Script {
            name: "bad-table1",
            paper_ref: "negative test",
            context: ctx(),
            goal: Judgement::sat(Process::call("sender"), sender_inv()),
            proof,
        };
        assert!(script.check().is_err());
    }
}
