//! The proof checker: verifies that a [`Proof`] tree derives a goal
//! [`Judgement`] under a [`Context`], discharging every pure premise
//! through the [`decide_valid`](csp_assert::decide_valid) oracle and
//! recording how.

use csp_analysis::{Linter, Severity};
use csp_assert::{
    decide_valid, subst_chan_cons, subst_empty, subst_var, Assertion, DecideConfig, Decision,
    FuncTable, Term,
};
use csp_lang::{channel_alphabet, subst_process_with, Definitions, Env, Expr, Process, SetExpr};
use csp_obs::{Collector, Metered, MetricsSnapshot, Span};
use csp_semantics::Universe;
use csp_trace::ChannelSet;

use crate::{Judgement, Proof};

/// Everything a proof is checked against: the definitions in scope, the
/// sequence functions, and the finite universe backing the bounded
/// validity oracle.
#[derive(Debug, Clone)]
pub struct Context {
    /// The process equations (Δ-lists in the paper's examples).
    pub defs: Definitions,
    /// Sequence functions usable in assertions (e.g. `f`).
    pub funcs: FuncTable,
    /// Finite universe for the bounded oracle and membership checks.
    pub universe: Universe,
    /// Oracle thoroughness.
    pub decide_config: DecideConfig,
    /// Host constants (e.g. the multiplier's vector cells `v[1]`…).
    pub env: Env,
}

impl Context {
    /// A context over the given definitions with default oracle settings.
    pub fn new(defs: Definitions, universe: Universe) -> Self {
        Context {
            defs,
            funcs: FuncTable::with_builtins(),
            universe,
            decide_config: DecideConfig::default(),
            env: Env::new(),
        }
    }
}

/// How a pure obligation was discharged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Discharge {
    /// By a syntactic law of the sequence theory.
    Syntactic(&'static str),
    /// By exhaustive bounded evaluation over `n` cases.
    Bounded(usize),
    /// A set-membership obligation `e ∈ M` closed because `e` is the
    /// variable a surrounding binder ranges over `M`.
    Binder,
    /// A membership obligation checked concretely against the universe.
    MembershipChecked,
    /// A membership obligation in an abstract named set, assumed (the
    /// paper's implicit `x ∈ M` hypotheses).
    MembershipAssumed,
}

/// One discharged pure premise.
#[derive(Debug, Clone)]
pub struct Obligation {
    /// Which rule emitted it.
    pub rule: &'static str,
    /// Rendered formula.
    pub formula: String,
    /// How it was discharged.
    pub discharge: Discharge,
}

/// The result of a successful check.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Every rule application, in depth-first order.
    pub steps: Vec<String>,
    /// Every pure premise and how it was discharged.
    pub obligations: Vec<Obligation>,
    /// What the check cost: rule and obligation counts, per-discharge
    /// tallies (always populated), plus per-rule span timings when an
    /// enabled [`Collector`] was supplied to [`check_with`].
    pub metrics: MetricsSnapshot,
}

impl Metered for CheckReport {
    fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }
}

impl CheckReport {
    /// Number of rule applications.
    pub fn rule_count(&self) -> usize {
        self.steps.len()
    }

    /// True if no obligation rests on an assumption (everything was
    /// syntactic, bounded-checked, or binder-closed).
    pub fn fully_discharged(&self) -> bool {
        !self
            .obligations
            .iter()
            .any(|o| o.discharge == Discharge::MembershipAssumed)
    }
}

/// Why a check failed.
#[derive(Debug, Clone)]
pub enum ProofError {
    /// The goal's shape does not match the rule applied.
    GoalShape {
        /// The rule being applied.
        rule: &'static str,
        /// What the goal was.
        goal: String,
        /// What shape was required.
        expected: String,
    },
    /// No hypothesis matches the goal.
    NoHypothesis {
        /// The unproven goal.
        goal: String,
    },
    /// A pure premise is not valid.
    InvalidPremise {
        /// The rule that emitted it.
        rule: &'static str,
        /// The formula.
        formula: String,
        /// The oracle's verdict.
        decision: String,
    },
    /// A structural side condition failed (channel occurrence,
    /// freshness, alphabet inclusion, …).
    SideCondition {
        /// The rule.
        rule: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// A recursion node is malformed (unknown name, arity, select out of
    /// range, body/spec count mismatch).
    BadRecursion(String),
    /// The definitions the proof is over fail static analysis: the
    /// linter reported error-severity diagnostics (undefined names,
    /// unbound variables, alphabet violations, …), so the proof rules'
    /// side conditions cannot be trusted.
    IllFormedDefinitions(String),
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::GoalShape {
                rule,
                goal,
                expected,
            } => write!(
                f,
                "rule {rule} cannot derive `{goal}` (expected {expected})"
            ),
            ProofError::NoHypothesis { goal } => {
                write!(f, "no hypothesis matches `{goal}`")
            }
            ProofError::InvalidPremise {
                rule,
                formula,
                decision,
            } => write!(
                f,
                "pure premise of {rule} not valid: `{formula}` ({decision})"
            ),
            ProofError::SideCondition { rule, message } => {
                write!(f, "side condition of {rule} violated: {message}")
            }
            ProofError::BadRecursion(m) => write!(f, "malformed recursion: {m}"),
            ProofError::IllFormedDefinitions(m) => {
                write!(f, "definitions fail static analysis: {m}")
            }
        }
    }
}

impl std::error::Error for ProofError {}

/// Checks that `proof` derives `goal` in `ctx`.
///
/// # Errors
///
/// Returns the first [`ProofError`] encountered in depth-first order.
///
/// # Examples
///
/// ```
/// use csp_assert::{Assertion, STerm};
/// use csp_lang::{parse_definitions, Process};
/// use csp_proof::{check, Context, Judgement, Proof};
/// use csp_semantics::Universe;
///
/// let defs = parse_definitions("copier = input?x:NAT -> wire!x -> copier").unwrap();
/// let ctx = Context::new(defs, Universe::new(1));
/// let inv = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
/// let goal = Judgement::sat(Process::call("copier"), inv.clone());
/// let proof = Proof::recursion(
///     "copier",
///     inv.clone(),
///     Proof::input("v", Proof::output(Proof::consequence(inv, Proof::Hypothesis))),
/// );
/// let report = check(&ctx, &goal, &proof).unwrap();
/// assert!(report.rule_count() >= 4);
/// ```
pub fn check(ctx: &Context, goal: &Judgement, proof: &Proof) -> Result<CheckReport, ProofError> {
    check_with(ctx, goal, proof, &Collector::disabled())
}

/// [`check`] with an observation stream: records a root `proof.check`
/// span and one `proof.rule` span per rule application (carrying the
/// rule name and, when enabled, the rendered judgement). The returned
/// report is identical to [`check`]'s apart from span timings in its
/// metrics; with `Collector::disabled()` each instrumentation point
/// costs one branch.
///
/// # Errors
///
/// Same conditions as [`check`].
pub fn check_with(
    ctx: &Context,
    goal: &Judgement,
    proof: &Proof,
    collector: &Collector,
) -> Result<CheckReport, ProofError> {
    let errors: Vec<String> = Linter::new(&ctx.defs)
        .with_env(&ctx.env)
        .run()
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .collect();
    if !errors.is_empty() {
        return Err(ProofError::IllFormedDefinitions(errors.join("; ")));
    }
    let mut report = CheckReport::default();
    let mut scope = Scope::default();
    let root = collector.span("proof.check");
    check_inner(ctx, goal, proof, &mut scope, &mut report, &root)?;
    root.end();
    report.metrics = tally(&report);
    if collector.is_enabled() {
        // Only the proof-taxonomy spans: the collector may be shared
        // with other subsystems in one session.
        report.metrics.spans = collector
            .snapshot()
            .spans
            .into_iter()
            .filter(|(k, _)| k.starts_with("proof."))
            .collect();
        // Mirror the tallies the other way so a session aggregating
        // several operations sees them alongside its span stats.
        for (name, value) in &report.metrics.counters {
            collector.add(name.clone(), *value);
        }
    }
    Ok(report)
}

/// The always-populated counter part of a report's metrics.
fn tally(report: &CheckReport) -> MetricsSnapshot {
    let mut m = MetricsSnapshot::new();
    m.set_counter("proof.rules", report.steps.len() as u64)
        .set_counter("proof.obligations", report.obligations.len() as u64);
    for o in &report.obligations {
        let kind = match o.discharge {
            Discharge::Syntactic(_) => "proof.discharge.syntactic",
            Discharge::Bounded(_) => "proof.discharge.bounded",
            Discharge::Binder => "proof.discharge.binder",
            Discharge::MembershipChecked => "proof.discharge.membership_checked",
            Discharge::MembershipAssumed => "proof.discharge.membership_assumed",
        };
        m.add_counter(kind, 1);
        if let Discharge::Bounded(cases) = o.discharge {
            m.add_counter("proof.bounded_cases", cases as u64);
        }
    }
    m
}

#[derive(Debug, Default, Clone)]
struct Scope {
    hypotheses: Vec<Judgement>,
    binders: Vec<(String, SetExpr)>,
}

fn check_inner(
    ctx: &Context,
    goal: &Judgement,
    proof: &Proof,
    scope: &mut Scope,
    report: &mut CheckReport,
    parent: &Span,
) -> Result<(), ProofError> {
    report
        .steps
        .push(format!("{}: {}", proof.rule_name(), goal));
    let mut rule_span = parent.child("proof.rule");
    rule_span.record("rule", proof.rule_name());
    if rule_span.is_enabled() {
        rule_span.record("judgement", goal.to_string());
    }
    let span = rule_span;
    match proof {
        Proof::Hypothesis => {
            if scope.hypotheses.contains(goal) {
                Ok(())
            } else {
                Err(ProofError::NoHypothesis {
                    goal: goal.to_string(),
                })
            }
        }

        Proof::Instantiate { arg } => {
            let (gp, ga) = match goal {
                Judgement::Sat { process, assertion } => (process, assertion),
                Judgement::Forall { .. } => {
                    return Err(shape("forall-elim", goal, "a sat judgement"))
                }
            };
            for hyp in &scope.hypotheses {
                if let Judgement::Forall { var, set, body } = hyp {
                    if let Judgement::Sat { process, assertion } = body.as_ref() {
                        let inst_p = subst_process_with(process, var, arg);
                        let inst_a = subst_var(assertion, var, arg);
                        if &inst_p == gp && &inst_a == ga {
                            discharge_membership(ctx, scope, arg, set, report)?;
                            return Ok(());
                        }
                    }
                }
            }
            Err(ProofError::NoHypothesis {
                goal: goal.to_string(),
            })
        }

        Proof::ForallIntro { body } => match goal {
            Judgement::Forall { var, set, body: jb } => {
                if scope.binders.iter().any(|(v, _)| v == var) {
                    return Err(ProofError::SideCondition {
                        rule: "forall-intro",
                        message: format!("variable `{var}` is already bound"),
                    });
                }
                scope.binders.push((var.clone(), set.clone()));
                let r = check_inner(ctx, jb, body, scope, report, &span);
                scope.binders.pop();
                r
            }
            Judgement::Sat { .. } => Err(shape("forall-intro", goal, "a forall judgement")),
        },

        Proof::Triviality => {
            let (_, t) = sat_goal("triviality (1)", goal)?;
            oblige(ctx, scope, report, "triviality (1)", t.clone())
        }

        Proof::Consequence { stronger, premise } => {
            let (p, s) = sat_goal("consequence (2)", goal)?;
            let sub = Judgement::sat(p.clone(), stronger.clone());
            check_inner(ctx, &sub, premise, scope, report, &span)?;
            oblige(
                ctx,
                scope,
                report,
                "consequence (2)",
                stronger.clone().implies(s.clone()),
            )
        }

        Proof::Conjunction { left, right } => {
            let (p, a) = sat_goal("conjunction (3)", goal)?;
            let (r, s) = match a {
                Assertion::And(r, s) => (r.as_ref().clone(), s.as_ref().clone()),
                _ => return Err(shape("conjunction (3)", goal, "P sat (R and S)")),
            };
            check_inner(
                ctx,
                &Judgement::sat(p.clone(), r),
                left,
                scope,
                report,
                &span,
            )?;
            check_inner(
                ctx,
                &Judgement::sat(p.clone(), s),
                right,
                scope,
                report,
                &span,
            )
        }

        Proof::Emptiness => {
            let (p, r) = sat_goal("emptiness (4)", goal)?;
            if !matches!(p, Process::Stop) {
                return Err(shape("emptiness (4)", goal, "STOP sat R"));
            }
            oblige(ctx, scope, report, "emptiness (4)", subst_empty(r))
        }

        Proof::Output { body } => {
            let (p, r) = sat_goal("output (5)", goal)?;
            let (chan, msg, then) = match p {
                Process::Output { chan, msg, then } => (chan, msg, then),
                _ => return Err(shape("output (5)", goal, "(c!e -> P) sat R")),
            };
            oblige(ctx, scope, report, "output (5)", subst_empty(r))?;
            let r2 = subst_chan_cons(r, chan, &Term::Expr(msg.clone()));
            check_inner(
                ctx,
                &Judgement::sat((**then).clone(), r2),
                body,
                scope,
                report,
                &span,
            )
        }

        Proof::Input { fresh, body } => {
            let (p, r) = sat_goal("input (6)", goal)?;
            let (chan, var, set, then) = match p {
                Process::Input {
                    chan,
                    var,
                    set,
                    then,
                } => (chan, var, set, then),
                _ => return Err(shape("input (6)", goal, "(c?x:M -> P) sat R")),
            };
            // Freshness: v not free in P, R, or c (§2.1(6)).
            let fresh_ok = !csp_lang::free_vars_process(then).contains(fresh)
                && !csp_assert::free_vars(r).contains(fresh)
                && !chan
                    .indices()
                    .iter()
                    .any(|e| csp_lang::free_vars_expr(e).contains(fresh))
                && !scope.binders.iter().any(|(v, _)| v == fresh);
            if !fresh_ok {
                return Err(ProofError::SideCondition {
                    rule: "input (6)",
                    message: format!("`{fresh}` is not fresh"),
                });
            }
            oblige(ctx, scope, report, "input (6)", subst_empty(r))?;
            let p2 = subst_process_with(then, var, &Expr::var(fresh));
            let r2 = subst_chan_cons(r, chan, &Term::var(fresh));
            scope.binders.push((fresh.clone(), set.clone()));
            let res = check_inner(ctx, &Judgement::sat(p2, r2), body, scope, report, &span);
            scope.binders.pop();
            res
        }

        Proof::Alternative { left, right } => {
            let (p, r) = sat_goal("alternative (7)", goal)?;
            let (a, b) = match p {
                Process::Choice(a, b) => (a, b),
                _ => return Err(shape("alternative (7)", goal, "(P | Q) sat R")),
            };
            check_inner(
                ctx,
                &Judgement::sat((**a).clone(), r.clone()),
                left,
                scope,
                report,
                &span,
            )?;
            check_inner(
                ctx,
                &Judgement::sat((**b).clone(), r.clone()),
                right,
                scope,
                report,
                &span,
            )
        }

        Proof::Parallelism { left, right } => {
            let (p, a) = sat_goal("parallelism (8)", goal)?;
            let (pl, pr) = match p {
                Process::Parallel { left, right, .. } => (left, right),
                _ => return Err(shape("parallelism (8)", goal, "(P || Q) sat (R and S)")),
            };
            let (r, s) = match a {
                Assertion::And(r, s) => (r.as_ref().clone(), s.as_ref().clone()),
                _ => return Err(shape("parallelism (8)", goal, "(P || Q) sat (R and S)")),
            };
            // Side conditions: channels of R among P's, of S among Q's.
            let x = channel_alphabet(pl, &ctx.defs, &ctx.env).map_err(|e| {
                ProofError::SideCondition {
                    rule: "parallelism (8)",
                    message: format!("cannot compute left alphabet: {e}"),
                }
            })?;
            let y = channel_alphabet(pr, &ctx.defs, &ctx.env).map_err(|e| {
                ProofError::SideCondition {
                    rule: "parallelism (8)",
                    message: format!("cannot compute right alphabet: {e}"),
                }
            })?;
            assertion_channels_within(&r, &x, "left", &ctx.env)?;
            assertion_channels_within(&s, &y, "right", &ctx.env)?;
            check_inner(
                ctx,
                &Judgement::sat((**pl).clone(), r),
                left,
                scope,
                report,
                &span,
            )?;
            check_inner(
                ctx,
                &Judgement::sat((**pr).clone(), s),
                right,
                scope,
                report,
                &span,
            )
        }

        Proof::Hiding { body } => {
            let (p, r) = sat_goal("hiding (9)", goal)?;
            let (channels, inner) = match p {
                Process::Hide { channels, body } => (channels, body),
                _ => return Err(shape("hiding (9)", goal, "(chan L; P) sat R")),
            };
            // Side condition: R mentions no channel of L.
            for h in channels {
                for c in r.channels() {
                    let clash = match (h.resolve(&ctx.env), c.resolve(&ctx.env)) {
                        (Ok(hc), Ok(cc)) => hc == cc,
                        _ => h.base() == c.base(),
                    };
                    if clash {
                        return Err(ProofError::SideCondition {
                            rule: "hiding (9)",
                            message: format!("assertion mentions concealed channel `{h}`"),
                        });
                    }
                }
            }
            check_inner(
                ctx,
                &Judgement::sat((**inner).clone(), r.clone()),
                body,
                scope,
                report,
                &span,
            )
        }

        Proof::Recursion {
            specs,
            bodies,
            select,
        } => {
            if specs.len() != bodies.len() {
                return Err(ProofError::BadRecursion(format!(
                    "{} spec(s) but {} body proof(s)",
                    specs.len(),
                    bodies.len()
                )));
            }
            if *select >= specs.len() {
                return Err(ProofError::BadRecursion(format!(
                    "select index {select} out of range"
                )));
            }
            // Build the spec judgements and check the conclusion matches.
            let mut spec_judgements = Vec::with_capacity(specs.len());
            for (name, inv) in specs {
                spec_judgements.push(spec_judgement(ctx, name, inv)?);
            }
            if &spec_judgements[*select] != goal {
                return Err(ProofError::GoalShape {
                    rule: "recursion (10)",
                    goal: goal.to_string(),
                    expected: spec_judgements[*select].to_string(),
                });
            }
            // Base premises: S_<> for each spec (under the array binder
            // when present).
            for (name, inv) in specs {
                let base = match ctx
                    .defs
                    .get(name)
                    .and_then(|d| d.param().map(|(v, s)| (v.to_string(), s.clone())))
                {
                    Some((var, set)) => Assertion::ForallIn(var, set, Box::new(subst_empty(inv))),
                    None => subst_empty(inv),
                };
                oblige(ctx, scope, report, "recursion (10) base", base)?;
            }
            // Inductive premises with all specs as hypotheses.
            let added = spec_judgements.len();
            scope.hypotheses.extend(spec_judgements);
            let mut result = Ok(());
            for ((name, inv), body_proof) in specs.iter().zip(bodies) {
                let def = ctx
                    .defs
                    .get(name)
                    .ok_or_else(|| ProofError::BadRecursion(format!("`{name}` undefined")))?;
                let body_goal = match def.param() {
                    None => Judgement::sat(def.body().clone(), inv.clone()),
                    Some((var, set)) => Judgement::forall(
                        var,
                        set.clone(),
                        Judgement::sat(def.body().clone(), inv.clone()),
                    ),
                };
                result = check_inner(ctx, &body_goal, body_proof, scope, report, &span);
                if result.is_err() {
                    break;
                }
            }
            scope.hypotheses.truncate(scope.hypotheses.len() - added);
            result
        }
    }
}

/// The judgement a recursion spec claims: `p sat S` for plain equations,
/// `∀x:M. q[x] sat S` for array equations.
fn spec_judgement(ctx: &Context, name: &str, inv: &Assertion) -> Result<Judgement, ProofError> {
    let def = ctx
        .defs
        .get(name)
        .ok_or_else(|| ProofError::BadRecursion(format!("`{name}` undefined")))?;
    Ok(match def.param() {
        None => Judgement::sat(Process::call(name), inv.clone()),
        Some((var, set)) => Judgement::forall(
            var,
            set.clone(),
            Judgement::sat(Process::call1(name, Expr::var(var)), inv.clone()),
        ),
    })
}

fn sat_goal<'a>(
    rule: &'static str,
    goal: &'a Judgement,
) -> Result<(&'a Process, &'a Assertion), ProofError> {
    match goal {
        Judgement::Sat { process, assertion } => Ok((process, assertion)),
        Judgement::Forall { .. } => Err(shape(rule, goal, "a sat judgement")),
    }
}

fn shape(rule: &'static str, goal: &Judgement, expected: &str) -> ProofError {
    ProofError::GoalShape {
        rule,
        goal: goal.to_string(),
        expected: expected.to_string(),
    }
}

/// Emits and discharges a pure obligation, universally closed under the
/// binders currently in scope.
fn oblige(
    ctx: &Context,
    scope: &Scope,
    report: &mut CheckReport,
    rule: &'static str,
    formula: Assertion,
) -> Result<(), ProofError> {
    let closed = scope.binders.iter().rev().fold(formula, |acc, (v, m)| {
        Assertion::ForallIn(v.clone(), m.clone(), Box::new(acc))
    });
    let rendered = closed.to_string();
    match decide_valid(&closed, &ctx.universe, &ctx.funcs, ctx.decide_config) {
        Decision::ValidSyntactic { law } => {
            report.obligations.push(Obligation {
                rule,
                formula: rendered,
                discharge: Discharge::Syntactic(law),
            });
            Ok(())
        }
        Decision::ValidBounded { cases } => {
            report.obligations.push(Obligation {
                rule,
                formula: rendered,
                discharge: Discharge::Bounded(cases),
            });
            Ok(())
        }
        Decision::Refuted { history, env } => Err(ProofError::InvalidPremise {
            rule,
            formula: rendered,
            decision: format!("refuted with history {history} and {env}"),
        }),
        Decision::Unknown { reason } => Err(ProofError::InvalidPremise {
            rule,
            formula: rendered,
            decision: format!("undecided: {reason}"),
        }),
    }
}

/// Discharges the membership obligation `arg ∈ set` of ∀-elimination.
fn discharge_membership(
    ctx: &Context,
    scope: &Scope,
    arg: &Expr,
    set: &SetExpr,
    report: &mut CheckReport,
) -> Result<(), ProofError> {
    // Binder-closed: arg is exactly a variable some surrounding binder
    // ranges over the same set.
    if let Expr::Var(v) = arg {
        if scope.binders.iter().any(|(bv, bs)| bv == v && bs == set) {
            report.obligations.push(Obligation {
                rule: "forall-elim",
                formula: format!("{arg} in {set}"),
                discharge: Discharge::Binder,
            });
            return Ok(());
        }
    }
    // Concrete: evaluate and check.
    if let Ok(v) = arg.eval(&ctx.env) {
        if let Ok(m) = set.eval(&ctx.env) {
            match ctx.universe.contains(&m, &v) {
                Ok(true) => {
                    report.obligations.push(Obligation {
                        rule: "forall-elim",
                        formula: format!("{arg} in {set}"),
                        discharge: Discharge::MembershipChecked,
                    });
                    return Ok(());
                }
                Ok(false) => {
                    return Err(ProofError::SideCondition {
                        rule: "forall-elim",
                        message: format!("`{arg}` is not in `{set}`"),
                    })
                }
                Err(_) => {}
            }
        }
    }
    // Abstract named set: assumed, as the paper does for `x ∈ M`.
    report.obligations.push(Obligation {
        rule: "forall-elim",
        formula: format!("{arg} in {set}"),
        discharge: Discharge::MembershipAssumed,
    });
    Ok(())
}

/// Checks that every channel mentioned by `a` lies in the alphabet `cs`.
fn assertion_channels_within(
    a: &Assertion,
    cs: &ChannelSet,
    side: &str,
    env: &Env,
) -> Result<(), ProofError> {
    for c in a.channels() {
        let ok = match c.resolve(env) {
            Ok(ch) => cs.contains(&ch),
            Err(_) => cs.iter().any(|ch| ch.base() == c.base()),
        };
        if !ok {
            return Err(ProofError::SideCondition {
                rule: "parallelism (8)",
                message: format!(
                    "{side} assertion mentions `{c}`, outside the {side} alphabet {cs}"
                ),
            });
        }
    }
    Ok(())
}
