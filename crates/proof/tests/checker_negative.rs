//! Negative tests: every structural side condition of the §2.1 rules
//! must be *enforced*, not merely documented. Each test builds a proof
//! that is wrong in exactly one way and asserts the checker rejects it
//! with the right kind of error.

use csp_assert::{Assertion, STerm, Term};
use csp_lang::{parse_definitions, Expr, Process};
use csp_proof::{check, Context, Judgement, Proof, ProofError};
use csp_semantics::Universe;
use csp_trace::Value;

fn pipeline_ctx() -> Context {
    Context::new(csp_lang::examples::pipeline(), Universe::new(1))
}

fn wire_le_input() -> Assertion {
    Assertion::prefix(STerm::chan("wire"), STerm::chan("input"))
}

#[test]
fn hypothesis_must_match_exactly() {
    let ctx = pipeline_ctx();
    // No recursion node in scope → no hypotheses at all.
    let goal = Judgement::sat(Process::call("copier"), wire_le_input());
    let err = check(&ctx, &goal, &Proof::Hypothesis).unwrap_err();
    assert!(matches!(err, ProofError::NoHypothesis { .. }), "{err}");
}

#[test]
fn emptiness_only_applies_to_stop() {
    let ctx = pipeline_ctx();
    let goal = Judgement::sat(Process::call("copier"), wire_le_input());
    let err = check(&ctx, &goal, &Proof::Emptiness).unwrap_err();
    assert!(matches!(err, ProofError::GoalShape { .. }), "{err}");
}

#[test]
fn emptiness_premise_must_be_valid() {
    let ctx = pipeline_ctx();
    // STOP sat #wire >= 1 — R_<> is 0 ≥ 1, refutable.
    let bad = Assertion::Cmp(
        csp_assert::CmpOp::Ge,
        Term::length(STerm::chan("wire")),
        Term::int(1),
    );
    let goal = Judgement::sat(Process::Stop, bad);
    let err = check(&ctx, &goal, &Proof::Emptiness).unwrap_err();
    assert!(matches!(err, ProofError::InvalidPremise { .. }), "{err}");
}

#[test]
fn output_rule_rejects_non_output_goals() {
    let ctx = pipeline_ctx();
    let goal = Judgement::sat(Process::Stop, wire_le_input());
    let err = check(&ctx, &goal, &Proof::output(Proof::Emptiness)).unwrap_err();
    assert!(matches!(err, ProofError::GoalShape { .. }), "{err}");
}

#[test]
fn input_rule_freshness_is_checked() {
    let ctx = pipeline_ctx();
    // copier's body: input?x:NAT -> wire!x -> copier. Using `x` itself as
    // the "fresh" variable collides with the free x of the continuation
    // after substitution? The continuation's variable is bound, so use a
    // variable free in R instead: R mentions none, so collide with the
    // channel? Simplest: reuse a name bound by an enclosing binder.
    let inner = Proof::input("v", Proof::input("v", Proof::output(Proof::Triviality)));
    let defs = parse_definitions("twice = a?x:NAT -> b?y:NAT -> c!x -> STOP").unwrap();
    let ctx2 = Context::new(defs, Universe::new(1));
    let goal = Judgement::sat(
        ctx2.defs.get("twice").unwrap().body().clone(),
        Assertion::True,
    );
    let err = check(&ctx2, &goal, &inner).unwrap_err();
    assert!(
        matches!(
            err,
            ProofError::SideCondition {
                rule: "input (6)",
                ..
            }
        ),
        "{err}"
    );
    let _ = ctx;
}

#[test]
fn parallelism_requires_conjunction_goal() {
    let ctx = pipeline_ctx();
    let par = csp_lang::parse_process("copier || recopier").unwrap();
    let goal = Judgement::sat(par, wire_le_input());
    let err = check(
        &ctx,
        &goal,
        &Proof::Parallelism {
            left: Box::new(Proof::Triviality),
            right: Box::new(Proof::Triviality),
        },
    )
    .unwrap_err();
    assert!(matches!(err, ProofError::GoalShape { .. }), "{err}");
}

#[test]
fn parallelism_channel_occurrence_is_enforced() {
    // R mentions `output`, which is not in copier's alphabet — the §2.1(8)
    // side condition.
    let ctx = pipeline_ctx();
    let par = csp_lang::parse_process("copier || recopier").unwrap();
    let r = Assertion::prefix(STerm::chan("output"), STerm::chan("input"));
    let s = Assertion::prefix(STerm::chan("output"), STerm::chan("wire"));
    let goal = Judgement::sat(par, r.and(s));
    let err = check(
        &ctx,
        &goal,
        &Proof::Parallelism {
            left: Box::new(Proof::Triviality),
            right: Box::new(Proof::Triviality),
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            ProofError::SideCondition {
                rule: "parallelism (8)",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn hiding_rejects_concealed_channel_mentions() {
    let ctx = pipeline_ctx();
    let hidden = csp_lang::parse_process("chan wire; (copier || recopier)").unwrap();
    let goal = Judgement::sat(hidden, wire_le_input());
    let err = check(
        &ctx,
        &goal,
        &Proof::Hiding {
            body: Box::new(Proof::Triviality),
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            ProofError::SideCondition {
                rule: "hiding (9)",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn recursion_spec_body_counts_must_match() {
    let ctx = pipeline_ctx();
    let goal = Judgement::sat(Process::call("copier"), wire_le_input());
    let err = check(
        &ctx,
        &goal,
        &Proof::Recursion {
            specs: vec![("copier".to_string(), wire_le_input())],
            bodies: vec![],
            select: 0,
        },
    )
    .unwrap_err();
    assert!(matches!(err, ProofError::BadRecursion(_)), "{err}");
}

#[test]
fn recursion_select_must_be_in_range() {
    let ctx = pipeline_ctx();
    let goal = Judgement::sat(Process::call("copier"), wire_le_input());
    let err = check(
        &ctx,
        &goal,
        &Proof::Recursion {
            specs: vec![("copier".to_string(), wire_le_input())],
            bodies: vec![Proof::Triviality],
            select: 3,
        },
    )
    .unwrap_err();
    assert!(matches!(err, ProofError::BadRecursion(_)), "{err}");
}

#[test]
fn recursion_base_premise_is_checked() {
    // Invariant false at <>: #wire ≥ 1.
    let ctx = pipeline_ctx();
    let bad = Assertion::Cmp(
        csp_assert::CmpOp::Ge,
        Term::length(STerm::chan("wire")),
        Term::int(1),
    );
    let goal = Judgement::sat(Process::call("copier"), bad.clone());
    let err = check(
        &ctx,
        &goal,
        &Proof::recursion("copier", bad, Proof::Triviality),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            ProofError::InvalidPremise {
                rule: "recursion (10) base",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn recursion_conclusion_must_match_selected_spec() {
    let ctx = pipeline_ctx();
    // Conclude something other than the spec judgement.
    let goal = Judgement::sat(Process::call("recopier"), wire_le_input());
    let err = check(
        &ctx,
        &goal,
        &Proof::recursion("copier", wire_le_input(), Proof::Triviality),
    )
    .unwrap_err();
    assert!(matches!(err, ProofError::GoalShape { .. }), "{err}");
}

#[test]
fn instantiate_membership_is_enforced_for_finite_sets() {
    // ∀x:{0..3}. q[x] sat S instantiated at 7 must fail.
    let defs = parse_definitions("q[x:0..3] = wire!x -> q[x]").unwrap();
    let ctx = Context::new(defs, Universe::new(7));
    let s = Assertion::True;
    // Build the hypothesis via recursion, then instantiate badly inside.
    let goal = Judgement::forall(
        "x",
        csp_lang::SetExpr::range(0, 3),
        Judgement::sat(Process::call1("q", Expr::var("x")), s.clone()),
    );
    let bad_body = Proof::ForallIntro {
        body: Box::new(Proof::output(Proof::consequence(
            s.clone(),
            Proof::Instantiate { arg: Expr::int(7) },
        ))),
    };
    let err = check(
        &ctx,
        &goal,
        &Proof::Recursion {
            specs: vec![("q".to_string(), s)],
            bodies: vec![bad_body],
            select: 0,
        },
    )
    .unwrap_err();
    // Either the membership check fires, or the hypothesis fails to match
    // (q[7] vs q[x]) — both are rejections; membership is the expected one.
    assert!(
        matches!(
            err,
            ProofError::SideCondition {
                rule: "forall-elim",
                ..
            } | ProofError::NoHypothesis { .. }
        ),
        "{err}"
    );
}

#[test]
fn conjunction_requires_and_shaped_goal() {
    let ctx = pipeline_ctx();
    let goal = Judgement::sat(Process::Stop, wire_le_input());
    let err = check(
        &ctx,
        &goal,
        &Proof::Conjunction {
            left: Box::new(Proof::Emptiness),
            right: Box::new(Proof::Emptiness),
        },
    )
    .unwrap_err();
    assert!(matches!(err, ProofError::GoalShape { .. }), "{err}");
}

#[test]
fn consequence_implication_is_really_checked() {
    // STOP sat (#wire <= 0) via "stronger" (#wire <= 5): the implication
    // (#wire ≤ 5) ⇒ (#wire ≤ 0) is invalid.
    let ctx = pipeline_ctx();
    let weak = Assertion::Cmp(
        csp_assert::CmpOp::Le,
        Term::length(STerm::chan("wire")),
        Term::int(5),
    );
    let tight = Assertion::Cmp(
        csp_assert::CmpOp::Le,
        Term::length(STerm::chan("wire")),
        Term::int(0),
    );
    let goal = Judgement::sat(Process::Stop, tight);
    let err = check(&ctx, &goal, &Proof::consequence(weak, Proof::Emptiness)).unwrap_err();
    assert!(
        matches!(
            err,
            ProofError::InvalidPremise {
                rule: "consequence (2)",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn triviality_rejects_non_valid_assertions() {
    let ctx = pipeline_ctx();
    let goal = Judgement::sat(Process::call("copier"), wire_le_input());
    let err = check(&ctx, &goal, &Proof::Triviality).unwrap_err();
    assert!(matches!(err, ProofError::InvalidPremise { .. }), "{err}");
}

#[test]
fn forall_intro_needs_forall_goal() {
    let ctx = pipeline_ctx();
    let goal = Judgement::sat(Process::Stop, Assertion::True);
    let err = check(
        &ctx,
        &goal,
        &Proof::ForallIntro {
            body: Box::new(Proof::Emptiness),
        },
    )
    .unwrap_err();
    assert!(matches!(err, ProofError::GoalShape { .. }), "{err}");
}

#[test]
fn alternative_requires_choice_goal() {
    let ctx = pipeline_ctx();
    let goal = Judgement::sat(Process::Stop, Assertion::True);
    let err = check(
        &ctx,
        &goal,
        &Proof::alternative(Proof::Emptiness, Proof::Emptiness),
    )
    .unwrap_err();
    assert!(matches!(err, ProofError::GoalShape { .. }), "{err}");
}

#[test]
fn unsound_claims_cannot_be_smuggled_through_any_rule() {
    // A sweep: try to prove the false claim `copier sat input <= wire`
    // with several plausible-looking proof shapes; all must fail.
    let ctx = pipeline_ctx();
    let false_inv = Assertion::prefix(STerm::chan("input"), STerm::chan("wire"));
    let goal = Judgement::sat(Process::call("copier"), false_inv.clone());
    let attempts = vec![
        Proof::Triviality,
        Proof::recursion("copier", false_inv.clone(), Proof::Triviality),
        Proof::recursion(
            "copier",
            false_inv.clone(),
            Proof::input(
                "v",
                Proof::output(Proof::consequence(false_inv.clone(), Proof::Hypothesis)),
            ),
        ),
        Proof::consequence(Assertion::True, Proof::Triviality),
        Proof::consequence(wire_le_input(), Proof::Triviality),
    ];
    for (i, attempt) in attempts.into_iter().enumerate() {
        assert!(
            check(&ctx, &goal, &attempt).is_err(),
            "attempt {i} wrongly accepted"
        );
    }
    // Sanity: the true direction still proves.
    let ok_goal = Judgement::sat(Process::call("copier"), wire_le_input());
    let ok = Proof::recursion(
        "copier",
        wire_le_input(),
        Proof::input(
            "v",
            Proof::output(Proof::consequence(wire_le_input(), Proof::Hypothesis)),
        ),
    );
    assert!(check(&ctx, &ok_goal, &ok).is_ok());
    let _ = Value::nat(0);
}

#[test]
fn ill_formed_definitions_are_refused() {
    // `ghost` is never defined: CSP001 is an error, so the checker must
    // refuse to even look at the proof.
    let defs = parse_definitions("p = c!0 -> ghost").unwrap();
    let ctx = Context::new(defs, Universe::new(1));
    let goal = Judgement::sat(Process::call("p"), wire_le_input());
    let err = check(&ctx, &goal, &Proof::Hypothesis).unwrap_err();
    assert!(matches!(err, ProofError::IllFormedDefinitions(_)), "{err}");
    assert!(err.to_string().contains("CSP001"), "{err}");
}

#[test]
fn warnings_do_not_block_proofs() {
    // Hiding an unused channel is only CSP007, a warning; the checker
    // still proceeds to a proper proof-shaped error.
    let defs = parse_definitions("p = chan h; STOP").unwrap();
    let ctx = Context::new(defs, Universe::new(1));
    let goal = Judgement::sat(Process::call("p"), wire_le_input());
    let err = check(&ctx, &goal, &Proof::Hypothesis).unwrap_err();
    assert!(matches!(err, ProofError::NoHypothesis { .. }), "{err}");
}
