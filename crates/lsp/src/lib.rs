//! # csp-lsp
//!
//! A zero-dependency Language Server Protocol implementation for the CSP
//! notation of Zhou & Hoare (1981), exposed by the CLI as `csp lsp`.
//!
//! The server speaks LSP over stdio using the in-tree JSON machinery
//! from `csp-obs` — no `tower-lsp`, no async runtime, no serde. A CSP
//! module is a flat list of small definitions, so one synchronous
//! request loop over an incremental [`csp_analysis::AnalysisDb`] keeps
//! every reply far below editor latency budgets; the error-recovering
//! parser means a half-typed definition never blanks the diagnostics for
//! the rest of the file.
//!
//! Supported:
//!
//! * `initialize` / `shutdown` / `exit` — full-document sync,
//!   hover and definition capabilities;
//! * `textDocument/didOpen`, `didChange`, `didClose` —
//!   each revision republishes merged parse + lint diagnostics
//!   (`textDocument/publishDiagnostics`);
//! * `textDocument/hover` — a definition's inferred channel alphabet and
//!   its static trace-depth bound per unfolding;
//! * `textDocument/definition` — from any occurrence of a process name
//!   to its defining equation.
//!
//! ```
//! use csp_lsp::Server;
//!
//! let mut server = Server::new();
//! let out = server.handle_message(
//!     r#"{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{
//!         "textDocument":{"uri":"file:///m.csp","languageId":"csp",
//!                         "version":1,"text":"p = c!0 -> ghost"}}}"#,
//! );
//! assert!(out[0].contains("publishDiagnostics"));
//! assert!(out[0].contains("CSP001"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod position;
mod server;
mod transport;

pub use position::{offset_at, position_at, word_at, Position};
pub use server::{serve, serve_stdio, Server};
pub use transport::{read_message, write_message};
