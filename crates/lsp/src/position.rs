//! Offset ⇄ position conversion between the parser's byte spans and the
//! protocol's zero-based line/character positions.
//!
//! Characters are counted in bytes, not UTF-16 code units: the CSP
//! notation is ASCII, where the two coincide, and the server declares no
//! `positionEncoding` so clients assume the default. Multi-byte
//! characters in comments degrade to slightly-off column highlights,
//! never to a panic — every conversion clamps to the document.

use csp_lang::Span;

/// A zero-based line/character pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// Zero-based line index.
    pub line: usize,
    /// Zero-based byte column within the line.
    pub character: usize,
}

/// The byte offset of a protocol position, clamped to the document: a
/// character past the end of its line lands on the line terminator, a
/// line past the end of the text lands at `text.len()`.
pub fn offset_at(text: &str, pos: Position) -> usize {
    let mut line_start = 0usize;
    for _ in 0..pos.line {
        match text[line_start..].find('\n') {
            Some(i) => line_start += i + 1,
            None => return text.len(),
        }
    }
    let line_end = text[line_start..]
        .find('\n')
        .map_or(text.len(), |i| line_start + i);
    (line_start + pos.character).min(line_end)
}

/// The protocol position of a byte offset (clamped to the document).
pub fn position_at(text: &str, offset: usize) -> Position {
    let offset = offset.min(text.len());
    let before = &text[..offset];
    let line = before.matches('\n').count();
    let character = offset - before.rfind('\n').map_or(0, |i| i + 1);
    Position { line, character }
}

/// Renders a span as a protocol `Range` object. The end position is
/// computed from the document so spans crossing a newline stay honest.
pub fn range_json(text: &str, span: Span) -> String {
    let start = position_at(text, span.offset);
    let end = position_at(text, span.end());
    format!(
        "{{\"start\":{{\"line\":{},\"character\":{}}},\"end\":{{\"line\":{},\"character\":{}}}}}",
        start.line, start.character, end.line, end.character
    )
}

/// The identifier (letters, digits, `_`) covering a byte offset, if any.
/// An offset on the terminator of a word (one past its last byte) still
/// finds it, matching how editors hover at a cursor between characters.
pub fn word_at(text: &str, offset: usize) -> Option<&str> {
    let offset = offset.min(text.len());
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let start = text[..offset].rfind(|c| !is_word(c)).map_or(0, |i| i + 1);
    let end = text[offset..]
        .find(|c| !is_word(c))
        .map_or(text.len(), |i| offset + i);
    let word = &text[start..end];
    if word.is_empty() || word.starts_with(|c: char| c.is_ascii_digit()) {
        None
    } else {
        Some(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "p = c!0 -> p\nq = d!0 -> q\n";

    #[test]
    fn offset_and_position_are_inverse_on_valid_points() {
        for (line, character, offset) in [(0, 0, 0), (0, 4, 4), (1, 0, 13), (1, 4, 17)] {
            let pos = Position { line, character };
            assert_eq!(offset_at(DOC, pos), offset);
            assert_eq!(position_at(DOC, offset), pos);
        }
    }

    #[test]
    fn conversions_clamp_instead_of_panicking() {
        assert_eq!(
            offset_at(
                DOC,
                Position {
                    line: 99,
                    character: 0
                }
            ),
            DOC.len()
        );
        // Character past the line end clamps to the newline, not into the
        // next line.
        assert_eq!(
            offset_at(
                DOC,
                Position {
                    line: 0,
                    character: 99
                }
            ),
            12
        );
        assert_eq!(position_at(DOC, 10_000).line, 2);
    }

    #[test]
    fn word_lookup_finds_identifiers_and_rejects_numbers() {
        assert_eq!(word_at(DOC, 0), Some("p"));
        assert_eq!(word_at(DOC, 4), Some("c"));
        assert_eq!(word_at(DOC, 6), None); // the literal 0
        assert_eq!(word_at(DOC, 11), Some("p")); // call site
        assert_eq!(word_at(DOC, 12), Some("p")); // cursor just past it
        assert_eq!(word_at("", 5), None);
    }

    #[test]
    fn range_json_spans_lines_honestly() {
        let span = Span::new(4, 1, 1, 5);
        assert_eq!(
            range_json(DOC, span),
            "{\"start\":{\"line\":0,\"character\":4},\"end\":{\"line\":0,\"character\":5}}"
        );
    }
}
