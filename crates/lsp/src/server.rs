//! The JSON-RPC dispatch loop and the language features.
//!
//! One [`Server`] owns an [`AnalysisDb`] per open document. Every edit
//! goes through [`AnalysisDb::set_source`], so only the definitions the
//! edit dirtied are re-linted — diagnostics for a large module stay
//! incremental while the transport stays dumb.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

use csp_analysis::{AnalysisDb, Diagnostic, Severity};
use csp_lang::ParseError;
use csp_obs::{json_string, parse_json, JsonValue};

use crate::position::{offset_at, range_json, word_at, Position};
use crate::transport::{read_message, write_message};

/// What the client sees in `initialize.result.serverInfo`.
const SERVER_NAME: &str = "csp-lsp";

/// One open document: its current text and its incremental analysis.
#[derive(Debug)]
struct Document {
    text: String,
    db: AnalysisDb,
}

/// An LSP server holding the analysis state for every open document.
///
/// [`Server::handle_message`] is a pure-ish state transition — one
/// incoming message to a batch of outgoing messages — so tests can drive
/// the full protocol without a transport.
#[derive(Debug, Default)]
pub struct Server {
    docs: BTreeMap<String, Document>,
    shutdown_requested: bool,
    exit: Option<bool>,
}

impl Server {
    /// A server with no open documents.
    pub fn new() -> Self {
        Server::default()
    }

    /// True once an `exit` notification arrived; the payload is whether
    /// the client followed the shutdown handshake (exit code 0) or
    /// dropped the connection abruptly (exit code 1).
    pub fn exited(&self) -> Option<bool> {
        self.exit
    }

    /// Handles one raw message body, returning the serialized messages
    /// to send back (a response, zero or more notifications, or nothing
    /// for a fire-and-forget notification).
    pub fn handle_message(&mut self, body: &str) -> Vec<String> {
        let Ok(msg) = parse_json(body.trim()) else {
            return vec![error_response(
                "null",
                -32700,
                "request body is not valid JSON",
            )];
        };
        let method = msg.get("method").and_then(JsonValue::as_str);
        let id = msg.get("id").map(render_id);
        let params = msg.get("params");
        match (method, id) {
            (Some(method), Some(id)) => self.handle_request(&id, method, params),
            (Some(method), None) => self.handle_notification(method, params),
            // A message with an id but no method is a response to a
            // server-initiated request; we issue none, so ignore it.
            (None, _) => Vec::new(),
        }
    }

    fn handle_request(
        &mut self,
        id: &str,
        method: &str,
        params: Option<&JsonValue>,
    ) -> Vec<String> {
        match method {
            "initialize" => vec![response(id, &initialize_result())],
            "shutdown" => {
                self.shutdown_requested = true;
                vec![response(id, "null")]
            }
            "textDocument/hover" => vec![response(id, &self.hover(params))],
            "textDocument/definition" => vec![response(id, &self.definition(params))],
            other => vec![error_response(
                id,
                -32601,
                &format!("method `{other}` is not supported"),
            )],
        }
    }

    fn handle_notification(&mut self, method: &str, params: Option<&JsonValue>) -> Vec<String> {
        match method {
            "textDocument/didOpen" => {
                let Some((uri, text)) = did_open_params(params) else {
                    return Vec::new();
                };
                self.open(uri, text)
            }
            "textDocument/didChange" => {
                let Some((uri, text)) = did_change_params(params) else {
                    return Vec::new();
                };
                self.open(uri, text)
            }
            "textDocument/didClose" => {
                let Some(uri) = text_document_uri(params) else {
                    return Vec::new();
                };
                self.docs.remove(&uri);
                // Clear the client's marker bar for the closed file.
                vec![publish_diagnostics(&uri, "[]")]
            }
            "exit" => {
                self.exit = Some(self.shutdown_requested);
                Vec::new()
            }
            // initialized, didSave, $/… progress and cancellation — all
            // fire-and-forget for a stateless-per-revision analysis.
            _ => Vec::new(),
        }
    }

    /// Applies one full-text revision and republishes diagnostics.
    fn open(&mut self, uri: String, text: String) -> Vec<String> {
        let doc = self.docs.entry(uri.clone()).or_insert_with(|| Document {
            text: String::new(),
            db: AnalysisDb::new(),
        });
        doc.db.set_source(&text);
        doc.text = text;
        let diags = render_diagnostics(&doc.text, doc.db.parse_errors(), &doc.db.diagnostics());
        vec![publish_diagnostics(&uri, &diags)]
    }

    /// The definition name under the cursor, resolved against a document.
    fn name_at(&self, params: Option<&JsonValue>) -> Option<(&Document, String)> {
        let params = params?;
        let uri = params
            .get("textDocument")
            .and_then(|t| t.get("uri"))
            .and_then(JsonValue::as_str)?;
        let doc = self.docs.get(uri)?;
        let pos = params.get("position")?;
        let offset = offset_at(
            &doc.text,
            Position {
                line: pos.get("line").and_then(JsonValue::as_u64)? as usize,
                character: pos.get("character").and_then(JsonValue::as_u64)? as usize,
            },
        );
        let word = word_at(&doc.text, offset)?;
        Some((doc, word.to_string()))
    }

    fn hover(&self, params: Option<&JsonValue>) -> String {
        let Some((doc, name)) = self.name_at(params) else {
            return "null".to_string();
        };
        if doc.db.definitions().get(&name).is_none() {
            return "null".to_string();
        }
        let mut lines = vec![format!("**{name}**")];
        match doc.db.alphabet(&name) {
            Some(alpha) => lines.push(format!("- alphabet: `{alpha}`")),
            None => lines.push("- alphabet: not statically computable".to_string()),
        }
        if let Some(depth) = doc.db.prefix_depth(&name) {
            lines.push(format!(
                "- trace-depth bound: {depth} communication(s) per unfolding"
            ));
        }
        let value = json_string(&lines.join("\n"));
        format!("{{\"contents\":{{\"kind\":\"markdown\",\"value\":{value}}}}}")
    }

    fn definition(&self, params: Option<&JsonValue>) -> String {
        let Some((doc, name)) = self.name_at(params) else {
            return "null".to_string();
        };
        let Some(span) = doc.db.definition_span(&name) else {
            return "null".to_string();
        };
        let uri = params
            .and_then(|p| p.get("textDocument"))
            .and_then(|t| t.get("uri"))
            .and_then(JsonValue::as_str)
            .expect("name_at resolved the same uri");
        format!(
            "{{\"uri\":{},\"range\":{}}}",
            json_string(uri),
            range_json(&doc.text, span)
        )
    }
}

/// Runs the server over any framed byte stream until `exit` or EOF.
/// Returns `true` for a clean exit (shutdown before exit, or EOF).
///
/// # Errors
///
/// Propagates transport-level I/O failures; protocol-level problems are
/// reported to the client as JSON-RPC errors instead.
pub fn serve(input: &mut impl BufRead, output: &mut impl Write) -> io::Result<bool> {
    let mut server = Server::new();
    while let Some(body) = read_message(input)? {
        for out in server.handle_message(&body) {
            write_message(output, &out)?;
        }
        if let Some(clean) = server.exited() {
            return Ok(clean);
        }
    }
    Ok(true)
}

/// Runs the server over stdin/stdout — the `csp lsp` entry point.
///
/// # Errors
///
/// Propagates transport-level I/O failures.
pub fn serve_stdio() -> io::Result<bool> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve(&mut stdin.lock(), &mut stdout.lock())
}

fn initialize_result() -> String {
    // Full-document sync (1): revisions arrive whole, and AnalysisDb
    // re-derives incrementality from content hashes rather than edit
    // deltas — simpler protocol, same asymptotics.
    format!(
        "{{\"capabilities\":{{\"textDocumentSync\":1,\"hoverProvider\":true,\
         \"definitionProvider\":true}},\
         \"serverInfo\":{{\"name\":{},\"version\":{}}}}}",
        json_string(SERVER_NAME),
        json_string(env!("CARGO_PKG_VERSION"))
    )
}

fn response(id: &str, result: &str) -> String {
    format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"result\":{result}}}")
}

fn error_response(id: &str, code: i64, message: &str) -> String {
    format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":{id},\"error\":{{\"code\":{code},\"message\":{}}}}}",
        json_string(message)
    )
}

fn publish_diagnostics(uri: &str, diagnostics: &str) -> String {
    format!(
        "{{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/publishDiagnostics\",\
         \"params\":{{\"uri\":{},\"diagnostics\":{diagnostics}}}}}",
        json_string(uri)
    )
}

/// Re-renders a request id for echoing back. Integral numbers print
/// without a fraction (the common case); anything else degrades to
/// `null`, which the spec reserves for unparseable requests.
fn render_id(id: &JsonValue) -> String {
    match id {
        JsonValue::Num(n) if n.fract() == 0.0 => format!("{}", *n as i64),
        JsonValue::Num(n) => format!("{n}"),
        JsonValue::Str(s) => json_string(s),
        _ => "null".to_string(),
    }
}

fn did_open_params(params: Option<&JsonValue>) -> Option<(String, String)> {
    let td = params?.get("textDocument")?;
    Some((
        td.get("uri")?.as_str()?.to_string(),
        td.get("text")?.as_str()?.to_string(),
    ))
}

fn did_change_params(params: Option<&JsonValue>) -> Option<(String, String)> {
    let uri = text_document_uri(params)?;
    // Full sync: the final change carries the complete new text.
    let changes = params?.get("contentChanges")?.as_array()?;
    let text = changes.last()?.get("text")?.as_str()?.to_string();
    Some((uri, text))
}

fn text_document_uri(params: Option<&JsonValue>) -> Option<String> {
    Some(
        params?
            .get("textDocument")?
            .get("uri")?
            .as_str()?
            .to_string(),
    )
}

/// Renders the merged diagnostics array for one revision: parse errors
/// (always severity 1) followed by the lint findings that survived
/// recovery.
fn render_diagnostics(text: &str, errors: &[ParseError], lints: &[Diagnostic]) -> String {
    let mut items = Vec::with_capacity(errors.len() + lints.len());
    for e in errors {
        items.push(format!(
            "{{\"range\":{},\"severity\":1,\"code\":\"parse\",\"source\":\"csp\",\
             \"message\":{}}}",
            range_json(text, e.span()),
            json_string(e.message())
        ));
    }
    for d in lints {
        // The linter guarantees a span whenever a SourceMap is supplied
        // (AnalysisDb always supplies one); the fallback keeps a protocol
        // violation out of the client if that invariant ever breaks.
        let range = d.span.map_or_else(
            || range_json(text, csp_lang::Span::new(0, 0, 1, 1)),
            |s| range_json(text, s),
        );
        let severity = match d.severity {
            Severity::Error => 1,
            Severity::Warning => 2,
        };
        items.push(format!(
            "{{\"range\":{range},\"severity\":{severity},\"code\":{},\
             \"source\":\"csp-lint\",\"message\":{}}}",
            json_string(d.code.code()),
            json_string(&d.message)
        ));
    }
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn notif(method: &str, params: &str) -> String {
        format!("{{\"jsonrpc\":\"2.0\",\"method\":\"{method}\",\"params\":{params}}}")
    }

    fn req(id: u64, method: &str, params: &str) -> String {
        format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"method\":\"{method}\",\"params\":{params}}}")
    }

    fn open(server: &mut Server, uri: &str, text: &str) -> String {
        let params = format!(
            "{{\"textDocument\":{{\"uri\":{},\"languageId\":\"csp\",\"version\":1,\
             \"text\":{}}}}}",
            json_string(uri),
            json_string(text)
        );
        let out = server.handle_message(&notif("textDocument/didOpen", &params));
        assert_eq!(out.len(), 1, "didOpen publishes exactly one batch");
        out.into_iter().next().unwrap()
    }

    fn position_params(uri: &str, line: usize, character: usize) -> String {
        format!(
            "{{\"textDocument\":{{\"uri\":{}}},\
             \"position\":{{\"line\":{line},\"character\":{character}}}}}",
            json_string(uri)
        )
    }

    #[test]
    fn initialize_advertises_the_three_capabilities() {
        let mut s = Server::new();
        let out = s.handle_message(&req(1, "initialize", "{}"));
        assert_eq!(out.len(), 1);
        let v = parse_json(&out[0]).unwrap();
        let caps = v.get("result").and_then(|r| r.get("capabilities")).unwrap();
        assert_eq!(
            caps.get("textDocumentSync").and_then(JsonValue::as_u64),
            Some(1)
        );
        assert_eq!(
            caps.get("hoverProvider").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(
            caps.get("definitionProvider").and_then(JsonValue::as_bool),
            Some(true)
        );
    }

    #[test]
    fn did_open_publishes_parse_and_lint_diagnostics_together() {
        let mut s = Server::new();
        let published = open(
            &mut s,
            "file:///m.csp",
            "broken = c!0 -> ->\np = d!0 -> ghost",
        );
        let v = parse_json(&published).unwrap();
        assert_eq!(
            v.get("method").and_then(JsonValue::as_str),
            Some("textDocument/publishDiagnostics")
        );
        let diags = v
            .get("params")
            .and_then(|p| p.get("diagnostics"))
            .and_then(JsonValue::as_array)
            .unwrap();
        let codes: Vec<&str> = diags
            .iter()
            .filter_map(|d| d.get("code").and_then(JsonValue::as_str))
            .collect();
        assert!(codes.contains(&"parse"), "{codes:?}");
        assert!(codes.contains(&"CSP001"), "{codes:?}");
        // The CSP001 range points at `ghost` on the second line.
        let csp001 = diags
            .iter()
            .find(|d| d.get("code").and_then(JsonValue::as_str) == Some("CSP001"))
            .unwrap();
        let start = csp001.get("range").and_then(|r| r.get("start")).unwrap();
        assert_eq!(start.get("line").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(start.get("character").and_then(JsonValue::as_u64), Some(11));
    }

    #[test]
    fn did_change_clears_fixed_diagnostics() {
        let mut s = Server::new();
        open(&mut s, "file:///m.csp", "p = d!0 -> ghost");
        let params = format!(
            "{{\"textDocument\":{{\"uri\":\"file:///m.csp\",\"version\":2}},\
             \"contentChanges\":[{{\"text\":{}}}]}}",
            json_string("p = d!0 -> p")
        );
        let out = s.handle_message(&notif("textDocument/didChange", &params));
        let v = parse_json(&out[0]).unwrap();
        let diags = v
            .get("params")
            .and_then(|p| p.get("diagnostics"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert!(diags.is_empty(), "{:?}", out[0]);
    }

    #[test]
    fn hover_reports_alphabet_and_depth_bound() {
        let mut s = Server::new();
        open(
            &mut s,
            "file:///m.csp",
            "copier = input?x:NAT -> wire!x -> copier",
        );
        let out = s.handle_message(&req(
            2,
            "textDocument/hover",
            &position_params("file:///m.csp", 0, 2),
        ));
        let v = parse_json(&out[0]).unwrap();
        let value = v
            .get("result")
            .and_then(|r| r.get("contents"))
            .and_then(|c| c.get("value"))
            .and_then(JsonValue::as_str)
            .unwrap();
        assert!(value.contains("copier"), "{value}");
        assert!(value.contains("input"), "{value}");
        assert!(value.contains("2 communication(s)"), "{value}");
    }

    #[test]
    fn hover_on_a_literal_or_unknown_name_is_null() {
        let mut s = Server::new();
        open(&mut s, "file:///m.csp", "p = c!7 -> p");
        for character in [6, 4] {
            let out = s.handle_message(&req(
                3,
                "textDocument/hover",
                &position_params("file:///m.csp", 0, character),
            ));
            let v = parse_json(&out[0]).unwrap();
            assert!(
                matches!(v.get("result"), Some(JsonValue::Null)),
                "{:?}",
                out[0]
            );
        }
    }

    #[test]
    fn goto_definition_from_a_call_site() {
        let mut s = Server::new();
        open(&mut s, "file:///m.csp", "p = c!0 -> q\nq = d!0 -> q");
        // Cursor on the `q` call at the end of line 0.
        let out = s.handle_message(&req(
            4,
            "textDocument/definition",
            &position_params("file:///m.csp", 0, 11),
        ));
        let v = parse_json(&out[0]).unwrap();
        let result = v.get("result").unwrap();
        assert_eq!(
            result.get("uri").and_then(JsonValue::as_str),
            Some("file:///m.csp")
        );
        let start = result.get("range").and_then(|r| r.get("start")).unwrap();
        assert_eq!(start.get("line").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(start.get("character").and_then(JsonValue::as_u64), Some(0));
    }

    #[test]
    fn unknown_request_gets_method_not_found() {
        let mut s = Server::new();
        let out = s.handle_message(&req(9, "workspace/symbol", "{}"));
        let v = parse_json(&out[0]).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_i64),
            Some(-32601)
        );
    }

    #[test]
    fn full_stdio_round_trip_over_in_memory_pipes() {
        let mut input = Vec::new();
        for msg in [
            req(1, "initialize", "{}"),
            notif("initialized", "{}"),
            open_params_message(),
            req(2, "shutdown", "null"),
            notif("exit", "null"),
        ] {
            crate::transport::write_message(&mut input, &msg).unwrap();
        }
        let mut output = Vec::new();
        let clean = serve(&mut Cursor::new(input), &mut output).unwrap();
        assert!(clean);
        let mut cur = Cursor::new(output);
        let mut bodies = Vec::new();
        while let Some(b) = read_message(&mut cur).unwrap() {
            bodies.push(b);
        }
        // initialize response, publishDiagnostics, shutdown response.
        assert_eq!(bodies.len(), 3, "{bodies:#?}");
        assert!(bodies[0].contains("capabilities"));
        assert!(bodies[1].contains("publishDiagnostics"));
        assert!(bodies[1].contains("CSP001"), "{}", bodies[1]);
        assert!(bodies[1].contains("\"code\":\"parse\""), "{}", bodies[1]);
    }

    fn open_params_message() -> String {
        let text = "broken = c!0 -> ->\np = d!0 -> ghost";
        notif(
            "textDocument/didOpen",
            &format!(
                "{{\"textDocument\":{{\"uri\":\"file:///m.csp\",\"languageId\":\"csp\",\
                 \"version\":1,\"text\":{}}}}}",
                json_string(text)
            ),
        )
    }

    #[test]
    fn exit_without_shutdown_is_an_unclean_exit() {
        let mut input = Vec::new();
        crate::transport::write_message(&mut input, &notif("exit", "null")).unwrap();
        let mut output = Vec::new();
        assert!(!serve(&mut Cursor::new(input), &mut output).unwrap());
    }
}
