//! LSP base-protocol framing: `Content-Length`-headed messages over a
//! byte stream.
//!
//! The transport is generic over [`BufRead`]/[`Write`] so the whole
//! server can be driven end-to-end from an in-memory buffer in tests and
//! from stdio in production — same code path, no threads, no sockets.

use std::io::{self, BufRead, Write};

/// Reads one framed message body; `Ok(None)` signals a clean EOF before
/// any header byte.
///
/// Headers are a CRLF-separated block terminated by an empty line; only
/// `Content-Length` is interpreted (the legacy `Content-Type` header is
/// accepted and ignored, as the spec requires). Bare-`\n` line endings
/// are tolerated for ease of hand-driven testing.
///
/// # Errors
///
/// Propagates I/O errors, and reports `InvalidData` for a header block
/// with no `Content-Length` or a truncated body.
pub fn read_message(input: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut content_length: Option<usize> = None;
    let mut saw_header = false;
    loop {
        let mut line = String::new();
        let n = input.read_line(&mut line)?;
        if n == 0 {
            if saw_header {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                ));
            }
            return Ok(None);
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        saw_header = true;
        if let Some(value) = line.strip_prefix("Content-Length:") {
            let len: usize = value.trim().parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad Content-Length `{}`", value.trim()),
                )
            })?;
            content_length = Some(len);
        }
        // Other headers (Content-Type) are ignored.
    }
    let len = content_length.ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "message without Content-Length")
    })?;
    let mut body = vec![0u8; len];
    input.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes one framed message and flushes, so a client polling the pipe
/// never waits on a buffered reply.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_message(out: &mut impl Write, body: &str) -> io::Result<()> {
    write!(out, "Content-Length: {}\r\n\r\n{body}", body.len())?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_a_message() {
        let mut buf = Vec::new();
        write_message(&mut buf, r#"{"jsonrpc":"2.0"}"#).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_message(&mut cur).unwrap().as_deref(),
            Some(r#"{"jsonrpc":"2.0"}"#)
        );
        assert!(read_message(&mut cur).unwrap().is_none());
    }

    #[test]
    fn tolerates_extra_headers_and_bare_newlines() {
        let raw = "Content-Type: application/vscode-jsonrpc\nContent-Length: 2\n\n{}";
        let mut cur = Cursor::new(raw.as_bytes().to_vec());
        assert_eq!(read_message(&mut cur).unwrap().as_deref(), Some("{}"));
    }

    #[test]
    fn missing_content_length_is_invalid_data() {
        let mut cur = Cursor::new(b"Content-Type: x\r\n\r\n{}".to_vec());
        let err = read_message(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut cur = Cursor::new(b"Content-Length: 10\r\n\r\n{}".to_vec());
        assert!(read_message(&mut cur).is_err());
    }
}
