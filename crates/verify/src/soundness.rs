//! Empirical soundness validation of the inference rules — experiment E6.
//!
//! §3.4 proves each rule of §2.1 as a theorem about the prefix-closure
//! model. This module validates the same statements *empirically*: for
//! each rule, generate seeded random instances, test the rule's premises
//! by bounded model checking, and whenever they hold, test the
//! conclusion. A sound rule never shows a premise-holding,
//! conclusion-failing instance; any such instance is reported as a
//! violation (and would indicate a bug in the semantics, the checker, or
//! the paper's theorem — the tests assert there are none).

use csp_assert::{
    decide_valid, subst_chan_cons, subst_empty, Assertion, DecideConfig, EvalCtx, FuncTable, Term,
};
use csp_lang::{channel_alphabet, ChanRef, Definition, Definitions, Env, Expr, Process, SetExpr};
use csp_semantics::{fixpoint, Universe};
use csp_trace::TraceSet;
use rayon::prelude::*;

use crate::gen::InstanceGen;
use crate::{SatChecker, SatResult};

/// Outcome of validating one rule on a population of instances.
#[derive(Debug, Clone)]
pub struct RuleReport {
    /// The rule's paper name.
    pub rule: &'static str,
    /// Instances generated.
    pub instances: usize,
    /// Instances whose premises all held (the informative cases).
    pub premises_held: usize,
    /// Premise-holding instances whose conclusion failed — soundness
    /// violations. Always empty for a correct implementation.
    pub violations: Vec<String>,
}

impl RuleReport {
    /// True when no violation was observed.
    pub fn sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validates all ten rules with `instances` instances each. The rules
/// run concurrently — each validator derives its own seed, so the
/// reports are identical to a sequential run's.
///
/// # Errors
///
/// Propagates assertion-evaluation failures (which would themselves be
/// implementation bugs, since generated instances are well-formed).
pub fn validate_all_rules(
    seed: u64,
    instances: usize,
) -> Result<Vec<RuleReport>, csp_assert::AssertError> {
    type Validator = fn(u64, usize) -> Result<RuleReport, csp_assert::AssertError>;
    const VALIDATORS: [Validator; 10] = [
        validate_triviality,
        validate_consequence,
        validate_conjunction,
        validate_emptiness,
        validate_output,
        validate_input,
        validate_alternative,
        validate_parallelism,
        validate_hiding,
        validate_recursion,
    ];
    let runs: Vec<(u64, Validator)> = VALIDATORS
        .iter()
        .enumerate()
        .map(|(i, &v)| (seed.wrapping_add(i as u64), v))
        .collect();
    runs.into_par_iter()
        .map(|(rule_seed, validate)| validate(rule_seed, instances))
        .collect::<Vec<_>>()
        .into_iter()
        .collect()
}

const DEPTH: usize = 4;

fn universe() -> Universe {
    Universe::new(1)
}

fn holds(defs: &Definitions, p: &Process, r: &Assertion) -> Result<bool, csp_assert::AssertError> {
    let uni = universe();
    let checker = SatChecker::new(defs, &uni);
    Ok(matches!(
        checker.check(p, r, DEPTH)?,
        SatResult::Holds { .. }
    ))
}

fn valid(r: &Assertion) -> bool {
    decide_valid(
        r,
        &universe(),
        &FuncTable::with_builtins(),
        DecideConfig {
            max_history_len: 2,
            ..DecideConfig::default()
        },
    )
    .is_valid()
}

/// Rule 1 (triviality): a valid `T` is satisfied by every process.
fn validate_triviality(seed: u64, instances: usize) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let defs = Definitions::new();
    let mut report = new_report("triviality (1)", instances);
    for _ in 0..instances {
        let p = g.process(3);
        let t = g.assertion();
        if !valid(&t) {
            continue; // premise fails; uninformative
        }
        report.premises_held += 1;
        if !holds(&defs, &p, &t)? {
            report.violations.push(format!("{p} !sat {t}"));
        }
    }
    Ok(report)
}

/// Rule 2 (consequence): `P sat R` and `R ⇒ S` valid give `P sat S`.
fn validate_consequence(
    seed: u64,
    instances: usize,
) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let defs = Definitions::new();
    let mut report = new_report("consequence (2)", instances);
    for _ in 0..instances {
        let p = g.process(3);
        let r = g.assertion();
        // Catalogue weakening: a prefix relation implies the length
        // relation; any R implies R; any R implies R or-extended.
        let s = match &r {
            Assertion::Prefix(a, b) => Assertion::Cmp(
                csp_assert::CmpOp::Le,
                Term::length(a.clone()),
                Term::length(b.clone()),
            ),
            other => other.clone().or(g.assertion()),
        };
        if !valid(&r.clone().implies(s.clone())) || !holds(&defs, &p, &r)? {
            continue;
        }
        report.premises_held += 1;
        if !holds(&defs, &p, &s)? {
            report.violations.push(format!("{p}: {r} but not {s}"));
        }
    }
    Ok(report)
}

/// Rule 3 (conjunction).
fn validate_conjunction(
    seed: u64,
    instances: usize,
) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let defs = Definitions::new();
    let mut report = new_report("conjunction (3)", instances);
    for _ in 0..instances {
        let p = g.process(3);
        let r = g.assertion();
        let s = g.assertion();
        if !holds(&defs, &p, &r)? || !holds(&defs, &p, &s)? {
            continue;
        }
        report.premises_held += 1;
        if !holds(&defs, &p, &r.clone().and(s.clone()))? {
            report.violations.push(format!("{p}: conjunction failed"));
        }
    }
    Ok(report)
}

/// Rule 4 (emptiness): `R_<>` valid gives `STOP sat R`.
fn validate_emptiness(seed: u64, instances: usize) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let defs = Definitions::new();
    let mut report = new_report("emptiness (4)", instances);
    for _ in 0..instances {
        let r = g.assertion();
        if !valid(&subst_empty(&r)) {
            continue;
        }
        report.premises_held += 1;
        if !holds(&defs, &Process::Stop, &r)? {
            report.violations.push(format!("STOP !sat {r}"));
        }
    }
    Ok(report)
}

/// Rule 5 (output): `R_<>` valid and `P sat R^c_{e^c}` give
/// `(c!e → P) sat R`.
fn validate_output(seed: u64, instances: usize) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let defs = Definitions::new();
    let mut report = new_report("output (5)", instances);
    for _ in 0..instances {
        let p = g.process(2);
        let r = g.assertion();
        let c = ChanRef::simple(g.channel());
        let e = Expr::int(g.value());
        let r_sub = subst_chan_cons(&r, &c, &Term::Expr(e.clone()));
        if !valid(&subst_empty(&r)) || !holds(&defs, &p, &r_sub)? {
            continue;
        }
        report.premises_held += 1;
        let out = Process::Output {
            chan: c,
            msg: e,
            then: std::sync::Arc::new(p.clone()),
        };
        if !holds(&defs, &out, &r)? {
            report.violations.push(format!("{out} !sat {r}"));
        }
    }
    Ok(report)
}

/// Rule 6 (input): `R_<>` valid and `∀v∈M. P^x_v sat R^c_{v^c}` give
/// `(c?x:M → P) sat R`. Generated continuations do not use the bound
/// variable, so `P^x_v = P`; the per-value premise still varies through
/// the substituted assertion.
fn validate_input(seed: u64, instances: usize) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let defs = Definitions::new();
    let uni = universe();
    let mut report = new_report("input (6)", instances);
    for _ in 0..instances {
        let p = g.process(2);
        let r = g.assertion();
        let c = ChanRef::simple(g.channel());
        let set = SetExpr::range(0, 1);
        if !valid(&subst_empty(&r)) {
            continue;
        }
        let members = uni
            .enumerate(&set.eval(&Env::new()).expect("closed set"))
            .expect("finite set");
        let mut all_hold = true;
        for v in &members {
            let r_sub = subst_chan_cons(&r, &c, &Term::Expr(Expr::Const(v.clone())));
            if !holds(&defs, &p, &r_sub)? {
                all_hold = false;
                break;
            }
        }
        if !all_hold {
            continue;
        }
        report.premises_held += 1;
        let inp = Process::Input {
            chan: c,
            var: "fresh_x".to_string(),
            set,
            then: std::sync::Arc::new(p.clone()),
        };
        if !holds(&defs, &inp, &r)? {
            report.violations.push(format!("{inp} !sat {r}"));
        }
    }
    Ok(report)
}

/// Rule 7 (alternative).
fn validate_alternative(
    seed: u64,
    instances: usize,
) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let defs = Definitions::new();
    let mut report = new_report("alternative (7)", instances);
    for _ in 0..instances {
        let p = g.process(3);
        let q = g.process(3);
        let r = g.assertion();
        if !holds(&defs, &p, &r)? || !holds(&defs, &q, &r)? {
            continue;
        }
        report.premises_held += 1;
        if !holds(&defs, &p.clone().or(q.clone()), &r)? {
            report.violations.push(format!("({p} | {q}) !sat {r}"));
        }
    }
    Ok(report)
}

/// Rule 8 (parallelism): with `R` over `P`'s channels and `S` over
/// `Q`'s, `P sat R` and `Q sat S` give `(P ‖ Q) sat (R & S)`.
fn validate_parallelism(
    seed: u64,
    instances: usize,
) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let defs = Definitions::new();
    let mut report = new_report("parallelism (8)", instances);
    for _ in 0..instances {
        let p = g.process(3);
        let q = g.process(3);
        let r = g.assertion();
        let s = g.assertion();
        // Occurrence side conditions.
        let (Ok(x), Ok(y)) = (
            channel_alphabet(&p, &defs, &Env::new()),
            channel_alphabet(&q, &defs, &Env::new()),
        ) else {
            continue;
        };
        let within = |a: &Assertion, cs: &csp_trace::ChannelSet| {
            a.channels().iter().all(|c| {
                c.resolve(&Env::new())
                    .map(|ch| cs.contains(&ch))
                    .unwrap_or(false)
            })
        };
        if !within(&r, &x) || !within(&s, &y) {
            continue;
        }
        if !holds(&defs, &p, &r)? || !holds(&defs, &q, &s)? {
            continue;
        }
        report.premises_held += 1;
        let par = p.clone().par(q.clone());
        if !holds(&defs, &par, &r.clone().and(s.clone()))? {
            report
                .violations
                .push(format!("({p} || {q}) !sat ({r} and {s})"));
        }
    }
    Ok(report)
}

/// Rule 9 (hiding): if `R` avoids the concealed channels, `P sat R`
/// gives `(chan L; P) sat R`.
fn validate_hiding(seed: u64, instances: usize) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let defs = Definitions::new();
    let mut report = new_report("hiding (9)", instances);
    for _ in 0..instances {
        let p = g.process(3);
        let r = g.assertion();
        let hidden = g.channel();
        if r.channel_bases().contains(hidden) {
            continue; // side condition fails
        }
        if !holds(&defs, &p, &r)? {
            continue;
        }
        report.premises_held += 1;
        let hid = p.clone().hide(vec![ChanRef::simple(hidden)]);
        if !holds(&defs, &hid, &r)? {
            report
                .violations
                .push(format!("(chan {hidden}; {p}) !sat {r}"));
        }
    }
    Ok(report)
}

/// Rule 10 (recursion), validated through the fixpoint construction of
/// §3.3: for a random guarded equation `p ≜ P`, if every iterate `a_i`
/// satisfies `R` (with `a₀ ⊨ R` being the `R_<>` premise), the limit
/// must; additionally the chain must be increasing (`a_i ⊆ a_{i+1}`).
fn validate_recursion(seed: u64, instances: usize) -> Result<RuleReport, csp_assert::AssertError> {
    let mut g = InstanceGen::new(seed);
    let mut report = new_report("recursion (10)", instances);
    let uni = universe();
    for _ in 0..instances {
        // p = <prefix chain> -> p, guarded by construction.
        let chain_len = 1 + (g.value() as usize % 2) + 1;
        let mut body = Process::call("p");
        for _ in 0..chain_len {
            body = Process::output(g.channel(), Expr::int(g.value()), body);
        }
        let mut defs = Definitions::new();
        defs.define(Definition::plain("p", body));
        let r = g.assertion();

        let run = fixpoint(&defs, &uni, &Env::new(), DEPTH, 12).expect("fixpoint on closed defs");
        // Chain property.
        for w in run.iterates.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            for (k, t) in a {
                if !t.is_subset(b.get(k).expect("same keys")) {
                    report
                        .violations
                        .push(format!("iterate chain not increasing for {k:?}"));
                }
            }
        }
        // If all iterates satisfy R, the limit must.
        let key = ("p".to_string(), Vec::new());
        let all_sat = run
            .iterates
            .iter()
            .map(|a| traceset_sat(a.get(&key).expect("p present"), &r, &uni))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .all(|b| b);
        if !all_sat {
            continue;
        }
        report.premises_held += 1;
        if !traceset_sat(run.limit().get(&key).expect("p present"), &r, &uni)? {
            report.violations.push(format!("limit of p violates {r}"));
        }
    }
    Ok(report)
}

/// Evaluates `sat` directly over a concrete trace set.
pub fn traceset_sat(
    ts: &TraceSet,
    r: &Assertion,
    universe: &Universe,
) -> Result<bool, csp_assert::AssertError> {
    let env = Env::new();
    let funcs = FuncTable::with_builtins();
    // Order-independent conjunction: skip the sorted iteration.
    for t in ts.iter_unordered() {
        let h = t.history();
        let ctx = EvalCtx::new(&env, &h, &funcs, universe);
        if !ctx.assertion(r)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn new_report(rule: &'static str, instances: usize) -> RuleReport {
    RuleReport {
        rule,
        instances,
        premises_held: 0,
        violations: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rules_empirically_sound() {
        let reports = validate_all_rules(2026, 40).expect("validation runs");
        assert_eq!(reports.len(), 10);
        for r in &reports {
            assert!(
                r.sound(),
                "rule {} violated on {} instance(s): {:?}",
                r.rule,
                r.violations.len(),
                r.violations.first()
            );
        }
        // The experiment is only meaningful if premises actually held on
        // a reasonable share of instances.
        let informative: usize = reports.iter().map(|r| r.premises_held).sum();
        assert!(informative >= 40, "only {informative} informative cases");
    }

    #[test]
    fn reports_are_deterministic() {
        let a = validate_all_rules(7, 10).unwrap();
        let b = validate_all_rules(7, 10).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.premises_held, y.premises_held);
        }
    }
}
