//! # csp-verify
//!
//! Bounded model checking and empirical validation for the Zhou & Hoare
//! (1981) reproduction.
//!
//! * [`SatChecker`] — refutation-complete bounded checking of `P sat R`
//!   with counterexample traces (the semantic reading of §3.3, explored
//!   through the operational semantics);
//! * [`validate_all_rules`] — experiment E6: each of the ten inference
//!   rules of §2.1 validated on seeded random instances
//!   (premises-hold ⇒ conclusion-holds, as §3.4 proves);
//! * [`cross_validate_scripts`] — every machine-checked paper proof from
//!   `csp-proof` independently confirmed by the model checker;
//! * [`stop_choice_identity`] — experiment E7: the §4 defect
//!   `STOP | P = P` verified mechanically.
//!
//! ```
//! use csp_assert::{parse_assertion, ChannelInfo};
//! use csp_lang::examples;
//! use csp_semantics::Universe;
//! use csp_verify::SatChecker;
//!
//! let defs = examples::pipeline();
//! let uni = Universe::new(1);
//! let info = ChannelInfo::new().with_channels(["input", "wire"]);
//! let r = parse_assertion("wire <= input", &info).unwrap();
//! let checker = SatChecker::new(&defs, &uni);
//! assert!(checker.check_name("copier", &r, 4).unwrap().holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crossval;
mod deadlock;
mod faultconf;
mod gen;
mod satcheck;
mod soundness;

pub use crossval::{cross_validate_scripts, stop_choice_identity, CrossValidation};
pub use deadlock::{find_deadlocks, find_deadlocks_compiled, Deadlock, DeadlockReport};
pub use faultconf::{fault_conformance, DegradedRun, FaultConfError, FaultConformance, FaultSweep};
pub use gen::InstanceGen;
pub use satcheck::{SatChecker, SatResult};
pub use soundness::{traceset_sat, validate_all_rules, RuleReport};
