//! Cross-validation of the proof system against the model — the
//! strongest form of experiment E6.
//!
//! Every claim the proof checker certifies is independently model-checked
//! here: a discrepancy would mean either the checker admits an unsound
//! derivation or the semantics disagrees with the paper. The §4 identity
//! `STOP | P = P` (the model's admitted defect) is also verified
//! mechanically.

use csp_assert::AssertError;
use csp_lang::{Env, Process};
use csp_proof::{scripts, Judgement};
use csp_semantics::{compare, Semantics, Universe};
use rayon::prelude::*;

use crate::{SatChecker, SatResult};

/// Result of cross-validating one proof script.
#[derive(Debug)]
pub struct CrossValidation {
    /// The script's name.
    pub script: &'static str,
    /// The claim as text.
    pub claim: String,
    /// The proof checker's verdict (rule applications).
    pub proof_steps: usize,
    /// The model checker's verdict.
    pub model_result: SatResult,
}

impl CrossValidation {
    /// True when both the proof checked and the model agreed.
    pub fn agreed(&self) -> bool {
        self.model_result.holds()
    }
}

/// Checks every proof script symbolically *and* by bounded model
/// checking at the given depth.
///
/// # Errors
///
/// Fails if a proof does not check (a broken reproduction) or an
/// assertion cannot be evaluated.
pub fn cross_validate_scripts(depth: usize) -> Result<Vec<CrossValidation>, AssertError> {
    // Scripts are independent (each carries its own context); check them
    // concurrently, keeping the script order in the results.
    let results: Vec<Option<Result<CrossValidation, AssertError>>> = scripts::all_scripts()
        .into_par_iter()
        .map(|script| {
            let report = script
                .check()
                .unwrap_or_else(|e| panic!("proof `{}` failed to check: {e}", script.name));
            let Judgement::Sat { process, assertion } = &script.goal else {
                return None; // all shipped scripts have sat goals
            };
            let checker = SatChecker::new(&script.context.defs, &script.context.universe)
                .with_env(script.context.env.clone())
                .with_internal_budget_factor(4);
            let model_result = match checker.check(process, assertion, depth) {
                Ok(r) => r,
                Err(e) => return Some(Err(e)),
            };
            Some(Ok(CrossValidation {
                script: script.name,
                claim: script.goal.to_string(),
                proof_steps: report.rule_count(),
                model_result,
            }))
        })
        .collect();
    results.into_iter().flatten().collect()
}

/// Experiment E7 — the §4 defect: in the prefix-closure model,
/// `STOP | P` and `P` denote the same trace set. Returns the two sizes
/// (equal on success).
///
/// # Errors
///
/// Propagates evaluation failures from the semantics.
pub fn stop_choice_identity(
    defs: &csp_lang::Definitions,
    universe: &Universe,
    name: &str,
    depth: usize,
) -> Result<(usize, usize), csp_lang::EvalError> {
    let sem = Semantics::new(defs, universe);
    let env = Env::new();
    let plain = sem.denote_name(name, &env, depth)?;
    let with_stop = sem.denote(&Process::Stop.or(Process::call(name)), &env, depth)?;
    debug_assert!(compare(&plain, &with_stop).is_none());
    Ok((plain.len(), with_stop.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_lang::examples;

    #[test]
    fn every_proved_claim_model_checks() {
        let results = cross_validate_scripts(3).expect("cross-validation runs");
        assert!(results.len() >= 8);
        for r in &results {
            assert!(
                r.agreed(),
                "proof `{}` not confirmed by the model: {:?}",
                r.script,
                r.model_result
            );
        }
    }

    #[test]
    fn stop_choice_is_identity_on_paper_examples() {
        let uni = Universe::new(1);
        for (defs, name) in [
            (examples::pipeline(), "copier"),
            (examples::pipeline(), "pipeline"),
            (examples::buffer2(), "buffer2"),
        ] {
            let (a, b) = stop_choice_identity(&defs, &uni, name, 4).unwrap();
            assert_eq!(a, b, "STOP | {name} differs from {name}");
        }
    }
}
