//! Bounded model checking of `P sat R`.
//!
//! §2 defines `P sat R` as "`R` is true before and after every
//! communication by `P`" — semantically (§3.3),
//! `∀s ∈ ⟦P⟧. (ρ + ch(s))⟦R⟧`. Because `⟦P⟧` is prefix-closed, checking
//! every member trace up to a depth checks every intermediate moment up
//! to that depth. The checker explores traces through the operational
//! semantics (which composes networks on the fly) and reports the first
//! counterexample trace, making it the refutation-complete companion to
//! the symbolic proof system: everything `csp-proof` proves is also
//! model-checked in this crate's tests.

use csp_assert::{AssertError, Assertion, EvalCtx, FuncTable};
use csp_lang::{Definitions, Env, Process};
use csp_obs::Collector;
use csp_semantics::{CompiledLts, Config, Engine, Lts, Universe};
use csp_trace::Trace;
use rayon::prelude::*;

/// The verdict of a bounded satisfaction check.
#[derive(Debug, Clone)]
pub enum SatResult {
    /// Every explored trace satisfied the assertion.
    Holds {
        /// Number of traces (moments) checked.
        traces_checked: usize,
        /// The exploration depth.
        depth: usize,
        /// The backend that produced the verdict (never `Auto`).
        engine: Engine,
    },
    /// A reachable trace falsifies the assertion.
    Counterexample {
        /// The falsifying trace.
        trace: Trace,
        /// The backend that produced the verdict (never `Auto`).
        engine: Engine,
    },
}

impl SatResult {
    /// True if no counterexample was found.
    pub fn holds(&self) -> bool {
        matches!(self, SatResult::Holds { .. })
    }

    /// The backend that answered (resolved, never [`Engine::Auto`]).
    pub fn engine(&self) -> Engine {
        match self {
            SatResult::Holds { engine, .. } | SatResult::Counterexample { engine, .. } => *engine,
        }
    }
}

/// A bounded `sat` checker over a definition list.
#[derive(Debug, Clone)]
pub struct SatChecker<'a> {
    defs: &'a Definitions,
    universe: &'a Universe,
    funcs: FuncTable,
    env: Env,
    internal_budget_factor: usize,
    collector: Collector,
    engine: Engine,
}

impl<'a> SatChecker<'a> {
    /// Creates a checker with the built-in sequence functions and an
    /// empty host environment.
    pub fn new(defs: &'a Definitions, universe: &'a Universe) -> Self {
        SatChecker {
            defs,
            universe,
            funcs: FuncTable::with_builtins(),
            env: Env::new(),
            internal_budget_factor: 3,
            collector: Collector::disabled(),
            engine: Engine::Auto,
        }
    }

    /// Selects the verification backend; [`Engine::Auto`] (the default)
    /// picks per query based on the network shape.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the host environment (e.g. the multiplier's vector).
    #[must_use]
    pub fn with_env(mut self, env: Env) -> Self {
        self.env = env;
        self
    }

    /// Replaces the sequence-function table.
    #[must_use]
    pub fn with_funcs(mut self, funcs: FuncTable) -> Self {
        self.funcs = funcs;
        self
    }

    /// Sets the hidden-communication budget as a multiple of the depth.
    #[must_use]
    pub fn with_internal_budget_factor(mut self, factor: usize) -> Self {
        self.internal_budget_factor = factor.max(1);
        self
    }

    /// Attaches an observation stream: each check records a `satcheck`
    /// span (with exploration and moment counts) and per-phase child
    /// spans. Disabled by default.
    #[must_use]
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.collector = collector;
        self
    }

    /// Checks `process sat assertion` over all traces up to `depth`.
    ///
    /// # Errors
    ///
    /// Returns an [`AssertError`] if the assertion itself cannot be
    /// evaluated (unknown function, unbound variable), and wraps
    /// evaluation errors from trace exploration the same way.
    pub fn check(
        &self,
        process: &Process,
        assertion: &Assertion,
        depth: usize,
    ) -> Result<SatResult, AssertError> {
        let mut root = self.collector.span("satcheck");
        root.record("depth", depth);
        let engine = self.engine.resolve(self.defs, process);
        root.record("engine", engine.as_str());
        let start = Config::new(process.clone(), self.env.clone());
        let explore_span = root.child("satcheck.explore");
        let budget = depth * self.internal_budget_factor;
        let traces = match engine {
            Engine::Compiled => {
                let mut compiled = CompiledLts::new(self.defs, self.universe);
                let s = compiled.intern(start);
                compiled
                    .traces_budgeted(s, depth, budget)
                    .map_err(AssertError::Eval)?
            }
            _ => Lts::new(self.defs, self.universe)
                .traces_budgeted(&start, depth, budget)
                .map_err(AssertError::Eval)?,
        };
        explore_span.end();
        // Each moment is checked independently; fan out, then scan the
        // verdicts in trace order so the reported counterexample is the
        // same one the sequential loop would have found.
        let traces: Vec<Trace> = traces.iter().cloned().collect();
        root.record("moments", traces.len());
        self.collector.add("satcheck.moments", traces.len() as u64);
        let verdict_span = root.child("satcheck.verdicts");
        let verdicts: Vec<Result<bool, AssertError>> = traces
            .par_iter()
            .map(|trace| {
                let history = trace.history();
                let ctx = EvalCtx::new(&self.env, &history, &self.funcs, self.universe);
                ctx.assertion(assertion)
            })
            .collect();
        verdict_span.end();
        let mut checked = 0usize;
        for (trace, verdict) in traces.iter().zip(verdicts) {
            if !verdict? {
                root.record("counterexample", true);
                return Ok(SatResult::Counterexample {
                    trace: trace.clone(),
                    engine,
                });
            }
            checked += 1;
        }
        root.record("counterexample", false);
        Ok(SatResult::Holds {
            traces_checked: checked,
            depth,
            engine,
        })
    }

    /// Convenience: checks a named process.
    ///
    /// # Errors
    ///
    /// As for [`check`](Self::check).
    pub fn check_name(
        &self,
        name: &str,
        assertion: &Assertion,
        depth: usize,
    ) -> Result<SatResult, AssertError> {
        self.check(&Process::call(name), assertion, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_assert::{parse_assertion, ChannelInfo};
    use csp_lang::examples;
    use csp_trace::Value;

    fn info() -> ChannelInfo {
        ChannelInfo::new()
            .with_channels(["input", "wire", "output"])
            .with_arrays(["row", "col"])
            .with_funcs(["f"])
    }

    #[test]
    fn copier_satisfies_wire_le_input() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let checker = SatChecker::new(&defs, &uni);
        let r = parse_assertion("wire <= input", &info()).unwrap();
        let res = checker.check_name("copier", &r, 5).unwrap();
        match res {
            SatResult::Holds { traces_checked, .. } => assert!(traces_checked > 10),
            SatResult::Counterexample { trace, .. } => panic!("spurious cex: {trace}"),
        }
    }

    #[test]
    fn copier_refutes_wrong_direction() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let checker = SatChecker::new(&defs, &uni);
        let r = parse_assertion("input <= wire", &info()).unwrap();
        let res = checker.check_name("copier", &r, 4).unwrap();
        match res {
            SatResult::Counterexample { trace, .. } => {
                // Minimal counterexample: one input, no wire yet.
                assert_eq!(trace.len(), 1);
            }
            SatResult::Holds { .. } => panic!("should be refuted"),
        }
    }

    #[test]
    fn copier_length_bound_holds() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let checker = SatChecker::new(&defs, &uni);
        let r = parse_assertion("#input <= #wire + 1", &info()).unwrap();
        assert!(checker.check_name("copier", &r, 6).unwrap().holds());
        // The tight version without the +1 slack fails:
        let tight = parse_assertion("#input <= #wire", &info()).unwrap();
        assert!(!checker.check_name("copier", &tight, 6).unwrap().holds());
    }

    #[test]
    fn protocol_satisfies_output_le_input() {
        let defs = examples::protocol();
        let uni = Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]);
        let checker = SatChecker::new(&defs, &uni).with_internal_budget_factor(4);
        let r = parse_assertion("output <= input", &info()).unwrap();
        assert!(checker.check_name("protocol", &r, 3).unwrap().holds());
    }

    #[test]
    fn sender_satisfies_table1_invariant() {
        let defs = examples::protocol();
        let uni = Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]);
        let checker = SatChecker::new(&defs, &uni);
        let r = parse_assertion("f(wire) <= input", &info()).unwrap();
        assert!(checker.check_name("sender", &r, 5).unwrap().holds());
    }

    #[test]
    fn receiver_satisfies_exercise_invariant() {
        let defs = examples::protocol();
        let uni = Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]);
        let checker = SatChecker::new(&defs, &uni);
        let r = parse_assertion("output <= f(wire)", &info()).unwrap();
        assert!(checker.check_name("receiver", &r, 5).unwrap().holds());
    }

    #[test]
    fn multiplier_scalar_product_invariant() {
        // Experiment E4: the §2 claim
        //   output_i = Σ_j v[j] × row[j]_i
        // verified by bounded model checking on the width-3 network.
        let defs = csp_lang::parse_definitions(
            "mult[i:1..3] = row[i]?x:{0..1} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
             zeroes = col[0]!0 -> zeroes
             last = col[3]?y:NAT -> output!y -> last
             network = zeroes || mult[1] || mult[2] || mult[3] || last
             multiplier = chan col[0..3]; network",
        )
        .unwrap();
        let env = examples::multiplier_env(&[2, 3, 5]);
        let uni = Universe::new(10);
        let checker = SatChecker::new(&defs, &uni)
            .with_env(env)
            .with_internal_budget_factor(4);
        let r = parse_assertion(
            "forall i:NAT. 1 <= i and i <= #output => \
             output[i] == v[1]*row[1][i] + v[2]*row[2][i] + v[3]*row[3][i]",
            &info(),
        )
        .unwrap();
        let res = checker.check_name("multiplier", &r, 4).unwrap();
        assert!(res.holds(), "{res:?}");
        // And a deliberately wrong vector index refutes:
        let wrong = parse_assertion(
            "forall i:NAT. 1 <= i and i <= #output => output[i] == v[1]*row[1][i]",
            &info(),
        )
        .unwrap();
        assert!(!checker.check_name("multiplier", &wrong, 4).unwrap().holds());
    }

    #[test]
    fn engines_agree_and_report_themselves() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let r = parse_assertion("output <= input", &info()).unwrap();
        let wrong = parse_assertion("input <= output", &info()).unwrap();
        for name in ["copier", "pipeline"] {
            let base = SatChecker::new(&defs, &uni);
            for assertion in [&r, &wrong] {
                let enumerative = base
                    .clone()
                    .with_engine(Engine::Enumerative)
                    .check_name(name, assertion, 4)
                    .unwrap();
                let compiled = base
                    .clone()
                    .with_engine(Engine::Compiled)
                    .check_name(name, assertion, 4)
                    .unwrap();
                assert_eq!(enumerative.engine(), Engine::Enumerative);
                assert_eq!(compiled.engine(), Engine::Compiled);
                assert_eq!(enumerative.holds(), compiled.holds(), "{name}");
                // Identical exploration order ⇒ identical verdict detail.
                match (&enumerative, &compiled) {
                    (
                        SatResult::Holds {
                            traces_checked: a, ..
                        },
                        SatResult::Holds {
                            traces_checked: b, ..
                        },
                    ) => assert_eq!(a, b, "{name}"),
                    (
                        SatResult::Counterexample { trace: a, .. },
                        SatResult::Counterexample { trace: b, .. },
                    ) => assert_eq!(a, b, "{name}"),
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn auto_picks_compiled_for_networks_only() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let checker = SatChecker::new(&defs, &uni);
        let r = parse_assertion("wire <= input", &info()).unwrap();
        let res = checker.check_name("copier", &r, 3).unwrap();
        assert_eq!(res.engine(), Engine::Enumerative);
        let res = checker.check_name("pipeline", &r, 3).unwrap();
        assert_eq!(res.engine(), Engine::Compiled);
    }

    #[test]
    fn stop_satisfies_everything_satisfiable_at_empty() {
        // §4: "the process STOP satisfies any satisfiable invariant
        // whatsoever" — the partial-correctness defect.
        let defs = Definitions::new();
        let uni = Universe::new(1);
        let checker = SatChecker::new(&defs, &uni);
        let r = parse_assertion("output <= input", &info()).unwrap();
        let res = checker.check(&Process::Stop, &r, 5).unwrap();
        match res {
            SatResult::Holds { traces_checked, .. } => assert_eq!(traces_checked, 1),
            other => panic!("{other:?}"),
        }
    }
}
