//! Seeded random generation of processes and assertions for the
//! soundness experiments (E6).
//!
//! Instances are deliberately small: channels `a`, `b`, `c`, values from
//! the universe, prefix/choice terms of bounded depth — enough to give
//! each inference rule a diverse population of premise instances without
//! blowing up the bounded checks.

use csp_assert::{Assertion, CmpOp, STerm, Term};
use csp_lang::{Process, SetExpr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic generator for soundness-experiment instances.
#[derive(Debug)]
pub struct InstanceGen {
    rng: StdRng,
    channels: Vec<&'static str>,
    max_value: i64,
}

impl InstanceGen {
    /// A generator with the given seed (same seed → same instances, so
    /// experiment runs are reproducible).
    pub fn new(seed: u64) -> Self {
        InstanceGen {
            rng: StdRng::seed_from_u64(seed),
            channels: vec!["a", "b", "c"],
            max_value: 1,
        }
    }

    /// A random channel name.
    pub fn channel(&mut self) -> &'static str {
        self.channels[self.rng.gen_range(0..self.channels.len())]
    }

    /// A random closed process of the given depth: prefix chains and
    /// choices over the generator's channels, ending in `STOP`.
    pub fn process(&mut self, depth: usize) -> Process {
        if depth == 0 {
            return Process::Stop;
        }
        match self.rng.gen_range(0..4u8) {
            // Output prefix.
            0 | 1 => Process::output(
                self.channel(),
                csp_lang::Expr::int(self.rng.gen_range(0..=self.max_value)),
                self.process(depth - 1),
            ),
            // Input prefix over a small range.
            2 => {
                let var = "x";
                Process::input(
                    self.channel(),
                    var,
                    SetExpr::range(0, self.max_value),
                    self.process(depth - 1),
                )
            }
            // Choice.
            _ => self.process(depth - 1).or(self.process(depth - 1)),
        }
    }

    /// A random assertion from a catalogue of shapes over the
    /// generator's channels: prefix relations, length comparisons, and
    /// conjunctions thereof.
    pub fn assertion(&mut self) -> Assertion {
        match self.rng.gen_range(0..5u8) {
            0 => Assertion::prefix(STerm::chan(self.channel()), STerm::chan(self.channel())),
            1 => Assertion::Cmp(
                CmpOp::Le,
                Term::length(STerm::chan(self.channel())),
                Term::length(STerm::chan(self.channel())).add(Term::int(self.rng.gen_range(0..3))),
            ),
            2 => Assertion::Cmp(
                CmpOp::Le,
                Term::length(STerm::chan(self.channel())),
                Term::int(self.rng.gen_range(0..4)),
            ),
            3 => self.assertion_simple().and(self.assertion_simple()),
            _ => Assertion::prefix(STerm::Empty, STerm::chan(self.channel())),
        }
    }

    fn assertion_simple(&mut self) -> Assertion {
        match self.rng.gen_range(0..2u8) {
            0 => Assertion::prefix(STerm::chan(self.channel()), STerm::chan(self.channel())),
            _ => Assertion::Cmp(
                CmpOp::Le,
                Term::length(STerm::chan(self.channel())),
                Term::length(STerm::chan(self.channel())).add(Term::int(1)),
            ),
        }
    }

    /// A random value in range.
    pub fn value(&mut self) -> i64 {
        self.rng.gen_range(0..=self.max_value)
    }

    /// A random boolean.
    pub fn flip(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut g1 = InstanceGen::new(42);
        let mut g2 = InstanceGen::new(42);
        for _ in 0..10 {
            assert_eq!(g1.process(3), g2.process(3));
            assert_eq!(g1.assertion(), g2.assertion());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut g1 = InstanceGen::new(1);
        let mut g2 = InstanceGen::new(2);
        let p1: Vec<Process> = (0..10).map(|_| g1.process(3)).collect();
        let p2: Vec<Process> = (0..10).map(|_| g2.process(3)).collect();
        assert_ne!(p1, p2);
    }

    #[test]
    fn processes_are_closed_and_bounded() {
        let mut g = InstanceGen::new(7);
        for _ in 0..50 {
            let p = g.process(3);
            assert!(csp_lang::free_vars_process(&p).is_empty(), "{p}");
            assert!(p.size() <= 16);
        }
    }
}
