//! Fault conformance: partial correctness survives fail-stop faults.
//!
//! The paper's §4 self-critique — `STOP | P = P`, so a dying component
//! is invisible to the proof system — has a constructive reading:
//! because failures only *remove* behaviour, every trace of a degraded
//! run is still a trace of the healthy network, and every proven `sat`
//! assertion still holds at every moment of it. [`fault_conformance`]
//! tests exactly that claim empirically: it sweeps a network over
//! seeds × fault plans, replays each degraded run's visible trace
//! against the semantics, and checks the invariants on every prefix.
//!
//! Plans using [`csp_runtime::RestartPolicy::Reset`] are the deliberate
//! counterpoint: a reset component forgets its history, so the sweep is
//! *expected* to find non-conformant runs — which is how the soundness
//! of replay (and the unsoundness of naive restart) is demonstrated.

use csp_assert::Assertion;
use csp_lang::{Definitions, Env, EvalError, Process};
use csp_runtime::{
    check_conformance, ConformanceReport, Executor, FaultPlan, RunError, RunOptions, RunOutcome,
    Scheduler, Supervision,
};
use csp_semantics::Universe;
use rayon::prelude::*;

/// What to sweep: the cartesian product of `seeds` and `plans`.
#[derive(Debug, Clone)]
pub struct FaultSweep {
    /// Scheduler seeds; one run per (seed, plan) pair.
    pub seeds: Vec<u64>,
    /// Fault plans. Include [`FaultPlan::none`] to keep a healthy
    /// baseline in the same report.
    pub plans: Vec<FaultPlan>,
    /// Step budget per run.
    pub max_steps: usize,
    /// Watchdog limits applied to every run.
    pub supervision: Supervision,
    /// Concealed-step budget used when replaying a visible trace
    /// against the semantics.
    pub internal_budget: usize,
}

impl FaultSweep {
    /// A sweep over the given seeds and plans with default budgets
    /// (48 steps per run, internal budget 8).
    pub fn new(
        seeds: impl IntoIterator<Item = u64>,
        plans: impl IntoIterator<Item = FaultPlan>,
    ) -> Self {
        FaultSweep {
            seeds: seeds.into_iter().collect(),
            plans: plans.into_iter().collect(),
            max_steps: 48,
            supervision: Supervision::default(),
            internal_budget: 8,
        }
    }

    /// Sets the per-run step budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the watchdog limits for every run.
    #[must_use]
    pub fn with_supervision(mut self, supervision: Supervision) -> Self {
        self.supervision = supervision;
        self
    }
}

/// One degraded run and its conformance verdict.
#[derive(Debug, Clone)]
pub struct DegradedRun {
    /// Scheduler seed of this run.
    pub seed: u64,
    /// Index into [`FaultSweep::plans`] of the plan applied.
    pub plan: usize,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Events recorded (hidden included).
    pub steps: usize,
    /// Component deaths observed, recovered or not.
    pub failures: usize,
    /// Of those, how many a restart policy recovered.
    pub recoveries: usize,
    /// The semantic replay + every-prefix invariant check of the run's
    /// visible trace.
    pub report: ConformanceReport,
}

impl DegradedRun {
    /// True when the visible trace is admitted by the semantics and all
    /// invariants held on every prefix.
    pub fn conformant(&self) -> bool {
        self.report.conforms()
    }
}

/// The result of a full sweep.
#[derive(Debug, Clone)]
pub struct FaultConformance {
    /// One entry per (seed, plan) pair, seeds varying fastest.
    pub runs: Vec<DegradedRun>,
}

impl FaultConformance {
    /// True when every degraded run conformed.
    pub fn all_conformant(&self) -> bool {
        self.runs.iter().all(DegradedRun::conformant)
    }

    /// The runs that did *not* conform (expected to be non-empty only
    /// for unsound plans, e.g. reset-restart).
    pub fn violations(&self) -> Vec<&DegradedRun> {
        self.runs.iter().filter(|r| !r.conformant()).collect()
    }

    /// Counts of (conformant, total) runs.
    pub fn tally(&self) -> (usize, usize) {
        (
            self.runs.iter().filter(|r| r.conformant()).count(),
            self.runs.len(),
        )
    }
}

/// Errors from a fault-conformance sweep.
#[derive(Debug)]
pub enum FaultConfError {
    /// A run failed to start (bad network or fault plan).
    Run(RunError),
    /// The semantic replay of a recorded trace failed to evaluate.
    Eval(EvalError),
}

impl std::fmt::Display for FaultConfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfError::Run(e) => write!(f, "run failed: {e}"),
            FaultConfError::Eval(e) => write!(f, "conformance replay failed: {e}"),
        }
    }
}

impl std::error::Error for FaultConfError {}

/// Runs `process` under every (seed, plan) pair of the sweep and checks
/// each degraded run's visible trace against the semantics and the
/// given invariants at every prefix.
///
/// # Errors
///
/// Fails only on *setup* problems (non-static network, unknown fault
/// target) or evaluation errors during semantic replay. Mid-run
/// degradation is the point of the exercise and lands in the per-run
/// [`RunOutcome`], never here.
pub fn fault_conformance(
    process: &Process,
    env: &Env,
    defs: &Definitions,
    universe: &Universe,
    invariants: &[Assertion],
    sweep: &FaultSweep,
) -> Result<FaultConformance, FaultConfError> {
    let exec = Executor::new(defs, universe);
    // The (plan, seed) pairs are independent runs: fan them out, seeds
    // varying fastest so `runs` keeps its documented order.
    let pairs: Vec<(usize, &FaultPlan, u64)> = sweep
        .plans
        .iter()
        .enumerate()
        .flat_map(|(plan_idx, plan)| sweep.seeds.iter().map(move |&s| (plan_idx, plan, s)))
        .collect();
    let runs: Vec<Result<DegradedRun, FaultConfError>> = pairs
        .into_par_iter()
        .map(|(plan_idx, plan, seed)| {
            let res = exec
                .run(
                    process,
                    env,
                    RunOptions {
                        max_steps: sweep.max_steps,
                        scheduler: Scheduler::seeded(seed),
                        faults: plan.clone(),
                        supervision: sweep.supervision.clone(),
                        ..RunOptions::default()
                    },
                )
                .map_err(FaultConfError::Run)?;
            let budget = sweep
                .internal_budget
                .max(res.full.len() - res.visible.len());
            let report = check_conformance(
                process,
                env,
                defs,
                universe,
                &res.visible,
                invariants,
                budget,
            )
            .map_err(FaultConfError::Eval)?;
            Ok(DegradedRun {
                seed,
                plan: plan_idx,
                steps: res.steps,
                failures: res.failures.len(),
                recoveries: res.recoveries(),
                outcome: res.outcome,
                report,
            })
        })
        .collect();
    Ok(FaultConformance {
        runs: runs.into_iter().collect::<Result<_, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_assert::{parse_assertion, ChannelInfo};
    use csp_lang::examples;

    fn pipeline_invariant() -> Assertion {
        let info = ChannelInfo::new().with_channels(["input", "wire", "output"]);
        parse_assertion("output <= input", &info).unwrap()
    }

    #[test]
    fn degraded_pipeline_runs_conform() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let sweep = FaultSweep::new(
            [1, 2, 3],
            [
                FaultPlan::none(),
                FaultPlan::none().crash("copier", 5),
                FaultPlan::none().stall("recopier", 3, 4),
            ],
        )
        .with_max_steps(24);
        let result = fault_conformance(
            &Process::call("pipeline"),
            &Env::new(),
            &defs,
            &uni,
            &[pipeline_invariant()],
            &sweep,
        )
        .unwrap();
        assert_eq!(result.runs.len(), 9);
        assert!(result.all_conformant(), "{:?}", result.violations());
        // The crash plan actually crashed something.
        assert!(result.runs.iter().any(|r| r.plan == 1 && r.failures == 1));
    }

    #[test]
    fn healthy_and_replay_runs_agree() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let sweep = FaultSweep::new(
            [7],
            [FaultPlan::none()
                .crash("copier", 4)
                .with_restart(csp_runtime::RestartPolicy::Replay)],
        )
        .with_max_steps(20);
        let result = fault_conformance(
            &Process::call("pipeline"),
            &Env::new(),
            &defs,
            &uni,
            &[pipeline_invariant()],
            &sweep,
        )
        .unwrap();
        assert!(result.all_conformant());
        assert_eq!(result.runs[0].recoveries, 1);
        assert!(result.runs[0].outcome.is_clean());
    }
}
