//! Deadlock reachability analysis — going where the paper's theory
//! cannot.
//!
//! §4: the proof method "cannot prove (or even express) the absence of
//! deadlock", because the prefix-closure model identifies `STOP | P`
//! with `P`. The *operational* semantics, however, distinguishes
//! configurations: a state with no enabled transition is a deadlock, and
//! bounded search finds the traces that reach one. This module provides
//! that search — the analysis the paper names as future work
//! ("It is hoped that the adoption of a more realistic model of
//! non-determinism will permit … total correctness").
//!
//! Two kinds of dead states are distinguished: *termination-like* (every
//! component is `STOP` syntactically — the network ran out of program)
//! and *genuine deadlock* (some component still has program text but no
//! event can be agreed).

use std::collections::BTreeSet;

use csp_lang::{Definitions, Env, EvalError, Process};
use csp_semantics::{CompiledLts, CompiledStep, Config, Lts, StateSet, Step, Universe};
use csp_trace::Trace;

/// A reachable dead configuration.
#[derive(Debug, Clone)]
pub struct Deadlock {
    /// A visible trace reaching the dead configuration.
    pub trace: Trace,
    /// Rendering of the stuck process term.
    pub state: String,
    /// True when the stuck term is syntactically all-`STOP` — i.e. the
    /// network genuinely finished rather than jammed.
    pub terminated: bool,
}

/// Result of a bounded deadlock search.
#[derive(Debug, Clone, Default)]
pub struct DeadlockReport {
    /// Dead configurations found, shortest witness first (at most one
    /// per distinct configuration).
    pub deadlocks: Vec<Deadlock>,
    /// Number of distinct configurations explored.
    pub states_explored: usize,
    /// True if the search exhausted every configuration reachable within
    /// the depth bound (so an empty `deadlocks` is a bounded guarantee).
    pub complete: bool,
}

impl DeadlockReport {
    /// True when no *genuine* deadlock (non-terminated dead state) was
    /// found.
    pub fn deadlock_free(&self) -> bool {
        self.deadlocks.iter().all(|d| d.terminated)
    }
}

/// Searches for reachable dead configurations of `process` up to `depth`
/// visible events (with an internal-step budget of `3 × depth` along any
/// path, matching the semantics' hide handling).
///
/// # Errors
///
/// Propagates evaluation failures from the transition relation.
pub fn find_deadlocks(
    defs: &Definitions,
    universe: &Universe,
    process: &Process,
    env: &Env,
    depth: usize,
) -> Result<DeadlockReport, EvalError> {
    let lts = Lts::new(defs, universe);
    let mut report = DeadlockReport::default();
    let mut seen: BTreeSet<Config> = BTreeSet::new();
    let mut dead_seen: BTreeSet<String> = BTreeSet::new();
    // Breadth-first so witnesses are shortest-first.
    let mut frontier = vec![(
        Config::new(process.clone(), env.clone()),
        Trace::empty(),
        0usize,
    )];
    seen.insert(frontier[0].0.clone());

    while let Some((config, trace, internal_used)) = pop_front(&mut frontier) {
        report.states_explored += 1;
        let steps = lts.steps(&config)?;
        if steps.is_empty() {
            let state = config.process().to_string();
            if dead_seen.insert(state.clone()) {
                report.deadlocks.push(Deadlock {
                    trace: trace.clone(),
                    terminated: all_stop(config.process()),
                    state,
                });
            }
            continue;
        }
        for step in steps {
            match step {
                Step::Visible(e, next) => {
                    if trace.len() < depth && seen.insert(next.clone()) {
                        frontier.push((next, trace.snoc(e), internal_used));
                    }
                }
                Step::Internal(next) => {
                    if internal_used < depth * 3 && seen.insert(next.clone()) {
                        frontier.push((next, trace.clone(), internal_used + 1));
                    }
                }
            }
        }
    }
    // Completeness: we only cut exploration at the depth bound; within
    // the bound every configuration was expanded.
    report.complete = true;
    Ok(report)
}

/// The compiled-backend mirror of [`find_deadlocks`]: the identical
/// breadth-first search run over a [`CompiledLts`] arena, with the seen
/// set a [`StateSet`] bitset instead of an ordered configuration set and
/// every re-visit a row lookup instead of a re-step. Produces the same
/// report (same witnesses, same order, same `states_explored`) — the
/// equivalence is asserted by the property harness in `tests/`.
///
/// # Errors
///
/// Propagates evaluation failures from the transition relation.
pub fn find_deadlocks_compiled(
    defs: &Definitions,
    universe: &Universe,
    process: &Process,
    env: &Env,
    depth: usize,
) -> Result<DeadlockReport, EvalError> {
    let mut lts = CompiledLts::new(defs, universe);
    let mut report = DeadlockReport::default();
    let mut seen = StateSet::new();
    let mut dead_seen: BTreeSet<String> = BTreeSet::new();
    let start = lts.intern(Config::new(process.clone(), env.clone()));
    let mut frontier = vec![(start, Trace::empty(), 0usize)];
    seen.insert(start);

    while let Some((id, trace, internal_used)) = pop_front(&mut frontier) {
        report.states_explored += 1;
        let n = lts.steps_of(id)?.len();
        if n == 0 {
            let state = lts.state(id).process().to_string();
            if dead_seen.insert(state.clone()) {
                report.deadlocks.push(Deadlock {
                    trace: trace.clone(),
                    terminated: all_stop(lts.state(id).process()),
                    state,
                });
            }
            continue;
        }
        for k in 0..n {
            match lts.steps_of(id)?[k].clone() {
                CompiledStep::Visible(e, next) => {
                    if trace.len() < depth && seen.insert(next) {
                        frontier.push((next, trace.snoc(e), internal_used));
                    }
                }
                CompiledStep::Internal(next) => {
                    if internal_used < depth * 3 && seen.insert(next) {
                        frontier.push((next, trace.clone(), internal_used + 1));
                    }
                }
            }
        }
    }
    report.complete = true;
    Ok(report)
}

fn pop_front<T>(v: &mut Vec<T>) -> Option<T> {
    if v.is_empty() {
        None
    } else {
        Some(v.remove(0))
    }
}

/// True when the term is `STOP` up to network structure.
fn all_stop(p: &Process) -> bool {
    match p {
        Process::Stop => true,
        Process::Parallel { left, right, .. } => all_stop(left) && all_stop(right),
        Process::Hide { body, .. } => all_stop(body),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_lang::{examples, parse_definitions, parse_process};

    #[test]
    fn pipeline_is_deadlock_free() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let report =
            find_deadlocks(&defs, &uni, &Process::call("pipeline"), &Env::new(), 4).unwrap();
        assert!(report.deadlocks.is_empty());
        assert!(report.deadlock_free());
        assert!(report.states_explored > 1);
        assert!(report.complete);
    }

    #[test]
    fn mismatched_sync_values_deadlock_immediately() {
        let defs = parse_definitions(
            "left = w!1 -> STOP
             right = w?x:{2} -> STOP
             net = left || right",
        )
        .unwrap();
        let uni = Universe::new(3);
        let report = find_deadlocks(&defs, &uni, &Process::call("net"), &Env::new(), 3).unwrap();
        assert_eq!(report.deadlocks.len(), 1);
        let d = &report.deadlocks[0];
        assert!(d.trace.is_empty(), "witness should be <>: {}", d.trace);
        assert!(!d.terminated, "a jam, not termination");
        assert!(!report.deadlock_free());
    }

    #[test]
    fn termination_is_distinguished_from_deadlock() {
        let defs = parse_definitions("once = a!1 -> b!2 -> STOP").unwrap();
        let uni = Universe::new(2);
        let report = find_deadlocks(&defs, &uni, &Process::call("once"), &Env::new(), 4).unwrap();
        assert_eq!(report.deadlocks.len(), 1);
        assert!(report.deadlocks[0].terminated);
        assert!(report.deadlock_free());
        assert_eq!(report.deadlocks[0].trace.len(), 2);
    }

    #[test]
    fn section4_blind_spot_demonstrated() {
        // STOP | P and P denote the SAME trace set (§4) — but an
        // implementation that commits to the STOP branch deadlocks. Our
        // LTS gives `|` the union (initial-choice) semantics, matching
        // the model: the choice term itself therefore shows no deadlock…
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let choice = parse_process("STOP | copier").unwrap();
        let report = find_deadlocks(&defs, &uni, &choice, &Env::new(), 3).unwrap();
        assert!(report.deadlocks.is_empty());
        // …which is precisely the §4 complaint: neither the model nor
        // any tool built on it can see the STOP branch. The defect is a
        // property of the semantics, faithfully reproduced.
    }

    #[test]
    fn hidden_loop_networks_explore_within_budget() {
        // chan a; loop — only internal behaviour; search terminates and
        // finds no dead state (the loop always has its internal step).
        let defs = parse_definitions("lp = a!0 -> lp").unwrap();
        let uni = Universe::new(1);
        let hidden = parse_process("chan a; lp").unwrap();
        let report = find_deadlocks(&defs, &uni, &hidden, &Env::new(), 2).unwrap();
        assert!(report.deadlocks.is_empty());
    }

    #[test]
    fn compiled_search_matches_enumerative_reports() {
        let fixtures: Vec<(Definitions, &str)> = vec![
            (examples::pipeline(), "pipeline"),
            (
                parse_definitions(
                    "left = w!1 -> w!2 -> STOP
                     right = w?x:{1} -> w?y:{9} -> STOP
                     net = left || right",
                )
                .unwrap(),
                "net",
            ),
            (
                parse_definitions("once = a!1 -> b!2 -> STOP").unwrap(),
                "once",
            ),
        ];
        for (defs, name) in &fixtures {
            let uni = Universe::new(9);
            let p = Process::call(name);
            let a = find_deadlocks(defs, &uni, &p, &Env::new(), 4).unwrap();
            let b = find_deadlocks_compiled(defs, &uni, &p, &Env::new(), 4).unwrap();
            assert_eq!(a.states_explored, b.states_explored, "{name}");
            assert_eq!(a.complete, b.complete);
            assert_eq!(a.deadlocks.len(), b.deadlocks.len(), "{name}");
            for (x, y) in a.deadlocks.iter().zip(&b.deadlocks) {
                assert_eq!(x.trace, y.trace, "{name}");
                assert_eq!(x.state, y.state, "{name}");
                assert_eq!(x.terminated, y.terminated, "{name}");
            }
        }
    }

    #[test]
    fn partial_deadlock_after_progress() {
        // A network that works once and then jams: the second w value
        // mismatches.
        let defs = parse_definitions(
            "left = w!1 -> w!2 -> STOP
             right = w?x:{1} -> w?y:{9} -> STOP
             net = left || right",
        )
        .unwrap();
        let uni = Universe::new(9);
        let report = find_deadlocks(&defs, &uni, &Process::call("net"), &Env::new(), 4).unwrap();
        assert_eq!(report.deadlocks.len(), 1);
        let d = &report.deadlocks[0];
        assert_eq!(d.trace.len(), 1, "jams after the first exchange");
        assert!(!d.terminated);
    }
}
