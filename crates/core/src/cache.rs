//! Cross-request verification caching.
//!
//! The verification service (and anything else that answers repeated
//! queries over content-addressed inputs) keys results on the same
//! FNV-1a hashes the incremental [`AnalysisDb`](csp_analysis::AnalysisDb)
//! computes: a verdict is a pure function of the module source, the
//! universe/binding parameters, and the query, so a result computed once
//! can be replayed for every identical request. PR 3's interned events
//! and `Arc`-shared traces are what make the underlying structures cheap
//! to share; this module shares the *rendered* results, which is cheaper
//! still and trivially thread-safe.
//!
//! Two layers live here:
//!
//! * [`Lru`] — a small generic bounded least-recently-used map keyed by
//!   `u64` content hashes; eviction only, never invalidation (a content
//!   hash can't go stale);
//! * [`VerifyCache`] — an `Lru` of rendered result strings with atomic
//!   hit/miss accounting, the handle `csp serve` consults before doing
//!   any work.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

// The hashing itself lives in `csp_trace::hash` — the single shared
// FNV-1a definition every layer keys content on; re-exported here so
// existing `csp_core::cache::{content_hash, hash_field, HASH_SEED}`
// callers keep working.
pub use csp_trace::hash::{content_hash, hash_field, HASH_SEED};

/// A bounded least-recently-used map from `u64` content hashes to
/// values. Not thread-safe by itself (wrap in a mutex); kept separate so
/// callers can hold heterogeneous caches (rendered responses, pooled
/// analysis databases, parsed workbenches) with one eviction policy.
#[derive(Debug)]
pub struct Lru<V> {
    map: HashMap<u64, (u64, V)>,
    cap: usize,
    tick: u64,
}

impl<V> Lru<V> {
    /// An empty map evicting past `cap` entries (`cap` 0 disables
    /// caching entirely).
    pub fn new(cap: usize) -> Self {
        Lru {
            map: HashMap::new(),
            cap,
            tick: 0,
        }
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some((last, v)) => {
                *last = tick;
                Some(v)
            }
            None => None,
        }
    }

    /// Removes and returns a key's value (used by pools that check
    /// entries out for exclusive use and check them back in).
    pub fn take(&mut self, key: u64) -> Option<V> {
        self.map.remove(&key).map(|(_, v)| v)
    }

    /// Inserts a value, evicting the least-recently-used entry when the
    /// map would exceed its capacity.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, value));
        while self.map.len() > self.cap {
            let Some((&oldest, _)) = self.map.iter().min_by_key(|(_, (last, _))| *last) else {
                break;
            };
            self.map.remove(&oldest);
        }
    }
}

/// A shared, bounded cache of rendered verification results with atomic
/// hit/miss accounting. Cloning shares the cache.
#[derive(Debug, Clone)]
pub struct VerifyCache {
    inner: Arc<VerifyCacheInner>,
}

#[derive(Debug)]
struct VerifyCacheInner {
    lru: Mutex<Lru<Arc<str>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VerifyCache {
    /// A cache holding at most `cap` rendered results.
    pub fn new(cap: usize) -> Self {
        VerifyCache {
            inner: Arc::new(VerifyCacheInner {
                lru: Mutex::new(Lru::new(cap)),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// Looks up a rendered result, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<str>> {
        let found = self.inner.lru.lock().expect("cache lock").get(key).cloned();
        match &found {
            Some(_) => self.inner.hits.fetch_add(1, Relaxed),
            None => self.inner.misses.fetch_add(1, Relaxed),
        };
        found
    }

    /// Stores a rendered result under its content key. Concurrent
    /// misses may both compute and insert; last write wins, and both
    /// results are identical by construction (the key covers every
    /// input).
    pub fn insert(&self, key: u64, value: Arc<str>) {
        self.inner
            .lru
            .lock()
            .expect("cache lock")
            .insert(key, value);
    }

    /// Cached entries right now.
    pub fn len(&self) -> usize {
        self.inner.lru.lock().expect("cache lock").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from cache so far.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(1), Some(&"a")); // refresh 1
        lru.insert(3, "c"); // evicts 2
        assert_eq!(lru.get(2), None);
        assert_eq!(lru.get(1), Some(&"a"));
        assert_eq!(lru.get(3), Some(&"c"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut lru = Lru::new(0);
        lru.insert(1, "a");
        assert!(lru.is_empty());
        assert_eq!(lru.get(1), None);
    }

    #[test]
    fn verify_cache_counts_hits_and_misses() {
        let cache = VerifyCache::new(8);
        assert!(cache.get(42).is_none());
        cache.insert(42, Arc::from("result"));
        assert_eq!(cache.get(42).as_deref(), Some("result"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // Clones share the same store and counters.
        let other = cache.clone();
        assert_eq!(other.get(42).as_deref(), Some("result"));
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn hash_fields_do_not_collide_across_splits() {
        // ("ab","c") and ("a","bc") must key differently.
        let k1 = hash_field(hash_field(HASH_SEED, b"ab"), b"c");
        let k2 = hash_field(hash_field(HASH_SEED, b"a"), b"bc");
        assert_ne!(k1, k2);
        // And a single field agrees with nothing else by construction.
        assert_ne!(hash_field(HASH_SEED, b""), HASH_SEED);
    }
}
