//! A pool of parsed [`Workbench`]es keyed by content hash.
//!
//! Building a workbench from source costs a full parse plus universe
//! setup. A long-lived service answering many requests over the same
//! handful of modules should pay that once per distinct
//! `(source, parameters)` pair, not once per request — and because
//! several worker threads may hold the *same* module concurrently, the
//! pool keeps a small stack of clones per key: checkout pops one (or
//! builds afresh on a cold key), check-in pushes it back for the next
//! request. `Workbench` is immutable after construction in this
//! workflow, so a returned instance is as good as a new one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::workbench::Workbench;

/// How many idle clones of one key the pool retains; more concurrent
/// checkouts than this simply build extra instances that are dropped on
/// check-in once the shelf is full.
const PER_KEY_CAP: usize = 8;

/// A keyed pool of reusable workbenches. Thread-safe; keys are content
/// hashes of everything that went into construction (source text,
/// universe bounds, host bindings).
#[derive(Debug, Default)]
pub struct WorkbenchPool {
    shelves: Mutex<HashMap<u64, Vec<Workbench>>>,
    /// Distinct keys ever built (i.e. cold constructions).
    builds: AtomicU64,
    /// Checkouts served by a pooled instance.
    reuses: AtomicU64,
    /// Bound on the number of keys retained.
    key_cap: usize,
}

/// A checked-out workbench; return it with [`WorkbenchPool::checkin`]
/// when the request is done. (Not a guard type: handlers may decide not
/// to return instances that errored half-way through mutation.)
#[derive(Debug)]
pub struct PooledWorkbench {
    /// The workbench itself.
    pub wb: Workbench,
    /// The key it was checked out under.
    pub key: u64,
}

impl WorkbenchPool {
    /// An empty pool retaining at most `key_cap` distinct keys.
    pub fn new(key_cap: usize) -> Self {
        WorkbenchPool {
            shelves: Mutex::new(HashMap::new()),
            builds: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            key_cap: key_cap.max(1),
        }
    }

    /// Checks out a workbench for `key`, building one with `build` only
    /// when no pooled instance is available.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error on a cold key.
    pub fn checkout<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<Workbench, E>,
    ) -> Result<PooledWorkbench, E> {
        let pooled = self
            .shelves
            .lock()
            .expect("pool lock")
            .get_mut(&key)
            .and_then(Vec::pop);
        let wb = match pooled {
            Some(wb) => {
                self.reuses.fetch_add(1, Relaxed);
                wb
            }
            None => {
                self.builds.fetch_add(1, Relaxed);
                build()?
            }
        };
        Ok(PooledWorkbench { wb, key })
    }

    /// Returns a checked-out workbench to its shelf. When the pool holds
    /// more distinct keys than its cap, the fullest foreign shelf is
    /// dropped — a coarse but content-safe eviction (nothing cached can
    /// be stale; it can only be rebuilt).
    pub fn checkin(&self, pooled: PooledWorkbench) {
        let mut shelves = self.shelves.lock().expect("pool lock");
        let shelf = shelves.entry(pooled.key).or_default();
        if shelf.len() < PER_KEY_CAP {
            shelf.push(pooled.wb);
        }
        if shelves.len() > self.key_cap {
            if let Some(&victim) = shelves
                .iter()
                .filter(|(k, _)| **k != pooled.key)
                .max_by_key(|(_, v)| v.len())
                .map(|(k, _)| k)
            {
                shelves.remove(&victim);
            }
        }
    }

    /// Workbenches constructed from scratch so far.
    pub fn builds(&self) -> u64 {
        self.builds.load(Relaxed)
    }

    /// Checkouts served by a pooled instance so far.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> Result<Workbench, String> {
        let mut wb = Workbench::new();
        wb.define_source("p = c!0 -> p")
            .map_err(|e| e.to_string())?;
        Ok(wb)
    }

    #[test]
    fn checkout_builds_once_then_reuses() {
        let pool = WorkbenchPool::new(4);
        let a = pool.checkout(7, build).unwrap();
        assert_eq!((pool.builds(), pool.reuses()), (1, 0));
        pool.checkin(a);
        let b = pool.checkout(7, build).unwrap();
        assert_eq!((pool.builds(), pool.reuses()), (1, 1));
        assert!(b.wb.definitions().get("p").is_some());
    }

    #[test]
    fn concurrent_checkouts_build_extra_instances() {
        let pool = WorkbenchPool::new(4);
        let a = pool.checkout(7, build).unwrap();
        let b = pool.checkout(7, build).unwrap();
        assert_eq!(pool.builds(), 2);
        pool.checkin(a);
        pool.checkin(b);
        let _c = pool.checkout(7, build).unwrap();
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn build_errors_propagate() {
        let pool = WorkbenchPool::new(4);
        let r = pool.checkout(9, || Err::<Workbench, _>("boom".to_string()));
        assert_eq!(r.err(), Some("boom".to_string()));
    }

    #[test]
    fn key_cap_evicts_a_foreign_shelf() {
        let pool = WorkbenchPool::new(1);
        let a = pool.checkout(1, build).unwrap();
        pool.checkin(a);
        let b = pool.checkout(2, build).unwrap();
        pool.checkin(b); // evicts key 1's shelf
        let _again = pool.checkout(1, build).unwrap();
        assert_eq!(pool.builds(), 3, "key 1 had to rebuild after eviction");
    }
}
