//! The high-level [`Workbench`]: define processes, state invariants,
//! prove, model-check, execute, and cross-validate — one handle over the
//! whole reproduction.

use csp_analysis::{Confirmation, Diagnostic, LintCode, Linter};
use csp_assert::{Assertion, ChannelInfo, FuncTable};
use csp_lang::{
    parse_definitions_spanned, parse_module, ChanRef, Definition, Definitions, Env, ParseError,
    Process, SourceMap,
};
use csp_obs::Collector;
use csp_proof::{check_with, CheckReport, Context, Judgement, Proof, ProofError};
use csp_runtime::{
    check_conformance_with_engine, ConformanceReport, Executor, RunOptions, RunResult,
};
use csp_semantics::{fixpoint_with, CompiledLts, Engine, FixpointRun, Lts, Semantics, Universe};
use csp_trace::{Channel, ChannelSet};
use csp_trace::{TraceSet, Value};
use csp_verify::{
    fault_conformance, find_deadlocks, find_deadlocks_compiled, DeadlockReport, FaultConformance,
    FaultSweep, SatChecker, SatResult,
};

use crate::options::{ConformanceOptions, SatOptions};
use crate::session::Session;

/// Visible-event bound for the deadlock search that vets CSP010
/// findings. Offer mismatches stick at the very first synchronisation,
/// so a shallow bound reproduces them; it keeps linting interactive.
const CSP010_CONFIRM_DEPTH: usize = 6;

/// Errors surfaced by the workbench.
#[derive(Debug)]
pub enum WorkbenchError {
    /// Process-definition parse failure.
    Parse(csp_lang::ParseError),
    /// Assertion parse failure.
    AssertParse(csp_assert::AssertParseError),
    /// Evaluation failure (undefined names, unbound variables, …).
    Eval(csp_lang::EvalError),
    /// Assertion evaluation failure.
    Assert(csp_assert::AssertError),
    /// Proof failure.
    Proof(ProofError),
    /// Runtime failure.
    Run(csp_runtime::RunError),
}

impl std::fmt::Display for WorkbenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkbenchError::Parse(e) => e.fmt(f),
            WorkbenchError::AssertParse(e) => e.fmt(f),
            WorkbenchError::Eval(e) => e.fmt(f),
            WorkbenchError::Assert(e) => e.fmt(f),
            WorkbenchError::Proof(e) => e.fmt(f),
            WorkbenchError::Run(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for WorkbenchError {}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for WorkbenchError {
            fn from(e: $ty) -> Self {
                WorkbenchError::$variant(e)
            }
        }
    };
}

from_err!(Parse, csp_lang::ParseError);
from_err!(AssertParse, csp_assert::AssertParseError);
from_err!(Eval, csp_lang::EvalError);
from_err!(Assert, csp_assert::AssertError);
from_err!(Proof, ProofError);
from_err!(Run, csp_runtime::RunError);

/// A self-contained workspace: definitions + universe + host environment
/// + sequence functions.
///
/// # Examples
///
/// ```
/// use csp_core::Workbench;
///
/// let mut wb = Workbench::new();
/// wb.define_source(
///     "copier = input?x:NAT -> wire!x -> copier
///      recopier = wire?y:NAT -> output!y -> recopier
///      pipeline = chan wire; (copier || recopier)",
/// ).unwrap();
/// // Model-check an invariant stated in the paper's notation:
/// let verdict = wb.check_sat("pipeline", "output <= input", 3).unwrap();
/// assert!(verdict.holds());
/// ```
#[derive(Debug, Clone)]
pub struct Workbench {
    defs: Definitions,
    source_map: SourceMap,
    universe: Universe,
    env: Env,
    funcs: FuncTable,
    extra_channels: Vec<String>,
    extra_arrays: Vec<String>,
}

impl Default for Workbench {
    fn default() -> Self {
        Self::new()
    }
}

impl Workbench {
    /// An empty workbench with the small default universe and the
    /// built-in sequence functions.
    pub fn new() -> Self {
        Workbench {
            defs: Definitions::new(),
            source_map: SourceMap::new(),
            universe: Universe::small(),
            env: Env::new(),
            funcs: FuncTable::with_builtins(),
            extra_channels: Vec::new(),
            extra_arrays: Vec::new(),
        }
    }

    /// Replaces the enumeration universe.
    #[must_use]
    pub fn with_universe(mut self, universe: Universe) -> Self {
        self.universe = universe;
        self
    }

    /// The current definitions.
    pub fn definitions(&self) -> &Definitions {
        &self.defs
    }

    /// The current universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The host environment.
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Parses and adds equations written in the paper's notation.
    ///
    /// # Errors
    ///
    /// Returns the parse error on malformed input; on success earlier
    /// definitions with the same names are replaced.
    pub fn define_source(&mut self, src: &str) -> Result<(), WorkbenchError> {
        let (defs, spans) = parse_definitions_spanned(src)?;
        self.defs.extend_with(defs);
        self.source_map.extend_with(spans);
        Ok(())
    }

    /// Parses equations with error recovery: definitions that parse are
    /// added (replacing earlier ones with the same names) even when
    /// others are broken, and the parse errors come back as a value
    /// instead of aborting the whole module. The defining equation of a
    /// broken body is kept as an inert error hole, so linting and
    /// cross-definition analyses still see it.
    ///
    /// `csp lint` uses this so one typo at the top of a file cannot
    /// silence every diagnostic below it;
    /// [`define_source`](Self::define_source) remains the strict
    /// all-or-nothing entry point for verification, where an error hole
    /// would be unsound.
    pub fn define_source_lenient(&mut self, src: &str) -> Vec<ParseError> {
        let module = parse_module(src);
        self.defs.extend_with(module.defs);
        self.source_map.extend_with(module.map);
        module.errors
    }

    /// The source spans recorded by [`define_source`](Self::define_source)
    /// (definitions added via [`define`](Self::define) have none).
    pub fn source_map(&self) -> &SourceMap {
        &self.source_map
    }

    /// Adds one pre-built equation.
    pub fn define(&mut self, def: Definition) {
        self.defs.define(def);
    }

    /// Binds a host constant (visible to processes and assertions).
    pub fn bind(&mut self, name: &str, value: Value) {
        self.env.bind_mut(name, value);
    }

    /// Binds the cells of a constant vector `name[1]`, `name[2]`, … —
    /// e.g. the multiplier's `v`.
    pub fn bind_vector(&mut self, name: &str, values: &[i64]) {
        for (i, &v) in values.iter().enumerate() {
            self.env
                .bind_mut(&format!("{name}[{}]", i + 1), Value::Int(v));
        }
    }

    /// Declares channel names that assertions may mention even though no
    /// current definition communicates on them (e.g. when specifying a
    /// process that deliberately does nothing, §4's STOP discussion).
    pub fn declare_channels<'a, I: IntoIterator<Item = &'a str>>(&mut self, names: I) {
        self.extra_channels
            .extend(names.into_iter().map(String::from));
    }

    /// Declares channel-array names for assertion parsing.
    pub fn declare_channel_arrays<'a, I: IntoIterator<Item = &'a str>>(&mut self, names: I) {
        self.extra_arrays
            .extend(names.into_iter().map(String::from));
    }

    /// Opens an observed [`Session`] over this workbench: the same
    /// verification entry points, with every operation recorded into one
    /// [`Collector`] (spans, counters, trace-operation deltas).
    pub fn session(&self) -> Session<'_> {
        self.session_with(Collector::new())
    }

    /// Opens a [`Session`] recording into the given collector — pass
    /// [`Collector::disabled`] for an observation-free session, or a
    /// shared collector to aggregate several sessions into one stream.
    pub fn session_with(&self, collector: Collector) -> Session<'_> {
        Session::new(self, collector)
    }

    /// Runs every static-analysis pass over the current definitions:
    /// name resolution (`CSP001`–`CSP003`), guardedness through mutual
    /// recursion (`CSP004`), declared-alphabet coverage (`CSP005`),
    /// channel direction races (`CSP006`), hiding hygiene (`CSP007`),
    /// and the §4 offer-mismatch heuristic (`CSP010`). Diagnostics carry
    /// spans for definitions added through
    /// [`define_source`](Self::define_source).
    ///
    /// Every `CSP010` finding is cross-checked against the bounded LTS
    /// deadlock search: a reproduced stuck state upgrades the finding to
    /// `confirmed` (with the witness trace), otherwise it is annotated
    /// `heuristic`.
    pub fn lint(&self) -> Vec<Diagnostic> {
        let mut diags = self.linter().run();
        for d in &mut diags {
            if d.code == LintCode::OfferMismatch {
                d.confirmation = Some(self.confirm_offer_mismatch(d.def.as_deref()));
            }
        }
        diags
    }

    /// Vets one CSP010 finding semantically. Search failures (array
    /// definitions without a concrete subscript, unbound hosts) leave the
    /// finding a heuristic rather than suppressing it.
    fn confirm_offer_mismatch(&self, def: Option<&str>) -> Confirmation {
        let Some(name) = def else {
            return Confirmation::Heuristic;
        };
        match self.deadlocks(name, CSP010_CONFIRM_DEPTH) {
            Ok(report) => match report.deadlocks.iter().find(|dl| !dl.terminated) {
                Some(dl) => Confirmation::Confirmed {
                    witness: dl.trace.to_string(),
                },
                None => Confirmation::Heuristic,
            },
            Err(_) => Confirmation::Heuristic,
        }
    }

    /// Lints `name sat assertion-source` for scope problems: channels
    /// outside the process's alphabet (`CSP008`) or hidden inside it
    /// (`CSP009`). Channels declared via
    /// [`declare_channels`](Self::declare_channels) are always in scope.
    ///
    /// # Errors
    ///
    /// Fails only if the assertion source does not parse.
    pub fn lint_assertion(
        &self,
        name: &str,
        assertion_src: &str,
    ) -> Result<Vec<Diagnostic>, WorkbenchError> {
        let assertion = self.assertion(assertion_src)?;
        let mut allowed = ChannelSet::new();
        for c in &self.extra_channels {
            allowed.insert(Channel::simple(c));
        }
        let process = Process::call(name);
        Ok(self
            .linter()
            .lint_assertion(name, &process, &assertion, &allowed))
    }

    fn linter(&self) -> Linter<'_> {
        Linter::new(&self.defs)
            .with_env(&self.env)
            .with_spans(&self.source_map)
    }

    /// Derives the channel classification (plain names vs. arrays) from
    /// the definitions, for assertion parsing.
    pub fn channel_info(&self) -> ChannelInfo {
        let mut plain = Vec::new();
        let mut arrays: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for def in self.defs.iter() {
            collect_chanrefs(def.body(), &mut |c: &ChanRef| {
                if c.indices().is_empty() {
                    plain.push(c.base().to_string());
                } else {
                    let e = arrays.entry(c.base().to_string()).or_insert(0);
                    *e = (*e).max(c.indices().len());
                }
            });
        }
        plain.extend(self.extra_channels.iter().cloned());
        for a in &self.extra_arrays {
            arrays.entry(a.clone()).or_insert(1);
        }
        let funcs: Vec<&str> = self.funcs.names().collect();
        let mut info = ChannelInfo::new()
            .with_channels(plain.iter().map(String::as_str))
            .with_funcs(funcs);
        for (name, arity) in &arrays {
            info = info.with_array_of_arity(name, *arity);
        }
        info
    }

    /// Parses an assertion in the context of the current definitions.
    ///
    /// # Errors
    ///
    /// Returns the assertion parser's error.
    pub fn assertion(&self, src: &str) -> Result<Assertion, WorkbenchError> {
        Ok(csp_assert::parse_assertion(src, &self.channel_info())?)
    }

    /// Builds an online-monitor spec from assertion sources (empty =
    /// trace-membership checking only), for [`crate::RunOptions`]'s
    /// `monitor` field.
    ///
    /// # Errors
    ///
    /// Fails if any assertion does not parse against the session's
    /// channel vocabulary.
    pub fn monitor_spec<'s>(
        &self,
        invariants: impl IntoIterator<Item = &'s str>,
    ) -> Result<csp_runtime::MonitorSpec, WorkbenchError> {
        let mut spec = csp_runtime::MonitorSpec::new();
        for src in invariants {
            spec = spec.with_assertion(self.assertion(src)?);
        }
        Ok(spec)
    }

    /// The traces of a named process to the given depth (operational
    /// exploration; agrees with the denotational semantics).
    ///
    /// # Errors
    ///
    /// Fails on undefined names or evaluation errors.
    pub fn traces(&self, name: &str, depth: usize) -> Result<TraceSet, WorkbenchError> {
        let lts = Lts::new(&self.defs, &self.universe);
        Ok(lts.traces(&lts.initial(name, &self.env), depth)?)
    }

    /// The denotational trace set (reference implementation; exponential
    /// for parallel compositions).
    ///
    /// # Errors
    ///
    /// Fails on undefined names or evaluation errors.
    pub fn denote(&self, name: &str, depth: usize) -> Result<TraceSet, WorkbenchError> {
        let sem = Semantics::new(&self.defs, &self.universe);
        Ok(sem.denote_name(name, &self.env, depth)?)
    }

    /// Bounded model checking of `name sat assertion`. Accepts a bare
    /// depth or a full [`SatOptions`] bundle.
    ///
    /// # Errors
    ///
    /// Fails on parse or evaluation errors (a counterexample is a
    /// successful result, not an error).
    pub fn check_sat(
        &self,
        name: &str,
        assertion_src: &str,
        opts: impl Into<SatOptions>,
    ) -> Result<SatResult, WorkbenchError> {
        self.check_sat_with(name, assertion_src, &opts.into(), &Collector::disabled())
    }

    pub(crate) fn check_sat_with(
        &self,
        name: &str,
        assertion_src: &str,
        opts: &SatOptions,
        collector: &Collector,
    ) -> Result<SatResult, WorkbenchError> {
        let assertion = self.assertion(assertion_src)?;
        let checker = SatChecker::new(&self.defs, &self.universe)
            .with_env(self.env.clone())
            .with_funcs(self.funcs.clone())
            .with_internal_budget_factor(opts.internal_budget_factor)
            .with_engine(opts.engine)
            .with_collector(collector.clone());
        Ok(checker.check_name(name, &assertion, opts.depth)?)
    }

    /// Checks a proof tree against a goal with this workbench's
    /// definitions and universe.
    ///
    /// # Errors
    ///
    /// Returns the proof checker's error on an invalid derivation.
    pub fn prove(&self, goal: &Judgement, proof: &Proof) -> Result<CheckReport, WorkbenchError> {
        self.prove_with(goal, proof, &Collector::disabled())
    }

    pub(crate) fn prove_with(
        &self,
        goal: &Judgement,
        proof: &Proof,
        collector: &Collector,
    ) -> Result<CheckReport, WorkbenchError> {
        let mut ctx = Context::new(self.defs.clone(), self.universe.clone());
        ctx.env = self.env.clone();
        ctx.funcs = self.funcs.clone();
        Ok(check_with(&ctx, goal, proof, collector)?)
    }

    /// Executes the named process as a concurrent network.
    ///
    /// # Errors
    ///
    /// Fails on non-static networks or evaluation errors.
    pub fn run(&self, name: &str, opts: RunOptions) -> Result<RunResult, WorkbenchError> {
        let exec = Executor::new(&self.defs, &self.universe);
        Ok(exec.run_name(name, &self.env, opts)?)
    }

    /// Verifies a recorded run against the semantics and a list of
    /// invariants. Accepts a slice of invariant sources or a full
    /// [`ConformanceOptions`] bundle.
    ///
    /// # Errors
    ///
    /// Fails on parse or evaluation errors.
    pub fn conformance(
        &self,
        name: &str,
        result: &RunResult,
        opts: impl Into<ConformanceOptions>,
    ) -> Result<ConformanceReport, WorkbenchError> {
        let opts = opts.into();
        let invariants = opts
            .invariants
            .iter()
            .map(|s| self.assertion(s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(check_conformance_with_engine(
            &Process::call(name),
            &self.env,
            &self.defs,
            &self.universe,
            &result.visible,
            &invariants,
            opts.replay_depth.unwrap_or(result.full.len().max(8)),
            opts.engine,
        )?)
    }

    /// Sweeps the named network over seeds × fault plans and checks
    /// that every degraded run still conforms: its visible trace is
    /// admitted by the semantics and every invariant (assertion syntax)
    /// holds on every prefix. The empirical form of the §4 observation
    /// that fail-stop faults only *remove* behaviour.
    ///
    /// # Errors
    ///
    /// Fails on invariant parse errors, non-static networks, fault plans
    /// naming unknown components, or evaluation errors during replay.
    pub fn fault_conformance(
        &self,
        name: &str,
        opts: impl Into<ConformanceOptions>,
        sweep: &FaultSweep,
    ) -> Result<FaultConformance, WorkbenchError> {
        let opts = opts.into();
        let invariants = opts
            .invariants
            .iter()
            .map(|s| self.assertion(s))
            .collect::<Result<Vec<_>, _>>()?;
        fault_conformance(
            &Process::call(name),
            &self.env,
            &self.defs,
            &self.universe,
            &invariants,
            sweep,
        )
        .map_err(|e| match e {
            csp_verify::FaultConfError::Run(e) => WorkbenchError::Run(e),
            csp_verify::FaultConfError::Eval(e) => WorkbenchError::Eval(e),
        })
    }

    /// Synthesises and checks a joint-recursion proof for the given
    /// `(name, invariant-source)` specs, concluding the first one — the
    /// automated form of the paper's proof discipline (see
    /// `csp_proof::synthesize`).
    ///
    /// # Errors
    ///
    /// Fails if an invariant does not parse, synthesis falls outside the
    /// sequential fragment, or the synthesised proof does not check
    /// (i.e. the invariants are not inductive).
    pub fn prove_auto(&self, specs: &[(&str, &str)]) -> Result<CheckReport, WorkbenchError> {
        self.prove_auto_with(specs, &Collector::disabled())
    }

    pub(crate) fn prove_auto_with(
        &self,
        specs: &[(&str, &str)],
        collector: &Collector,
    ) -> Result<CheckReport, WorkbenchError> {
        let parsed: Vec<(String, Assertion)> = specs
            .iter()
            .map(|(n, src)| Ok((n.to_string(), self.assertion(src)?)))
            .collect::<Result<_, WorkbenchError>>()?;
        let mut ctx = Context::new(self.defs.clone(), self.universe.clone());
        ctx.env = self.env.clone();
        ctx.funcs = self.funcs.clone();
        let proof = csp_proof::synthesize(&ctx, &parsed, 0)
            .map_err(|e| WorkbenchError::Proof(ProofError::BadRecursion(e.to_string())))?;
        let goal = csp_proof::spec_goal(&ctx, &parsed[0])?;
        Ok(check_with(&ctx, &goal, &proof, collector)?)
    }

    /// Bounded deadlock search over the operational semantics — the
    /// analysis §4 says the trace model cannot express. Accepts a bare
    /// depth or a [`SatOptions`] bundle (whose `engine` selects the
    /// backend; both produce the same report).
    ///
    /// # Errors
    ///
    /// Fails on undefined names or evaluation errors.
    pub fn deadlocks(
        &self,
        name: &str,
        opts: impl Into<SatOptions>,
    ) -> Result<DeadlockReport, WorkbenchError> {
        let opts = opts.into();
        let process = Process::call(name);
        let report = match opts.engine.resolve(&self.defs, &process) {
            Engine::Compiled => find_deadlocks_compiled(
                &self.defs,
                &self.universe,
                &process,
                &self.env,
                opts.depth,
            )?,
            _ => find_deadlocks(&self.defs, &self.universe, &process, &self.env, opts.depth)?,
        };
        Ok(report)
    }

    /// Bounded trace refinement: every behaviour of `implementation` is
    /// a behaviour of `specification`, up to the exploration depth
    /// (a bare depth or a [`SatOptions`] bundle). Returns the first
    /// counterexample trace on failure.
    ///
    /// With the compiled engine the check runs as a subset construction
    /// over the interned transition graph — nothing is materialised; the
    /// enumerative engine compares the explicit trace sets.
    ///
    /// # Errors
    ///
    /// Fails on undefined names or evaluation errors.
    pub fn refines(
        &self,
        implementation: &str,
        specification: &str,
        opts: impl Into<SatOptions>,
    ) -> Result<Result<(), csp_trace::Trace>, WorkbenchError> {
        let opts = opts.into();
        let depth = opts.depth;
        let impl_p = Process::call(implementation);
        let spec_p = Process::call(specification);
        // Either side being a network is enough to prefer the compiled
        // walk: the product construction pays off on whichever side has
        // confluent interleavings.
        let engine = match opts.engine {
            Engine::Auto => {
                if opts.engine.resolve(&self.defs, &impl_p) == Engine::Compiled
                    || opts.engine.resolve(&self.defs, &spec_p) == Engine::Compiled
                {
                    Engine::Compiled
                } else {
                    Engine::Enumerative
                }
            }
            e => e,
        };
        if engine == Engine::Compiled {
            let mut lts = CompiledLts::new(&self.defs, &self.universe);
            let i = lts.start(implementation, &self.env);
            let s = lts.start(specification, &self.env);
            return Ok(lts.refines(i, s, depth, depth * opts.internal_budget_factor)?);
        }
        let lts = csp_semantics::Lts::new(&self.defs, &self.universe);
        let impl_ts = lts.traces(&lts.initial(implementation, &self.env), depth)?;
        let spec_ts = lts.traces(&lts.initial(specification, &self.env), depth)?;
        Ok(csp_semantics::refines(&impl_ts, &spec_ts))
    }

    /// Runs the paper's fixpoint construction (§3.3) over all current
    /// definitions.
    ///
    /// # Errors
    ///
    /// Fails on evaluation errors while iterating.
    pub fn fixpoint(&self, depth: usize, max_iters: usize) -> Result<FixpointRun, WorkbenchError> {
        self.fixpoint_with(depth, max_iters, &Collector::disabled())
    }

    pub(crate) fn fixpoint_with(
        &self,
        depth: usize,
        max_iters: usize,
        collector: &Collector,
    ) -> Result<FixpointRun, WorkbenchError> {
        Ok(fixpoint_with(
            &self.defs,
            &self.universe,
            &self.env,
            depth,
            max_iters,
            collector,
        )?)
    }
}

fn collect_chanrefs(p: &Process, f: &mut impl FnMut(&ChanRef)) {
    match p {
        Process::Stop | Process::Call { .. } | Process::Error(_) => {}
        Process::Output { chan, then, .. } => {
            f(chan);
            collect_chanrefs(then, f);
        }
        Process::Input { chan, then, .. } => {
            f(chan);
            collect_chanrefs(then, f);
        }
        Process::Choice(a, b) => {
            collect_chanrefs(a, f);
            collect_chanrefs(b, f);
        }
        Process::Parallel { left, right, .. } => {
            collect_chanrefs(left, f);
            collect_chanrefs(right, f);
        }
        Process::Hide { channels, body } => {
            for c in channels {
                f(c);
            }
            collect_chanrefs(body, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_runtime::Scheduler;

    fn pipeline_wb() -> Workbench {
        let mut wb = Workbench::new().with_universe(Universe::new(1));
        wb.define_source(csp_lang::examples::PIPELINE_SRC).unwrap();
        wb
    }

    #[test]
    fn define_check_run_conform_cycle() {
        let wb = pipeline_wb();
        assert!(wb.lint().is_empty());
        // Model check.
        assert!(wb
            .check_sat("pipeline", "output <= input", 3)
            .unwrap()
            .holds());
        // Execute.
        let res = wb
            .run(
                "pipeline",
                RunOptions {
                    max_steps: 20,
                    scheduler: Scheduler::seeded(2),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        // Conform.
        let report = wb
            .conformance("pipeline", &res, ["output <= input"])
            .unwrap();
        assert!(report.conforms());
    }

    #[test]
    fn fault_sweep_through_workbench() {
        use csp_runtime::FaultPlan;
        let wb = pipeline_wb();
        let sweep = FaultSweep::new(
            [1, 2],
            [FaultPlan::none(), FaultPlan::none().crash("copier", 3)],
        )
        .with_max_steps(16);
        let result = wb
            .fault_conformance("pipeline", ["output <= input"], &sweep)
            .unwrap();
        assert_eq!(result.runs.len(), 4);
        assert!(result.all_conformant(), "{:?}", result.violations());
    }

    #[test]
    fn assertion_parsing_uses_definition_channels() {
        let wb = pipeline_wb();
        let a = wb.assertion("wire <= input").unwrap();
        assert_eq!(a.to_string(), "wire <= input");
    }

    #[test]
    fn channel_info_classifies_arrays() {
        let mut wb = Workbench::new();
        wb.define_source(csp_lang::examples::MULTIPLIER_SRC)
            .unwrap();
        wb.bind_vector("v", &[1, 2, 3]);
        let a = wb
            .assertion("forall i:NAT. 1 <= i and i <= #output => output[i] == v[1]*row[1][i]")
            .unwrap();
        assert!(a.to_string().contains("row[1][i]"));
    }

    #[test]
    fn prove_through_workbench() {
        use csp_assert::{Assertion, STerm};
        let wb = pipeline_wb();
        let inv = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
        let goal = Judgement::sat(Process::call("copier"), inv.clone());
        let proof = Proof::recursion(
            "copier",
            inv.clone(),
            Proof::input(
                "v",
                Proof::output(Proof::consequence(inv, Proof::Hypothesis)),
            ),
        );
        let report = wb.prove(&goal, &proof).unwrap();
        assert!(report.rule_count() >= 4);
    }

    #[test]
    fn traces_and_denote_agree() {
        let wb = pipeline_wb();
        let a = wb.traces("copier", 4).unwrap();
        let b = wb.denote("copier", 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fixpoint_through_workbench() {
        let wb = pipeline_wb();
        let run = wb.fixpoint(4, 16).unwrap();
        assert!(run.converged_at.is_some());
    }

    #[test]
    fn validation_reports_missing_names() {
        let mut wb = Workbench::new();
        wb.define_source("p = c!0 -> ghost").unwrap();
        // The linter reports the undefined call as CSP001, with the call
        // site's span (this subsumes the removed `validate()` shim).
        let diags = wb.lint();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code.code(), "CSP001");
        let span = diags[0].span.expect("span from define_source");
        assert_eq!((span.line, span.column), (1, 12));
    }

    #[test]
    fn lint_assertion_flags_scope_problems() {
        let wb = pipeline_wb();
        // wire is hidden inside pipeline: CSP009.
        let diags = wb.lint_assertion("pipeline", "wire <= input").unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code.code(), "CSP009");
        // A misspelt channel is outside the alphabet: CSP008 — but only
        // when parseable as a channel, so declare it.
        let mut typo = pipeline_wb();
        typo.declare_channels(["outputt"]);
        let diags = typo.lint_assertion("pipeline", "outputt <= input").unwrap();
        // declare_channels marks it allowed, so explicitly-declared extra
        // channels stay clean:
        assert!(diags.is_empty());
        // In-scope assertions are clean.
        assert!(wb
            .lint_assertion("pipeline", "output <= input")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn lint_reports_composition_findings_with_spans() {
        let mut wb = Workbench::new();
        wb.define_source("w1 = c!1 -> w1\nw2 = c!2 -> w2\nnet = w1 || w2")
            .unwrap();
        let diags = wb.lint();
        assert!(diags
            .iter()
            .any(|d| d.code.code() == "CSP006" && d.span.is_some()));
    }

    #[test]
    fn csp010_findings_are_vetted_against_deadlock_search() {
        // The mismatch is real: the bounded search reproduces the stuck
        // state, so the finding is confirmed and carries a witness.
        let mut wb = Workbench::new();
        wb.define_source("p = a!1 -> STOP || a?x:{2,3} -> STOP")
            .unwrap();
        let diags = wb.lint();
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::OfferMismatch)
            .expect("CSP010 fires");
        assert!(
            matches!(d.confirmation, Some(Confirmation::Confirmed { .. })),
            "{d:?}"
        );
        let json = d.to_json();
        assert!(json.contains("\"confirmation\":\"confirmed\""), "{json}");
        assert!(json.contains("\"witness\""), "{json}");

        // Inside an array definition the search cannot run (no concrete
        // subscript), so the finding stays annotated as heuristic.
        let mut wb = Workbench::new();
        wb.define_source("q[i:0..1] = a!1 -> STOP || a?x:{2,3} -> STOP")
            .unwrap();
        let diags = wb.lint();
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::OfferMismatch)
            .expect("CSP010 fires in array definition");
        assert_eq!(d.confirmation, Some(Confirmation::Heuristic), "{d:?}");
        assert!(d.to_json().contains("\"confirmation\":\"heuristic\""));

        // Clean networks carry no confirmation field at all.
        let wb = pipeline_wb();
        assert!(wb.lint().iter().all(|d| d.confirmation.is_none()));
    }

    #[test]
    fn counterexamples_are_reported_not_errors() {
        let wb = pipeline_wb();
        let verdict = wb.check_sat("copier", "input <= wire", 3).unwrap();
        assert!(!verdict.holds());
    }

    #[test]
    fn prove_auto_synthesises_paper_proofs() {
        let wb = pipeline_wb();
        let report = wb
            .prove_auto(&[("copier", "wire <= input")])
            .expect("auto proof of copier");
        assert!(report.rule_count() >= 4);
        // The joint Table-1 pair through the high-level API:
        let mut pwb = Workbench::new()
            .with_universe(Universe::new(1).with_named("M", [Value::nat(0), Value::nat(1)]));
        pwb.define_source(csp_lang::examples::PROTOCOL_SRC).unwrap();
        let report = pwb
            .prove_auto(&[("sender", "f(wire) <= input"), ("q", "f(wire) <= x^input")])
            .expect("auto Table 1");
        assert!(report.rule_count() >= 9);
    }

    #[test]
    fn prove_auto_rejects_non_inductive_invariants() {
        let wb = pipeline_wb();
        assert!(wb.prove_auto(&[("copier", "input <= wire")]).is_err());
    }

    #[test]
    fn deadlock_search_through_workbench() {
        let wb = pipeline_wb();
        let report = wb.deadlocks("pipeline", 3).unwrap();
        assert!(report.deadlocks.is_empty());
        let mut jammed = Workbench::new().with_universe(Universe::new(3));
        jammed
            .define_source("left = w!1 -> STOP\nright = w?x:{2} -> STOP\nnet = left || right")
            .unwrap();
        let report = jammed.deadlocks("net", 3).unwrap();
        assert!(!report.deadlock_free());
    }

    #[test]
    fn engine_selection_through_workbench() {
        let wb = pipeline_wb();
        for engine in [Engine::Enumerative, Engine::Compiled] {
            let v = wb
                .check_sat(
                    "pipeline",
                    "output <= input",
                    SatOptions::from(3).with_engine(engine),
                )
                .unwrap();
            assert!(v.holds());
            assert_eq!(v.engine(), engine);
        }
        // Auto resolves to compiled for the hidden-wire network and to
        // the enumerative oracle for a lone sequential component.
        let v = wb.check_sat("pipeline", "output <= input", 3).unwrap();
        assert_eq!(v.engine(), Engine::Compiled);
        let v = wb.check_sat("copier", "wire <= input", 3).unwrap();
        assert_eq!(v.engine(), Engine::Enumerative);
        // Deadlock search: identical reports from both backends.
        let a = wb
            .deadlocks(
                "pipeline",
                SatOptions::from(3).with_engine(Engine::Enumerative),
            )
            .unwrap();
        let b = wb
            .deadlocks(
                "pipeline",
                SatOptions::from(3).with_engine(Engine::Compiled),
            )
            .unwrap();
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.deadlocks.len(), b.deadlocks.len());
    }

    #[test]
    fn compiled_refinement_through_workbench() {
        let mut wb = Workbench::new().with_universe(Universe::new(1));
        wb.define_source(
            "spec = a?x:NAT -> spec | b!0 -> spec
             impl = a?x:NAT -> impl
             bad = c!9 -> bad",
        )
        .unwrap();
        let opts = SatOptions::from(3).with_engine(Engine::Compiled);
        assert!(wb.refines("impl", "spec", opts.clone()).unwrap().is_ok());
        let cex = wb.refines("bad", "spec", opts).unwrap().unwrap_err();
        assert_eq!(cex.len(), 1);
    }

    #[test]
    fn refinement_through_workbench() {
        let mut wb = Workbench::new().with_universe(Universe::new(1));
        wb.define_source(
            "spec = a?x:NAT -> spec | b!0 -> spec
             impl = a?x:NAT -> impl
             bad = c!9 -> bad",
        )
        .unwrap();
        assert!(wb.refines("impl", "spec", 3).unwrap().is_ok());
        let cex = wb.refines("bad", "spec", 3).unwrap().unwrap_err();
        assert_eq!(cex.len(), 1);
    }
}
