//! An observed [`Session`] over a [`Workbench`]: the same verification
//! entry points, with every operation recorded into one shared
//! [`Collector`].
//!
//! A session is the observability counterpart of the workbench's
//! stateless methods. Opening one (via [`Workbench::session`]) pins a
//! collector and snapshots the process-global trace-operation counters
//! ([`csp_trace::OpStats`]); every call made through the session then
//! feeds the same span stream, and [`Session::metrics`] folds three
//! sources into one [`MetricsSnapshot`]:
//!
//! * the collector's own counters, histograms, and span timings;
//! * the per-result tallies each call already returns (via
//!   [`Metered`](csp_obs::Metered));
//! * the `trace.*` deltas of the global interner/operator counters
//!   since the session opened.

use csp_obs::{Collector, MetricsSnapshot, SpanRecord};
use csp_proof::{CheckReport, Judgement, Proof};
use csp_runtime::{ConformanceReport, RunOptions, RunResult};
use csp_semantics::FixpointRun;
use csp_trace::OpStats;
use csp_verify::{FaultConformance, FaultSweep, SatResult};

use crate::options::{ConformanceOptions, SatOptions};
use crate::workbench::{Workbench, WorkbenchError};

/// One observed verification session. Created by
/// [`Workbench::session`]; borrows the workbench immutably, so several
/// sessions can coexist (sharing or separating their collectors).
///
/// ```
/// use csp_core::Workbench;
///
/// let mut wb = Workbench::new();
/// wb.define_source(
///     "copier = input?x:NAT -> wire!x -> copier
///      recopier = wire?y:NAT -> output!y -> recopier
///      pipeline = chan wire; (copier || recopier)",
/// ).unwrap();
/// let session = wb.session();
/// assert!(session.check_sat("pipeline", "output <= input", 3).unwrap().holds());
/// let metrics = session.metrics();
/// assert!(metrics.counter("satcheck.moments") > 0);
/// assert!(metrics.spans.contains_key("satcheck"));
/// ```
#[derive(Debug)]
pub struct Session<'wb> {
    wb: &'wb Workbench,
    collector: Collector,
    baseline: OpStats,
}

impl<'wb> Session<'wb> {
    pub(crate) fn new(wb: &'wb Workbench, collector: Collector) -> Self {
        Session {
            wb,
            collector,
            baseline: OpStats::snapshot(),
        }
    }

    /// The workbench this session observes.
    pub fn workbench(&self) -> &'wb Workbench {
        self.wb
    }

    /// The session's collector handle (cloning shares the stream).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Bounded model checking of `name sat assertion`, recorded under
    /// the `satcheck` span family.
    ///
    /// # Errors
    ///
    /// As for [`Workbench::check_sat`].
    pub fn check_sat(
        &self,
        name: &str,
        assertion_src: &str,
        opts: impl Into<SatOptions>,
    ) -> Result<SatResult, WorkbenchError> {
        self.wb
            .check_sat_with(name, assertion_src, &opts.into(), &self.collector)
    }

    /// Checks a proof tree, recording one `proof.rule` span per rule
    /// application.
    ///
    /// # Errors
    ///
    /// As for [`Workbench::prove`].
    pub fn prove(&self, goal: &Judgement, proof: &Proof) -> Result<CheckReport, WorkbenchError> {
        self.wb.prove_with(goal, proof, &self.collector)
    }

    /// Synthesises and checks a joint-recursion proof (see
    /// [`Workbench::prove_auto`]), recording the check's rule spans.
    ///
    /// # Errors
    ///
    /// As for [`Workbench::prove_auto`].
    pub fn prove_auto(&self, specs: &[(&str, &str)]) -> Result<CheckReport, WorkbenchError> {
        self.wb.prove_auto_with(specs, &self.collector)
    }

    /// Executes the named process, recording per-round `run.round`
    /// spans, scheduler picks, and fault injections. The session's
    /// collector replaces whatever `opts.collector` held.
    ///
    /// # Errors
    ///
    /// As for [`Workbench::run`].
    pub fn run(&self, name: &str, opts: RunOptions) -> Result<RunResult, WorkbenchError> {
        self.wb.run(
            name,
            RunOptions {
                collector: self.collector.clone(),
                ..opts
            },
        )
    }

    /// Verifies a recorded run against the semantics and invariants.
    ///
    /// # Errors
    ///
    /// As for [`Workbench::conformance`].
    pub fn conformance(
        &self,
        name: &str,
        result: &RunResult,
        opts: impl Into<ConformanceOptions>,
    ) -> Result<ConformanceReport, WorkbenchError> {
        self.wb.conformance(name, result, opts)
    }

    /// Sweeps the named network over seeds × fault plans (see
    /// [`Workbench::fault_conformance`]).
    ///
    /// # Errors
    ///
    /// As for [`Workbench::fault_conformance`].
    pub fn fault_conformance(
        &self,
        name: &str,
        opts: impl Into<ConformanceOptions>,
        sweep: &FaultSweep,
    ) -> Result<FaultConformance, WorkbenchError> {
        self.wb.fault_conformance(name, opts, sweep)
    }

    /// Bounded trace refinement (see [`Workbench::refines`]).
    ///
    /// # Errors
    ///
    /// As for [`Workbench::refines`].
    pub fn refines(
        &self,
        implementation: &str,
        specification: &str,
        opts: impl Into<SatOptions>,
    ) -> Result<Result<(), csp_trace::Trace>, WorkbenchError> {
        self.wb.refines(implementation, specification, opts)
    }

    /// Bounded deadlock search (see [`Workbench::deadlocks`]); the
    /// engine in the options bundle selects the backend.
    ///
    /// # Errors
    ///
    /// As for [`Workbench::deadlocks`].
    pub fn deadlocks(
        &self,
        name: &str,
        opts: impl Into<SatOptions>,
    ) -> Result<csp_verify::DeadlockReport, WorkbenchError> {
        self.wb.deadlocks(name, opts)
    }

    /// Runs the paper's fixpoint construction, recording per-iteration
    /// and per-key spans plus the `fixpoint.iter_ns` histogram.
    ///
    /// # Errors
    ///
    /// As for [`Workbench::fixpoint`].
    pub fn fixpoint(&self, depth: usize, max_iters: usize) -> Result<FixpointRun, WorkbenchError> {
        self.wb.fixpoint_with(depth, max_iters, &self.collector)
    }

    /// Everything observed so far: the collector's aggregates plus the
    /// `trace.*` operation counters accumulated process-wide since this
    /// session opened (`trace.unions`, `trace.intern_hits`,
    /// `trace.intern_hit_rate_pct`, …).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.collector.snapshot();
        let ops = OpStats::snapshot().delta(&self.baseline);
        snap.set_counter("trace.unions", ops.unions);
        snap.set_counter("trace.union_out_traces", ops.union_out_traces);
        snap.set_counter("trace.parallels", ops.parallels);
        snap.set_counter("trace.parallel_out_traces", ops.parallel_out_traces);
        snap.set_counter("trace.hides", ops.hides);
        snap.set_counter("trace.hide_out_traces", ops.hide_out_traces);
        snap.set_counter("trace.intern_hits", ops.intern_hits);
        snap.set_counter("trace.intern_misses", ops.intern_misses);
        snap.set_counter("trace.intern_hit_rate_pct", ops.intern_hit_rate_pct());
        // Ring-buffer overflow is otherwise only visible in JSONL; the
        // snapshot carries it so Prometheus can expose it as a gauge.
        snap.set_counter("obs.events_dropped", self.collector.dropped());
        snap
    }

    /// The finished spans currently held by the collector's ring buffer
    /// (close order; empty for a disabled collector).
    pub fn events(&self) -> Vec<SpanRecord> {
        self.collector.records()
    }

    /// Number of spans evicted from the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.collector.dropped()
    }

    /// Writes the span ring buffer as JSONL (one span per line).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_trace_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.collector.write_jsonl(w)
    }

    /// Renders the recorded spans as flamegraph-style folded stacks.
    pub fn folded_stacks(&self) -> String {
        self.collector.folded_stacks()
    }

    /// Renders the recorded spans as a Chrome trace-event / Perfetto
    /// JSON document, loadable in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        self.collector.chrome_trace()
    }

    /// Renders [`Session::metrics`] in the Prometheus text exposition
    /// format (counters, cumulative-`le` histogram buckets, span
    /// stats).
    pub fn prometheus(&self) -> String {
        csp_obs::render_prometheus(&self.metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_runtime::Scheduler;
    use csp_semantics::Universe;

    fn pipeline_wb() -> Workbench {
        let mut wb = Workbench::new().with_universe(Universe::new(1));
        wb.define_source(csp_lang::examples::PIPELINE_SRC).unwrap();
        wb
    }

    #[test]
    fn session_records_satcheck_spans_and_trace_deltas() {
        let wb = pipeline_wb();
        let session = wb.session();
        assert!(session
            .check_sat("pipeline", "output <= input", 3)
            .unwrap()
            .holds());
        let m = session.metrics();
        assert!(m.spans.contains_key("satcheck"));
        assert!(m.spans.contains_key("satcheck.explore"));
        assert!(m.counter("satcheck.moments") > 0);
        // Exploring the pipeline exercises the interner.
        assert!(m.counter("trace.intern_hits") + m.counter("trace.intern_misses") > 0);
        assert!(m.counter("trace.intern_hit_rate_pct") <= 100);
        // The span stream is live too.
        assert!(session.events().iter().any(|s| s.name == "satcheck"));
    }

    #[test]
    fn session_run_threads_the_collector() {
        let wb = pipeline_wb();
        let session = wb.session();
        let res = session
            .run(
                "pipeline",
                RunOptions {
                    max_steps: 12,
                    scheduler: Scheduler::seeded(3),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert!(res.steps > 0);
        let m = session.metrics();
        assert!(m.spans.contains_key("run"));
        assert!(m.spans.contains_key("run.round"));
        assert!(m.counter("run.scheduler_picks") > 0);
    }

    #[test]
    fn session_fixpoint_records_iterations() {
        let wb = pipeline_wb();
        let session = wb.session();
        let run = session.fixpoint(4, 16).unwrap();
        assert!(run.converged_at.is_some());
        let m = session.metrics();
        assert!(m.spans.contains_key("fixpoint.iter"));
        assert!(m.histograms.contains_key("fixpoint.iter_ns"));
        assert_eq!(
            m.counter("fixpoint.iterations"),
            run.converged_at.unwrap() as u64 + 1
        );
    }

    #[test]
    fn disabled_session_still_verifies() {
        let wb = pipeline_wb();
        let session = wb.session_with(Collector::disabled());
        assert!(session
            .check_sat("pipeline", "output <= input", 3)
            .unwrap()
            .holds());
        assert!(session.events().is_empty());
        // Only the trace.* deltas survive — there are no spans.
        let m = session.metrics();
        assert!(m.spans.is_empty());
    }

    #[test]
    fn exporters_cover_the_session_stream() {
        let wb = pipeline_wb();
        let session = wb.session();
        session.fixpoint(3, 8).unwrap();
        let chrome = session.chrome_trace();
        let doc = csp_obs::parse_json(&chrome).expect("valid trace JSON");
        let events = doc
            .get("traceEvents")
            .and_then(csp_obs::JsonValue::as_array)
            .unwrap();
        // Every recorded span plus the process-name metadata event.
        assert_eq!(events.len(), session.events().len() + 1);
        // The trace.* counters are process-global deltas, so two
        // metrics() calls can disagree under parallel tests; compare
        // the exposition against one captured snapshot and sanity-check
        // the session helper separately.
        let m = session.metrics();
        let round_trip = csp_obs::parse_prometheus(&csp_obs::render_prometheus(&m)).unwrap();
        assert_eq!(round_trip, m);
        let prom = session.prometheus();
        let parsed = csp_obs::parse_prometheus(&prom).expect("valid exposition");
        assert!(parsed.spans.contains_key("fixpoint"));
    }

    #[test]
    fn folded_stacks_and_jsonl_cover_the_same_spans() {
        let wb = pipeline_wb();
        let session = wb.session();
        session.fixpoint(3, 8).unwrap();
        let folded = session.folded_stacks();
        assert!(folded.contains("fixpoint;fixpoint.iter"));
        let mut buf = Vec::new();
        session.write_trace_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), session.events().len());
    }
}
