//! # csp-core
//!
//! Facade for the `hoare-csp` reproduction of Zhou Chao Chen & C. A. R.
//! Hoare, *Partial Correctness of Communicating Sequential Processes*
//! (1981): one crate that pulls together the whole stack —
//!
//! * the **language** of §1 (`csp-lang`): process equations over named
//!   channels, with a parser for the paper's notation;
//! * the **trace semantics** of §3 (`csp-semantics`): prefix-closed
//!   denotations, the fixpoint construction, and an agreeing operational
//!   semantics;
//! * the **assertion language** of §2 (`csp-assert`): channel-history
//!   predicates such as `f(wire) <= input`;
//! * the **proof system** of §2.1 (`csp-proof`): all ten rules, plus
//!   machine-checked scripts for every proof in the paper (including
//!   Table 1);
//! * the **model checker** (`csp-verify`): bounded `sat` checking with
//!   counterexamples, per-rule empirical soundness, proof/model
//!   cross-validation;
//! * the **runtime** (`csp-runtime`): networks executed on real threads
//!   with multi-party rendezvous, with conformance checking back against
//!   the semantics.
//!
//! The [`Workbench`] is the high-level entry point:
//!
//! ```
//! use csp_core::prelude::*;
//!
//! let mut wb = Workbench::new();
//! wb.define_source(
//!     "copier = input?x:NAT -> wire!x -> copier
//!      recopier = wire?y:NAT -> output!y -> recopier
//!      pipeline = chan wire; (copier || recopier)",
//! )?;
//! assert!(wb.check_sat("pipeline", "output <= input", 3)?.holds());
//! # Ok::<(), csp_core::WorkbenchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod options;
mod pool;
mod session;
mod workbench;

pub use cache::{content_hash, hash_field, Lru, VerifyCache, HASH_SEED};
pub use options::{ConformanceOptions, Engine, SatOptions};

/// The workspace's canonical content hashing (re-exported from
/// `csp_trace::hash`): one FNV-1a definition shared by the incremental
/// analysis database, the cross-request verification cache, and the
/// serve request keying.
pub mod hash {
    pub use csp_trace::hash::{content_hash, hash_field, HASH_SEED};
}
pub use pool::{PooledWorkbench, WorkbenchPool};
pub use session::Session;
pub use workbench::{Workbench, WorkbenchError};

/// The observability substrate (re-exported from `csp-obs`): collectors,
/// spans, metrics snapshots, and the JSONL/folded-stacks sinks.
///
/// `csp_obs::Span` is deliberately *not* re-exported at the crate root —
/// there it would collide with the source-position [`csp_lang::Span`]
/// re-exported from `csp-lang`; reach it as `obs::Span`.
pub mod obs {
    pub use csp_obs::*;
}

/// The paper's example systems (re-exported from `csp-lang`).
pub mod examples {
    pub use csp_lang::examples::*;
}

/// Machine-checked proof scripts for every proof in the paper
/// (re-exported from `csp-proof`).
pub mod proofs {
    pub use csp_proof::scripts::*;
}

pub use csp_analysis::{
    max_severity, render_json, AnalysisDb, Confirmation, Diagnostic, LintCode, Linter,
    RevisionStats, Severity, ALL_CODES,
};
pub use csp_assert::{
    decide_valid, parse_assertion, protocol_cancel, simplify, subst_chan_cons, subst_empty,
    subst_var, AssertError, Assertion, ChannelInfo, CmpOp, DecideConfig, Decision, EvalCtx,
    FuncTable, STerm, Term,
};
pub use csp_lang::{
    channel_alphabet, parse_definitions, parse_definitions_spanned, parse_expr, parse_module,
    parse_process, validate, ChanRef, Definition, Definitions, Env, EvalError, Expr, MsgSet,
    ParseError, ParsedModule, Process, SetExpr, SourceMap, Span, ValidationIssue,
};
pub use csp_obs::{Collector, FieldValue, Metered, MetricsSnapshot, SpanRecord};
pub use csp_proof::{
    check, check_with, render_report, spec_goal, synthesize, CheckReport, Context, Discharge,
    Judgement, Obligation, Proof, ProofError, SynthError,
};
pub use csp_runtime::{
    check_conformance, check_conformance_with_engine, chrome_causal_trace, flatten, msc,
    CausalError, CausalEvent, CausalEventKind, CausalLog, Component, ComponentFailure,
    ComponentSel, ConformanceReport, Executor, FailureReason, Fault, FaultError, FaultPlan,
    Monitor, MonitorReport, MonitorSpec, MonitorVerdict, MonitorViolation, Network, RestartPolicy,
    RunError, RunOptions, RunOutcome, RunResult, Scheduler, Supervision, VectorClock,
    ViolationKind,
};
pub use csp_semantics::{
    compare, fixpoint, fixpoint_with, refines, CompiledLts, CompiledStep, Config, Discrepancy,
    FixpointRun, Lts, Semantics, StateId, StateSet, Step, Universe,
};
pub use csp_trace::{
    timeline, Channel, ChannelSet, Event, History, NaiveTraceSet, OpStats, Seq, Trace, TraceSet,
    Value,
};
pub use csp_verify::{
    cross_validate_scripts, fault_conformance, find_deadlocks, find_deadlocks_compiled,
    stop_choice_identity, validate_all_rules, CrossValidation, Deadlock, DeadlockReport,
    DegradedRun, FaultConfError, FaultConformance, FaultSweep, InstanceGen, RuleReport, SatChecker,
    SatResult,
};

/// Convenient glob-import surface: `use csp_core::prelude::*;`.
pub mod prelude {
    pub use crate::{
        Assertion, CausalLog, Channel, Collector, ConformanceOptions, Definitions, Engine, Env,
        Event, FaultPlan, FaultSweep, Judgement, Metered, MetricsSnapshot, MonitorReport,
        MonitorSpec, Process, Proof, RestartPolicy, RunOptions, RunOutcome, SatOptions, SatResult,
        Scheduler, Session, Supervision, Trace, TraceSet, Universe, Value, VectorClock, Workbench,
        WorkbenchError,
    };
}
