//! Builder-style option bundles for the [`Workbench`](crate::Workbench)
//! verification entry points, replacing positional-argument sprawl.
//!
//! Both types are `#[non_exhaustive]` so new knobs can be added without
//! breaking callers, and both come with `From` conversions that keep the
//! common literal call forms working: a bare depth converts into
//! [`SatOptions`], an invariant-source slice into
//! [`ConformanceOptions`].
//!
//! Both bundles carry an [`Engine`] selector choosing the verification
//! backend — the enumerative trace-set oracle, the compiled LTS, or
//! (the default) a per-query automatic choice.

pub use csp_semantics::Engine;

/// Options for bounded satisfaction checking
/// ([`Workbench::check_sat`](crate::Workbench::check_sat)) and trace
/// refinement ([`Workbench::refines`](crate::Workbench::refines)).
///
/// ```
/// use csp_core::SatOptions;
///
/// let opts = SatOptions::new().with_depth(5).with_internal_budget_factor(6);
/// assert_eq!(opts.depth, 5);
/// // A bare depth still converts:
/// assert_eq!(SatOptions::from(3).depth, 3);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatOptions {
    /// Exploration depth: every trace up to this many visible events is
    /// checked.
    pub depth: usize,
    /// Hidden-communication budget as a multiple of the depth.
    pub internal_budget_factor: usize,
    /// Which verification backend answers the query.
    pub engine: Engine,
}

impl Default for SatOptions {
    fn default() -> Self {
        SatOptions {
            depth: 4,
            internal_budget_factor: 4,
            engine: Engine::Auto,
        }
    }
}

impl SatOptions {
    /// The default options (depth 4, budget factor 4, automatic engine).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the exploration depth.
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Sets the hidden-communication budget factor.
    #[must_use]
    pub fn with_internal_budget_factor(mut self, factor: usize) -> Self {
        self.internal_budget_factor = factor.max(1);
        self
    }

    /// Selects the verification backend ([`Engine::Auto`] by default).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }
}

impl From<usize> for SatOptions {
    /// A bare number is an exploration depth.
    fn from(depth: usize) -> Self {
        SatOptions::default().with_depth(depth)
    }
}

/// Options for conformance checking
/// ([`Workbench::conformance`](crate::Workbench::conformance) and
/// [`Workbench::fault_conformance`](crate::Workbench::fault_conformance)):
/// which invariants a recorded run must satisfy, and how deep the
/// semantic replay may search.
///
/// ```
/// use csp_core::ConformanceOptions;
///
/// let opts = ConformanceOptions::new()
///     .with_invariant("output <= input")
///     .with_replay_depth(12);
/// assert_eq!(opts.invariants.len(), 1);
/// // A slice of invariant sources still converts:
/// let from_slice = ConformanceOptions::from(&["output <= input"]);
/// assert_eq!(from_slice.invariants, opts.invariants);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConformanceOptions {
    /// Invariants in assertion syntax; each must hold on every prefix of
    /// the visible trace.
    pub invariants: Vec<String>,
    /// Semantic replay depth; defaults to the recorded run's full length
    /// (minimum 8) when unset.
    pub replay_depth: Option<usize>,
    /// Which verification backend replays the trace.
    pub engine: Engine,
}

impl ConformanceOptions {
    /// No invariants, default replay depth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the verification backend ([`Engine::Auto`] by default).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Adds one invariant (assertion syntax).
    #[must_use]
    pub fn with_invariant(mut self, src: impl Into<String>) -> Self {
        self.invariants.push(src.into());
        self
    }

    /// Adds several invariants.
    #[must_use]
    pub fn with_invariants<I, S>(mut self, srcs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.invariants.extend(srcs.into_iter().map(Into::into));
        self
    }

    /// Overrides the semantic replay depth.
    #[must_use]
    pub fn with_replay_depth(mut self, depth: usize) -> Self {
        self.replay_depth = Some(depth);
        self
    }
}

impl From<&[&str]> for ConformanceOptions {
    fn from(srcs: &[&str]) -> Self {
        ConformanceOptions::new().with_invariants(srcs.iter().copied())
    }
}

impl<const N: usize> From<&[&str; N]> for ConformanceOptions {
    fn from(srcs: &[&str; N]) -> Self {
        ConformanceOptions::new().with_invariants(srcs.iter().copied())
    }
}

impl<const N: usize> From<[&str; N]> for ConformanceOptions {
    fn from(srcs: [&str; N]) -> Self {
        ConformanceOptions::new().with_invariants(srcs)
    }
}

impl From<Vec<String>> for ConformanceOptions {
    fn from(invariants: Vec<String>) -> Self {
        ConformanceOptions {
            invariants,
            ..ConformanceOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_literal_converts() {
        let o: SatOptions = 7.into();
        assert_eq!(o.depth, 7);
        assert_eq!(
            o.internal_budget_factor,
            SatOptions::default().internal_budget_factor
        );
    }

    #[test]
    fn budget_factor_floors_at_one() {
        assert_eq!(
            SatOptions::new()
                .with_internal_budget_factor(0)
                .internal_budget_factor,
            1
        );
    }

    #[test]
    fn engine_defaults_to_auto_and_is_selectable() {
        assert_eq!(SatOptions::new().engine, Engine::Auto);
        assert_eq!(SatOptions::from(3).engine, Engine::Auto);
        assert_eq!(
            SatOptions::new().with_engine(Engine::Compiled).engine,
            Engine::Compiled
        );
        assert_eq!(ConformanceOptions::new().engine, Engine::Auto);
        assert_eq!(
            ConformanceOptions::new()
                .with_engine(Engine::Enumerative)
                .engine,
            Engine::Enumerative
        );
    }

    #[test]
    fn invariant_slices_convert() {
        let a: ConformanceOptions = (&["x <= y", "y <= z"]).into();
        assert_eq!(a.invariants, vec!["x <= y", "y <= z"]);
        assert_eq!(a.replay_depth, None);
        let b: ConformanceOptions = vec!["x <= y".to_string()].into();
        assert_eq!(b.invariants.len(), 1);
    }
}
