//! Seeded, reproducible fault injection for network runs.
//!
//! The paper's §4 self-critique is that trace semantics proves only
//! *partial* correctness: `STOP | P = P`, so a component that silently
//! dies is invisible to the proof system. This module makes that
//! observation operational — a [`FaultPlan`] injects component crashes,
//! stalls, and offer delays into a run at chosen points, and an
//! adversarial starvation mode biases the scheduler against chosen
//! components. Because every fault is keyed to the deterministic global
//! step counter (not wall time), a faulty run is exactly as reproducible
//! as a healthy one.
//!
//! What recovery is possible is dictated by the same semantics: a
//! process's state is a function of its communication history (§3), so a
//! crashed component can be rebuilt *exactly* by replaying its
//! alphabet's projection of the trace so far ([`RestartPolicy::Replay`]).
//! Restarting from scratch without replay ([`RestartPolicy::Reset`])
//! forgets history and can emit traces the network's semantics — and
//! hence its proven `sat` assertions — never admitted.

use crate::net::Component;

/// Selects a network component, either positionally or by label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentSel {
    /// The i-th component of the flattened network (0-based).
    Index(usize),
    /// The component whose label matches exactly, or failing that the
    /// unique component whose label contains the string.
    Label(String),
}

impl ComponentSel {
    /// Resolves the selector against a flattened component list.
    pub fn resolve(&self, components: &[Component]) -> Option<usize> {
        match self {
            ComponentSel::Index(i) => (*i < components.len()).then_some(*i),
            ComponentSel::Label(want) => {
                if let Some(i) = components.iter().position(|c| &c.label == want) {
                    return Some(i);
                }
                let mut matches = components
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.label.contains(want.as_str()));
                match (matches.next(), matches.next()) {
                    (Some((i, _)), None) => Some(i),
                    _ => None,
                }
            }
        }
    }
}

impl std::fmt::Display for ComponentSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComponentSel::Index(i) => write!(f, "{i}"),
            ComponentSel::Label(l) => write!(f, "{l}"),
        }
    }
}

impl From<&str> for ComponentSel {
    fn from(s: &str) -> Self {
        match s.parse::<usize>() {
            Ok(i) => ComponentSel::Index(i),
            Err(_) => ComponentSel::Label(s.to_string()),
        }
    }
}

impl From<usize> for ComponentSel {
    fn from(i: usize) -> Self {
        ComponentSel::Index(i)
    }
}

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The component's thread is killed once the global trace reaches
    /// `at_step` events. What happens next is governed by the plan's
    /// [`RestartPolicy`].
    Crash {
        /// Which component dies.
        component: ComponentSel,
        /// Global event count at which it dies.
        at_step: usize,
    },
    /// The component freezes for `rounds` coordination rounds starting
    /// when the trace reaches `at_step` events: it offers nothing, so
    /// events needing its participation are disabled until it thaws.
    Stall {
        /// Which component freezes.
        component: ComponentSel,
        /// Global event count at which it freezes.
        at_step: usize,
        /// How many coordination rounds the freeze lasts.
        rounds: usize,
    },
    /// The component's *offer message* is held in transit for `rounds`
    /// coordination rounds. Mechanically identical to [`Fault::Stall`]
    /// (in trace semantics a frozen process and a delayed message are
    /// indistinguishable — only liveness, which §4 puts out of scope,
    /// could tell them apart), but kept distinct so plans document
    /// intent. While one offer is delayed, later-arriving offers from
    /// other components can overtake it: message reorder falls out.
    DelayOffer {
        /// Whose offer is delayed.
        component: ComponentSel,
        /// Global event count at which the delay starts.
        at_step: usize,
        /// How many coordination rounds the offer stays in flight.
        rounds: usize,
    },
}

impl Fault {
    /// The component the fault targets.
    pub fn component(&self) -> &ComponentSel {
        match self {
            Fault::Crash { component, .. }
            | Fault::Stall { component, .. }
            | Fault::DelayOffer { component, .. } => component,
        }
    }

    /// The global step at which the fault fires.
    pub fn at_step(&self) -> usize {
        match self {
            Fault::Crash { at_step, .. }
            | Fault::Stall { at_step, .. }
            | Fault::DelayOffer { at_step, .. } => *at_step,
        }
    }
}

/// What the supervisor does with a dead component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Leave it dead. The component behaves as `STOP` from then on —
    /// the degradation the paper's `STOP | P = P` identity makes
    /// invisible to the proof system (failures only *remove* behaviour,
    /// so `sat` assertions keep holding on every surviving prefix).
    #[default]
    FailStop,
    /// Respawn the component and fast-forward it by replaying its
    /// alphabet's projection of the trace so far. Sound because a
    /// process's state is a function of its channel history (§3): after
    /// replay the component is in exactly the state it died in.
    Replay,
    /// Respawn the component in its initial state with no replay.
    /// Unsound: the reset component has forgotten its history, and the
    /// network can go on to emit traces outside its semantics.
    Reset,
}

/// Errors from building or resolving a fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A selector matched no (or no unique) component.
    UnknownComponent(String),
    /// A textual plan did not parse.
    Parse(String),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownComponent(s) => {
                write!(f, "fault plan names unknown component `{s}`")
            }
            FaultError::Parse(s) => write!(f, "bad fault plan: {s}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// A reproducible schedule of faults for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injected faults, in no particular order.
    pub faults: Vec<Fault>,
    /// What to do with dead components.
    pub restart: RestartPolicy,
    /// Components the adversarial scheduler starves: whenever an event
    /// not involving any of them is enabled, only such events are
    /// eligible. (Total starvation is impossible without deadlocking the
    /// rest — the scheduler yields when starving would stop the run.)
    pub starve: Vec<ComponentSel>,
}

impl FaultPlan {
    /// The empty plan: no faults, fail-stop, no starvation.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing and starves nobody.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.starve.is_empty()
    }

    /// Adds a crash of `component` at global step `at_step`.
    #[must_use]
    pub fn crash(mut self, component: impl Into<ComponentSel>, at_step: usize) -> Self {
        self.faults.push(Fault::Crash {
            component: component.into(),
            at_step,
        });
        self
    }

    /// Adds a stall of `component` for `rounds` rounds at step `at_step`.
    #[must_use]
    pub fn stall(
        mut self,
        component: impl Into<ComponentSel>,
        at_step: usize,
        rounds: usize,
    ) -> Self {
        self.faults.push(Fault::Stall {
            component: component.into(),
            at_step,
            rounds,
        });
        self
    }

    /// Adds an offer delay of `rounds` rounds at step `at_step`.
    #[must_use]
    pub fn delay(
        mut self,
        component: impl Into<ComponentSel>,
        at_step: usize,
        rounds: usize,
    ) -> Self {
        self.faults.push(Fault::DelayOffer {
            component: component.into(),
            at_step,
            rounds,
        });
        self
    }

    /// Sets the restart policy.
    #[must_use]
    pub fn with_restart(mut self, restart: RestartPolicy) -> Self {
        self.restart = restart;
        self
    }

    /// Adds a component to the starvation set.
    #[must_use]
    pub fn starving(mut self, component: impl Into<ComponentSel>) -> Self {
        self.starve.push(component.into());
        self
    }

    /// Parses the CLI plan syntax: `;`-separated clauses
    ///
    /// ```text
    /// crash:COMP@STEP
    /// stall:COMP@STEP xROUNDS    (written stall:COMP@STEPxROUNDS)
    /// delay:COMP@STEPxROUNDS
    /// starve:COMP
    /// restart:failstop|replay|reset
    /// ```
    ///
    /// where `COMP` is a 0-based component index or a label fragment,
    /// e.g. `crash:copier@4;restart:replay` or `stall:2@3x5;starve:0`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Parse`] on malformed clauses.
    pub fn parse(spec: &str) -> Result<Self, FaultError> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| FaultError::Parse(format!("`{clause}` has no `:`")))?;
            match kind.trim() {
                "crash" => {
                    let (comp, step) = split_at_sign(rest, clause)?;
                    plan.faults.push(Fault::Crash {
                        component: comp.into(),
                        at_step: parse_num(step, clause)?,
                    });
                }
                "stall" | "delay" => {
                    let (comp, when) = split_at_sign(rest, clause)?;
                    let (step, rounds) = when.split_once('x').ok_or_else(|| {
                        FaultError::Parse(format!("`{clause}` needs STEPxROUNDS after `@`"))
                    })?;
                    let (at_step, rounds) = (parse_num(step, clause)?, parse_num(rounds, clause)?);
                    plan.faults.push(if kind.trim() == "stall" {
                        Fault::Stall {
                            component: comp.into(),
                            at_step,
                            rounds,
                        }
                    } else {
                        Fault::DelayOffer {
                            component: comp.into(),
                            at_step,
                            rounds,
                        }
                    });
                }
                "starve" => plan.starve.push(rest.trim().into()),
                "restart" => {
                    plan.restart = match rest.trim() {
                        "failstop" | "none" => RestartPolicy::FailStop,
                        "replay" => RestartPolicy::Replay,
                        "reset" => RestartPolicy::Reset,
                        other => {
                            return Err(FaultError::Parse(format!(
                                "unknown restart policy `{other}` (failstop|replay|reset)"
                            )))
                        }
                    };
                }
                other => {
                    return Err(FaultError::Parse(format!(
                        "unknown clause kind `{other}` (crash|stall|delay|starve|restart)"
                    )))
                }
            }
        }
        Ok(plan)
    }

    /// Checks every selector against the component list.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::UnknownComponent`] naming the first selector
    /// that resolves to no (or no unique) component.
    pub fn resolve_all(&self, components: &[Component]) -> Result<(), FaultError> {
        for sel in self
            .faults
            .iter()
            .map(Fault::component)
            .chain(self.starve.iter())
        {
            if sel.resolve(components).is_none() {
                return Err(FaultError::UnknownComponent(sel.to_string()));
            }
        }
        Ok(())
    }
}

fn split_at_sign<'s>(rest: &'s str, clause: &str) -> Result<(&'s str, &'s str), FaultError> {
    rest.split_once('@')
        .map(|(a, b)| (a.trim(), b.trim()))
        .ok_or_else(|| FaultError::Parse(format!("`{clause}` needs COMP@STEP")))
}

fn parse_num(s: &str, clause: &str) -> Result<usize, FaultError> {
    s.trim()
        .parse()
        .map_err(|_| FaultError::Parse(format!("bad number `{s}` in `{clause}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_parser_agree() {
        let built = FaultPlan::none()
            .crash("copier", 4)
            .stall(2usize, 3, 5)
            .delay("recopier", 2, 3)
            .starving(0usize)
            .with_restart(RestartPolicy::Replay);
        let parsed = FaultPlan::parse(
            "crash:copier@4; stall:2@3x5; delay:recopier@2x3; starve:0; restart:replay",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "crash copier",
            "crash:copier",
            "stall:1@4",
            "restart:sometimes",
            "explode:0@1",
            "stall:1@x4",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.restart, RestartPolicy::FailStop);
    }

    #[test]
    fn selector_resolution_prefers_exact_labels() {
        use csp_lang::Env;
        let comps = |labels: &[&str]| -> Vec<Component> {
            labels
                .iter()
                .map(|l| Component {
                    label: l.to_string(),
                    process: csp_lang::Process::Stop,
                    env: Env::new(),
                    alphabet: csp_trace::ChannelSet::new(),
                    writes: csp_trace::ChannelSet::new(),
                })
                .collect()
        };
        let cs = comps(&["copier", "recopier"]);
        assert_eq!(ComponentSel::from("copier").resolve(&cs), Some(0));
        assert_eq!(ComponentSel::from("recopier").resolve(&cs), Some(1));
        assert_eq!(ComponentSel::from("1").resolve(&cs), Some(1));
        assert_eq!(ComponentSel::from("9").resolve(&cs), None);
        // `copi` is a substring of both labels — ambiguous.
        assert_eq!(ComponentSel::from("copi").resolve(&cs), None);
        // Unique substring works.
        assert_eq!(ComponentSel::from("reco").resolve(&cs), Some(1));
    }
}
