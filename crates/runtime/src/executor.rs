//! The concurrent executor: one OS thread per network component, joined
//! by a supervising coordinator implementing the paper's
//! simultaneous-participation rule for channel events.
//!
//! §1.0: a communication "occurs only when both processes are ready for
//! it" — generalised per the §1.2(8) note to *every* process connected
//! to the channel. Each step, every component reports the events it is
//! ready for (its *offers*); an event is enabled iff every component
//! whose alphabet contains its channel offers it; the scheduler picks one
//! enabled event; exactly the participating components advance.
//!
//! The coordinator doubles as a supervisor. Component threads can die
//! (panics, evaluation errors, injected [`crate::Fault::Crash`]es) or
//! stop responding (hangs, injected stalls); the coordinator never
//! trusts them further than a bounded `recv_timeout`, converts every
//! failure into a [`RunOutcome`], and lets the surviving components
//! degrade gracefully around a dead one — which then behaves exactly
//! like `STOP`, the degradation §4's `STOP | P = P` identity makes
//! invisible to the proof system. Under [`crate::RestartPolicy::Replay`]
//! a dead component is respawned and fast-forwarded by replaying its
//! alphabet's projection of the trace so far; sound because a process's
//! state is a function of its communication history (§3).

use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::thread;
use std::time::Instant;

use std::collections::BTreeMap;

use csp_causal::{CausalEventKind, CausalLog, VectorClock};
use csp_lang::{Definitions, Env, EvalError, Process};
use csp_obs::{Collector, Metered, MetricsSnapshot};
use csp_semantics::{Config, Lts, Step, Universe};
use csp_trace::{Event, Trace};

use crate::fault::{Fault, FaultError, FaultPlan, RestartPolicy};
use crate::monitor::{Monitor, MonitorReport, MonitorSpec};
use crate::net::{flatten, Component, NetError, Network};
use crate::supervisor::{ComponentFailure, FailureReason, RunOutcome, Supervision};
use crate::Scheduler;

/// Options controlling a run.
#[derive(Debug)]
pub struct RunOptions {
    /// Stop after this many events (hidden ones included).
    pub max_steps: usize,
    /// How non-determinism is resolved.
    pub scheduler: Scheduler,
    /// Faults injected into the run (default: none).
    pub faults: FaultPlan,
    /// Watchdog limits (default: generous round timeout, no deadline,
    /// livelock detection off).
    pub supervision: Supervision,
    /// Observation stream for per-round spans and counters (default:
    /// [`Collector::disabled`], costing one branch per round).
    pub collector: Collector,
    /// Online monitor checking trace-membership and assertions while the
    /// run executes (default: off).
    pub monitor: Option<MonitorSpec>,
    /// Capacity of the causal event log; beyond it new events are
    /// counted as dropped, keeping the retained prefix self-consistent
    /// (default: 4096).
    pub causal_cap: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_steps: 64,
            scheduler: Scheduler::seeded(0),
            faults: FaultPlan::none(),
            supervision: Supervision::default(),
            collector: Collector::disabled(),
            monitor: None,
            causal_cap: 4096,
        }
    }
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The externally visible trace (hidden channels removed), as the
    /// paper's observer would record it.
    pub visible: Trace,
    /// The full trace including concealed communications.
    pub full: Trace,
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Convenience mirror of `outcome == RunOutcome::Deadlocked`.
    pub deadlocked: bool,
    /// Number of events that occurred.
    pub steps: usize,
    /// Every component death the supervisor observed, recovered or not.
    pub failures: Vec<ComponentFailure>,
    /// What the run cost: round, pick, fault, and recovery counts
    /// (always populated from cheap local tallies).
    pub metrics: MetricsSnapshot,
    /// The causal event log: every communication and supervision event,
    /// vector-clock stamped (bounded by [`RunOptions::causal_cap`]).
    pub causal: CausalLog,
    /// Final per-component vector clocks at the end of the run.
    pub clocks: Vec<VectorClock>,
    /// The online monitor's report, when one was requested.
    pub monitor: Option<MonitorReport>,
}

impl Metered for RunResult {
    fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }
}

impl RunResult {
    /// Number of component deaths a restart policy recovered from.
    pub fn recoveries(&self) -> usize {
        self.failures.iter().filter(|f| f.recovered).count()
    }
}

/// Errors from the executor — problems *setting up* a run. Failures
/// during a run are reported in [`RunResult::outcome`], not here.
#[derive(Debug)]
pub enum RunError {
    /// The process is not a static network.
    Net(NetError),
    /// A component failed to evaluate while flattening.
    Eval(EvalError),
    /// The fault plan does not fit the network.
    Fault(FaultError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Net(e) => e.fmt(f),
            RunError::Eval(e) => e.fmt(f),
            RunError::Fault(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunError {}

impl From<NetError> for RunError {
    fn from(e: NetError) -> Self {
        RunError::Net(e)
    }
}

impl From<EvalError> for RunError {
    fn from(e: EvalError) -> Self {
        RunError::Eval(e)
    }
}

impl From<FaultError> for RunError {
    fn from(e: FaultError) -> Self {
        RunError::Fault(e)
    }
}

/// Message from coordinator to a component.
enum Decision {
    /// The given event occurred and involves you: advance past it.
    Advance(Event),
    /// An event occurred that does not involve you: re-offer.
    Stay,
    /// The run is over.
    Halt,
    /// Injected crash: die by unwinding, as a buggy component would.
    Poison,
}

/// What the coordinator believes about one component.
enum SlotState {
    /// We owe it a `recv`: its next offer has not been collected.
    AwaitingOffer,
    /// Its current offer is in hand (and stays buffered while the
    /// component is stalled or its offer message is delayed in transit).
    Offered(Vec<Event>),
    /// The component is dead and behaves as `STOP`.
    Dead,
}

/// Coordinator-side bookkeeping for one component thread.
struct Slot<'scope> {
    state: SlotState,
    /// Rounds left during which the offer is withheld (stall/delay).
    stall_rounds: usize,
    /// Restarts consumed, towards [`Supervision::max_restarts`].
    restarts_used: usize,
    offer_rx: Receiver<Result<Vec<Event>, EvalError>>,
    decision_tx: SyncSender<Decision>,
    handle: Option<thread::ScopedJoinHandle<'scope, ()>>,
}

/// Executes networks built from a definition list.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    defs: &'a Definitions,
    universe: &'a Universe,
}

impl<'a> Executor<'a> {
    /// Creates an executor.
    pub fn new(defs: &'a Definitions, universe: &'a Universe) -> Self {
        Executor { defs, universe }
    }

    /// Runs the named process.
    ///
    /// # Errors
    ///
    /// Fails on non-static networks, on evaluation errors while
    /// flattening, and on fault plans naming unknown components.
    pub fn run_name(&self, name: &str, env: &Env, opts: RunOptions) -> Result<RunResult, RunError> {
        self.run(&Process::call(name), env, opts)
    }

    /// Runs a process expression as a concurrent network.
    ///
    /// # Errors
    ///
    /// Fails on non-static networks, on evaluation errors while
    /// flattening, and on fault plans naming unknown components.
    /// Mid-run failures (component deaths, timeouts, livelock) are
    /// reported in [`RunResult::outcome`], never as `Err` — and never as
    /// a panic or an unbounded hang.
    pub fn run(
        &self,
        process: &Process,
        env: &Env,
        mut opts: RunOptions,
    ) -> Result<RunResult, RunError> {
        let net = flatten(process, self.defs, env)?;
        opts.faults.resolve_all(&net.components)?;
        let collector = opts.collector.clone();
        let mut root = collector.span("run");
        root.record("components", net.components.len());
        root.record("max_steps", opts.max_steps);
        // Counters below are incremented *live* (not tallied at the
        // end) so a concurrent sampler — `csp run --watch` — sees the
        // run progress round by round.
        collector.add("run.components", net.components.len() as u64);
        let mut rounds = 0u64;
        let mut picks = 0u64;
        let mut faults_fired = 0u64;
        let mut chan_ready: BTreeMap<String, u64> = BTreeMap::new();

        // Resolve fault targets to indices once, up front.
        let mut crashes: Vec<(usize, usize, bool)> = Vec::new(); // (index, at_step, fired)
        let mut stalls: Vec<(usize, usize, usize, bool)> = Vec::new(); // (index, at_step, rounds, fired)
        for fault in &opts.faults.faults {
            let index = fault
                .component()
                .resolve(&net.components)
                .expect("resolve_all checked");
            match fault {
                Fault::Crash { at_step, .. } => crashes.push((index, *at_step, false)),
                Fault::Stall {
                    at_step, rounds, ..
                }
                | Fault::DelayOffer {
                    at_step, rounds, ..
                } => {
                    stalls.push((index, *at_step, *rounds, false));
                }
            }
        }
        let starved: Vec<usize> = opts
            .faults
            .starve
            .iter()
            .map(|s| s.resolve(&net.components).expect("resolve_all checked"))
            .collect();

        // The monitor borrows the definitions for the lifetime of the
        // run, so it lives outside the thread scope; only the (single
        // threaded) coordinator loop feeds it.
        let mut monitor: Option<Monitor<'a>> = opts
            .monitor
            .take()
            .map(|spec| Monitor::new(process, env, self.defs, self.universe, spec));
        let labels: Vec<String> = net.components.iter().map(|c| c.label.clone()).collect();

        let (full, failures, log, clocks, terminal, saw_deadlock) = thread::scope(|scope| {
            let mut co = Coordinator {
                scope,
                defs: self.defs,
                universe: self.universe,
                net: &net,
                supervision: &opts.supervision,
                restart: opts.faults.restart,
                collector: collector.clone(),
                start: Instant::now(),
                slots: net
                    .components
                    .iter()
                    .map(|c| spawn_component(scope, c, self.defs, self.universe))
                    .collect(),
                full: Vec::new(),
                failures: Vec::new(),
                clocks: vec![VectorClock::new(net.components.len()); net.components.len()],
                log: CausalLog::new(labels, opts.causal_cap),
            };

            let mut terminal: Option<RunOutcome> = None;
            let mut saw_deadlock = false;
            let mut hidden_streak = 0usize;

            'run: while co.full.len() < opts.max_steps {
                rounds += 1;
                co.collector.add("run.rounds", 1);
                let mut round_span = root.child("run.round");
                round_span.record("round", rounds - 1);
                if co.past_deadline() {
                    terminal = Some(RunOutcome::TimedOut {
                        at_step: co.full.len(),
                    });
                    break 'run;
                }

                // Collect one offer from every live, unstalled component.
                if let Some(t) = co.gather() {
                    terminal = Some(t);
                    break 'run;
                }

                // Fire faults scheduled for the current step.
                let step = co.full.len();
                for (index, at_step, fired) in &mut crashes {
                    if !*fired && *at_step <= step {
                        *fired = true;
                        faults_fired += 1;
                        co.collector.add("run.faults_injected", 1);
                        co.kill(*index, FailureReason::InjectedCrash);
                    }
                }
                for (index, at_step, rounds, fired) in &mut stalls {
                    if !*fired && *at_step <= step {
                        *fired = true;
                        faults_fired += 1;
                        co.collector.add("run.faults_injected", 1);
                        if !matches!(co.slots[*index].state, SlotState::Dead) {
                            let slot = &mut co.slots[*index];
                            slot.stall_rounds = slot.stall_rounds.max(*rounds);
                            co.record_control(
                                *index,
                                CausalEventKind::Fault {
                                    detail: format!("stalled for {rounds} rounds"),
                                },
                            );
                        }
                    }
                }
                // Recoveries may have left fresh threads awaiting collection.
                if let Some(t) = co.gather() {
                    terminal = Some(t);
                    break 'run;
                }

                // Enabled events: offered by someone and matched by every
                // component whose alphabet contains the channel. Dead and
                // stalled components offer nothing, so events needing
                // them are disabled — `STOP | P = P` in action.
                let mut enabled: Vec<Event> = Vec::new();
                for i in 0..co.slots.len() {
                    for e in co.effective_offer(i) {
                        if enabled.contains(e) {
                            continue;
                        }
                        let ok = net.components.iter().enumerate().all(|(j, c)| {
                            !c.alphabet.contains(e.channel()) || co.effective_offer(j).contains(e)
                        });
                        if ok {
                            enabled.push(*e);
                        }
                    }
                }
                enabled.sort();
                enabled.dedup();

                // Channel occupancy: rounds in which each channel had an
                // enabled event waiting. Tallied only under observation
                // so the unobserved fast path stays allocation-free.
                if co.collector.is_enabled() {
                    let mut seen = std::collections::BTreeSet::new();
                    for e in &enabled {
                        seen.insert(e.channel());
                    }
                    for c in seen {
                        let name = c.to_string();
                        *chan_ready.entry(name.clone()).or_insert(0) += 1;
                        co.collector.add(format!("run.chan.{name}.ready_rounds"), 1);
                    }
                }

                if enabled.is_empty() {
                    if co
                        .slots
                        .iter()
                        .any(|s| s.stall_rounds > 0 && !matches!(s.state, SlotState::Dead))
                    {
                        // Not a deadlock: a stalled offer is still in
                        // flight. Let a coordination round pass.
                        co.tick_stalls();
                        continue 'run;
                    }
                    saw_deadlock = true;
                    break 'run;
                }

                // Adversarial starvation: if anything is enabled that
                // does not involve a starved component, only such events
                // are eligible.
                let chosen = {
                    let pool: Vec<Event> = if starved.is_empty() {
                        enabled
                    } else {
                        let preferred: Vec<Event> = enabled
                            .iter()
                            .filter(|e| {
                                !starved
                                    .iter()
                                    .any(|&j| net.components[j].alphabet.contains(e.channel()))
                            })
                            .cloned()
                            .collect();
                        if preferred.is_empty() {
                            enabled
                        } else {
                            preferred
                        }
                    };
                    round_span.record("enabled", pool.len());
                    match opts.scheduler.pick(&pool) {
                        Some(k) => {
                            picks += 1;
                            co.collector.add("run.scheduler_picks", 1);
                            pool[k]
                        }
                        None => {
                            saw_deadlock = true;
                            break 'run;
                        }
                    }
                };

                if round_span.is_enabled() {
                    round_span.record("event", chosen.to_string());
                }
                co.full.push(chosen);
                co.collector.add("run.steps", 1);
                if co.collector.is_enabled() {
                    co.collector
                        .add(format!("run.chan.{}.events", chosen.channel()), 1);
                }
                let committed_hidden = net.hidden.contains(chosen.channel());
                co.record_comm(chosen, committed_hidden);
                if !committed_hidden {
                    if let Some(m) = monitor.as_mut() {
                        co.collector.add("run.monitor.events", 1);
                        m.observe(chosen, co.full.len() - 1);
                    }
                }
                if net.hidden.contains(chosen.channel()) {
                    hidden_streak += 1;
                    let window = opts.supervision.livelock_window;
                    if window > 0 && hidden_streak >= window {
                        terminal = Some(RunOutcome::Livelock {
                            at_step: co.full.len(),
                            hidden_streak,
                        });
                        break 'run;
                    }
                } else {
                    hidden_streak = 0;
                }

                // Inform everyone who has an offer on the table.
                for j in 0..co.slots.len() {
                    let slot = &co.slots[j];
                    if slot.stall_rounds > 0 || !matches!(slot.state, SlotState::Offered(_)) {
                        continue;
                    }
                    let involved = net.components[j].alphabet.contains(chosen.channel());
                    let msg = if involved {
                        Decision::Advance(chosen)
                    } else {
                        Decision::Stay
                    };
                    if co.slots[j].decision_tx.try_send(msg).is_err() {
                        co.kill(j, FailureReason::ChannelClosed);
                    } else {
                        co.slots[j].state = SlotState::AwaitingOffer;
                    }
                }
                co.tick_stalls();
            }

            // Single teardown point for every exit path: no component
            // thread outlives the run.
            co.halt_and_join();
            (
                co.full,
                co.failures,
                co.log,
                co.clocks,
                terminal,
                saw_deadlock,
            )
        });

        // Late-bind the violation's causal history: it needs the
        // complete log, which only exists once the run is over.
        if let Some(m) = monitor.as_mut() {
            if let Some(vstep) = m.violation_step() {
                if let Some(e) = log.events().iter().find(|e| e.step == vstep && e.is_comm()) {
                    m.attach_causal_history(log.causal_history(e.seq));
                }
            }
        }
        let monitor_report = monitor.map(|m| m.report());

        let outcome = terminal.unwrap_or_else(|| {
            if let Some(f) = failures
                .iter()
                .find(|f| !f.recovered && f.reason == FailureReason::Panicked)
            {
                RunOutcome::Crashed {
                    label: f.label.clone(),
                    at_step: f.at_step,
                }
            } else if let Some(f) = failures.iter().find(|f| !f.recovered) {
                RunOutcome::ComponentFailed {
                    label: f.label.clone(),
                    at_step: f.at_step,
                }
            } else if saw_deadlock {
                RunOutcome::Deadlocked
            } else {
                RunOutcome::Completed
            }
        });

        let full = Trace::from_events(full);
        let visible = full.restrict(&net.hidden);
        root.record("steps", full.len());
        root.record("rounds", rounds);
        root.end();
        let mut metrics = MetricsSnapshot::new();
        metrics
            .set_counter("run.rounds", rounds)
            .set_counter("run.scheduler_picks", picks)
            .set_counter("run.faults_injected", faults_fired)
            .set_counter("run.deaths", failures.len() as u64)
            .set_counter(
                "run.restarts",
                failures.iter().filter(|f| f.recovered).count() as u64,
            )
            .set_counter("run.steps", full.len() as u64)
            .set_counter("run.hidden_events", (full.len() - visible.len()) as u64)
            .set_counter("run.causal.events", log.len() as u64)
            .set_counter("run.causal.dropped", log.dropped() as u64);
        // Per-channel throughput: one counter per distinct channel of
        // the committed trace (mirrors the live `run.chan.*` adds).
        let mut per_chan: BTreeMap<String, u64> = BTreeMap::new();
        for e in full.iter() {
            *per_chan.entry(e.channel().to_string()).or_insert(0) += 1;
        }
        for (chan, count) in per_chan {
            metrics.set_counter(format!("run.chan.{chan}.events"), count);
        }
        for (chan, count) in chan_ready {
            metrics.set_counter(format!("run.chan.{chan}.ready_rounds"), count);
        }
        if let Some(m) = &monitor_report {
            metrics.set_counter("run.monitor.events", m.events_checked as u64);
            metrics.set_counter(
                "run.monitor.conforming",
                u64::from(m.verdict.is_conforming()),
            );
        }
        // Everything else was incremented live; hidden-event accounting
        // needs the finished trace, so it lands here.
        collector.add("run.hidden_events", (full.len() - visible.len()) as u64);
        Ok(RunResult {
            steps: full.len(),
            visible,
            full,
            deadlocked: outcome.is_deadlock(),
            outcome,
            failures,
            metrics,
            causal: log,
            clocks,
            monitor: monitor_report,
        })
    }
}

/// The coordinator's mutable state, threaded through the helpers.
struct Coordinator<'run, 'scope, 'env> {
    scope: &'scope thread::Scope<'scope, 'env>,
    defs: &'env Definitions,
    universe: &'env Universe,
    net: &'run Network,
    supervision: &'run Supervision,
    restart: RestartPolicy,
    collector: Collector,
    start: Instant,
    slots: Vec<Slot<'scope>>,
    full: Vec<Event>,
    failures: Vec<ComponentFailure>,
    /// Per-component vector clocks; entry `i` is component `i`'s view.
    clocks: Vec<VectorClock>,
    /// The bounded causal event log (the coordinator is the only
    /// writer, so no locking is involved).
    log: CausalLog,
}

impl<'run, 'scope, 'env> Coordinator<'run, 'scope, 'env> {
    fn past_deadline(&self) -> bool {
        self.supervision
            .deadline
            .is_some_and(|d| self.start.elapsed() >= d)
    }

    /// Stamps a just-committed communication (the last event of `full`):
    /// every participant ticks its own clock entry, the event carries
    /// the pointwise max, and every participant adopts it — Lamport's
    /// rule specialised to the synchronous multi-party rendezvous of
    /// §1.2(8).
    fn record_comm(&mut self, event: Event, hidden: bool) {
        let step = self.full.len() - 1;
        let participants: Vec<usize> = (0..self.net.components.len())
            .filter(|&j| self.net.components[j].alphabet.contains(event.channel()))
            .collect();
        let writers: Vec<usize> = participants
            .iter()
            .copied()
            .filter(|&j| self.net.components[j].writes.contains(event.channel()))
            .collect();
        let sender = (writers.len() == 1).then(|| writers[0]);
        let receiver = sender.and_then(|s| participants.iter().copied().find(|&p| p != s));
        let mut pre_clocks = Vec::with_capacity(participants.len());
        let mut merged = VectorClock::new(self.clocks.len());
        for &p in &participants {
            let mut c = self.clocks[p].clone();
            c.tick(p);
            merged.merge(&c);
            pre_clocks.push(c);
        }
        for &p in &participants {
            self.clocks[p] = merged.clone();
        }
        self.log.push(
            step,
            CausalEventKind::Comm {
                event,
                sender,
                receiver,
                hidden,
            },
            participants,
            pre_clocks,
            merged,
        );
    }

    /// Stamps a supervision event (fault, death, restart) as a local
    /// step of component `i`.
    fn record_control(&mut self, i: usize, kind: CausalEventKind) {
        let step = self.full.len();
        let mut c = self.clocks[i].clone();
        c.tick(i);
        self.clocks[i] = c.clone();
        self.log.push(step, kind, vec![i], vec![c.clone()], c);
    }

    /// The offer the enabled-set computation may use for component `i`.
    fn effective_offer(&self, i: usize) -> &[Event] {
        let slot = &self.slots[i];
        if slot.stall_rounds > 0 {
            return &[];
        }
        match &slot.state {
            SlotState::Offered(events) => events,
            _ => &[],
        }
    }

    fn tick_stalls(&mut self) {
        for slot in &mut self.slots {
            slot.stall_rounds = slot.stall_rounds.saturating_sub(1);
        }
    }

    /// Collects offers until every live component is `Offered` (or dead).
    /// Returns a terminal outcome only for wall-clock expiry.
    fn gather(&mut self) -> Option<RunOutcome> {
        loop {
            let pending: Vec<usize> = (0..self.slots.len())
                .filter(|&i| matches!(self.slots[i].state, SlotState::AwaitingOffer))
                .collect();
            if pending.is_empty() {
                return None;
            }
            for i in pending {
                let wait = match self.supervision.deadline {
                    None => self.supervision.round_timeout,
                    Some(d) => {
                        let left = d.saturating_sub(self.start.elapsed());
                        if left.is_zero() {
                            return Some(RunOutcome::TimedOut {
                                at_step: self.full.len(),
                            });
                        }
                        self.supervision.round_timeout.min(left)
                    }
                };
                match self.slots[i].offer_rx.recv_timeout(wait) {
                    Ok(Ok(events)) => self.slots[i].state = SlotState::Offered(events),
                    Ok(Err(e)) => self.kill(i, FailureReason::EvalFailed(e.to_string())),
                    Err(RecvTimeoutError::Timeout) => {
                        if self.past_deadline() {
                            return Some(RunOutcome::TimedOut {
                                at_step: self.full.len(),
                            });
                        }
                        self.kill(i, FailureReason::Hung);
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.kill(i, FailureReason::Panicked);
                    }
                }
            }
            // Restart policies may have respawned threads that now owe us
            // their first (or post-replay) offer — loop until stable.
        }
    }

    /// Declares component `i` dead for `reason`, reaps its thread, and
    /// applies the restart policy.
    fn kill(&mut self, i: usize, reason: FailureReason) {
        if matches!(self.slots[i].state, SlotState::Dead) {
            return;
        }
        // If the thread is still running, poison it so it unwinds. A
        // blocking send: the capacity-1 buffer may still hold the
        // previous round's decision, which the component is about to
        // consume; `try_send` would drop the poison on the floor and the
        // join below would hang. Returns an error immediately if the
        // thread is already gone.
        let _ = self.slots[i].decision_tx.send(Decision::Poison);
        let panicked = match self.slots[i].handle.take() {
            Some(h) => h.join().is_err(),
            None => false,
        };
        // An injected crash unwinds too — keep the injected reason. A
        // reason of `Panicked` is only confirmed by the join result.
        let reason = match reason {
            FailureReason::Panicked if !panicked => FailureReason::ChannelClosed,
            r => r,
        };
        self.slots[i].state = SlotState::Dead;
        self.slots[i].stall_rounds = 0;
        let at_step = self.full.len();
        let label = self.net.components[i].label.clone();
        self.record_control(
            i,
            CausalEventKind::Death {
                detail: reason.to_string(),
            },
        );
        self.failures.push(ComponentFailure {
            index: i,
            label,
            at_step,
            reason,
            recovered: false,
        });
        self.collector.add("run.deaths", 1);

        match self.restart {
            RestartPolicy::FailStop => {}
            RestartPolicy::Replay | RestartPolicy::Reset => self.respawn(i),
        }
    }

    /// Respawns component `i` under the current restart policy and, for
    /// [`RestartPolicy::Replay`], fast-forwards it through its recorded
    /// history. On success the slot owes us a fresh offer; on failure it
    /// stays dead and the failure stays unrecovered.
    fn respawn(&mut self, i: usize) {
        if self.slots[i].restarts_used >= self.supervision.max_restarts {
            return;
        }
        self.slots[i].restarts_used += 1;
        let restarts_used = self.slots[i].restarts_used;
        let mut fresh = spawn_component(
            self.scope,
            &self.net.components[i],
            self.defs,
            self.universe,
        );
        fresh.restarts_used = restarts_used;

        if self.restart == RestartPolicy::Replay {
            // State = function of channel history (§3): feed the new
            // thread its alphabet's projection of the trace so far.
            let history: Vec<Event> = self
                .full
                .iter()
                .filter(|e| self.net.components[i].alphabet.contains(e.channel()))
                .cloned()
                .collect();
            for event in history {
                let offered = match fresh.offer_rx.recv_timeout(self.supervision.round_timeout) {
                    Ok(Ok(events)) => events.contains(&event),
                    _ => false,
                };
                if !offered || fresh.decision_tx.send(Decision::Advance(event)).is_err() {
                    // Replay diverged (or the fresh thread died): give up
                    // on this component for good.
                    let _ = fresh.decision_tx.send(Decision::Poison);
                    if let Some(h) = fresh.handle.take() {
                        let _ = h.join();
                    }
                    self.record_control(
                        i,
                        CausalEventKind::Death {
                            detail: FailureReason::ReplayDiverged.to_string(),
                        },
                    );
                    self.failures.push(ComponentFailure {
                        index: i,
                        label: self.net.components[i].label.clone(),
                        at_step: self.full.len(),
                        reason: FailureReason::ReplayDiverged,
                        recovered: false,
                    });
                    self.collector.add("run.deaths", 1);
                    return;
                }
            }
        }

        fresh.state = SlotState::AwaitingOffer;
        self.slots[i] = fresh;
        if let Some(f) = self.failures.iter_mut().rev().find(|f| f.index == i) {
            f.recovered = true;
            self.collector.add("run.restarts", 1);
        }
        self.record_control(i, CausalEventKind::Restart);
    }

    /// Tears the network down: every live thread gets `Halt`, every
    /// thread gets joined. Runs on every exit path, so no component
    /// thread leaks past the end of a run.
    fn halt_and_join(&mut self) {
        for slot in &mut self.slots {
            if !matches!(slot.state, SlotState::Dead) {
                // Blocking send, not `try_send`: right after a decision
                // round the capacity-1 buffer may still hold an
                // unconsumed `Advance`/`Stay`, and a dropped `Halt`
                // would leave the component blocked on `recv` forever.
                let _ = slot.decision_tx.send(Decision::Halt);
            }
        }
        for slot in &mut self.slots {
            if let Some(h) = slot.handle.take() {
                // A panicked thread was either poisoned deliberately or
                // already recorded as a failure; swallow the payload so
                // the scope does not re-raise it.
                let _ = h.join();
            }
        }
    }
}

/// Spawns one component thread with bounded (capacity-1) channels in
/// both directions — the protocol is lock-step, so a runaway component
/// blocks on `send` instead of growing an unbounded queue.
fn spawn_component<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    comp: &Component,
    defs: &'env Definitions,
    universe: &'env Universe,
) -> Slot<'scope> {
    let (offer_tx, offer_rx) = std::sync::mpsc::sync_channel(1);
    let (decision_tx, decision_rx) = std::sync::mpsc::sync_channel::<Decision>(1);
    let comp = comp.clone();
    let handle = scope.spawn(move || {
        component_thread(comp, defs, universe, &offer_tx, &decision_rx);
    });
    Slot {
        state: SlotState::AwaitingOffer,
        stall_rounds: 0,
        restarts_used: 0,
        offer_rx,
        decision_tx,
        handle: Some(handle),
    }
}

/// The per-component loop: offer, await decision, advance.
fn component_thread(
    comp: Component,
    defs: &Definitions,
    universe: &Universe,
    offer_tx: &SyncSender<Result<Vec<Event>, EvalError>>,
    decision_rx: &Receiver<Decision>,
) {
    let lts = Lts::new(defs, universe);
    let mut config = Config::new(comp.process, comp.env);
    loop {
        let steps = match lts.steps(&config) {
            Ok(s) => s,
            Err(e) => {
                let _ = offer_tx.send(Err(e));
                return;
            }
        };
        // Components are sequential: every step is visible.
        let mut events: Vec<Event> = steps
            .iter()
            .map(|s| match s {
                Step::Visible(e, _) => *e,
                Step::Internal(_) => unreachable!("sequential components have no hiding"),
            })
            .collect();
        events.sort();
        events.dedup();
        if offer_tx.send(Ok(events)).is_err() {
            return;
        }
        match decision_rx.recv() {
            Ok(Decision::Advance(e)) => {
                let next = steps.into_iter().find_map(|s| match s {
                    Step::Visible(ev, c) if ev == e => Some(c),
                    _ => None,
                });
                match next {
                    Some(c) => config = c,
                    None => {
                        // Coordinator advanced us past an event we did not
                        // offer — a coordinator bug; fail loudly via the
                        // offer channel on the next loop.
                        let _ = offer_tx.send(Err(EvalError::UndefinedProcess(format!(
                            "component advanced past unoffered event {e}"
                        ))));
                        return;
                    }
                }
            }
            Ok(Decision::Stay) => {}
            Ok(Decision::Poison) => {
                // Die exactly as a buggy component would — by unwinding —
                // but without tripping the global panic hook's stderr
                // noise: the coordinator is about to reap us anyway.
                std::panic::resume_unwind(Box::new("injected component crash"));
            }
            Ok(Decision::Halt) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::RunOutcome;
    use csp_lang::examples;
    use csp_trace::Channel;
    use std::time::Duration;

    #[test]
    fn pipeline_runs_and_copies() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 30,
                    scheduler: Scheduler::seeded(42),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert!(!res.deadlocked);
        assert_eq!(res.outcome, RunOutcome::Completed);
        assert_eq!(res.steps, 30);
        // The invariant output ≤ input holds on the visible trace.
        let h = res.visible.history();
        let output = h.on(&Channel::simple("output"));
        let input = h.on(&Channel::simple("input"));
        assert!(output.is_prefix_of(&input), "visible: {}", res.visible);
        // Hidden wire events were recorded in the full trace only.
        assert!(res.full.len() > res.visible.len());
        assert!(!res
            .visible
            .iter()
            .any(|e| e.channel() == &Channel::simple("wire")));
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let run = |seed| {
            exec.run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 20,
                    scheduler: Scheduler::seeded(seed),
                    ..RunOptions::default()
                },
            )
            .unwrap()
            .full
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn protocol_delivers_messages_in_order() {
        let defs = examples::protocol();
        let uni =
            Universe::new(0).with_named("M", [csp_trace::Value::nat(0), csp_trace::Value::nat(1)]);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "protocol",
                &Env::new(),
                RunOptions {
                    max_steps: 40,
                    scheduler: Scheduler::seeded(3),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let h = res.visible.history();
        let output = h.on(&Channel::simple("output"));
        let input = h.on(&Channel::simple("input"));
        assert!(output.is_prefix_of(&input), "visible: {}", res.visible);
    }

    #[test]
    fn multiplier_computes_scalar_products_live() {
        // Rows restricted to {0..2} so that the column partial sums stay
        // within the NAT bound used for the col-channel input sets
        // (max 2*2 + 3*2 + 5*2 = 20).
        let defs = csp_lang::parse_definitions(
            "mult[i:1..3] = row[i]?x:{0..2} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
             zeroes = col[0]!0 -> zeroes
             last = col[3]?y:NAT -> output!y -> last
             network = zeroes || mult[1] || mult[2] || mult[3] || last
             multiplier = chan col[0..3]; network",
        )
        .unwrap();
        let env = examples::multiplier_env(&[2, 3, 5]);
        let uni = Universe::new(20);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "multiplier",
                &env,
                RunOptions {
                    max_steps: 64,
                    scheduler: Scheduler::seeded(11),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let h = res.visible.history();
        let out = h.on(&Channel::simple("output"));
        assert!(!out.is_empty(), "no outputs in {}", res.visible);
        for i in 1..=out.len() {
            let expected: i64 = (1..=3)
                .map(|j| {
                    let vj = [2, 3, 5][j - 1];
                    let row = h.on(&Channel::indexed("row", j as i64));
                    vj * row.at(i).expect("row consumed").as_int().unwrap()
                })
                .sum();
            assert_eq!(out.at(i).unwrap().as_int().unwrap(), expected);
        }
    }

    #[test]
    fn mismatched_network_deadlocks() {
        let defs = csp_lang::parse_definitions(
            "left = w!1 -> STOP
             right = w?x:{2} -> STOP
             net = left || right",
        )
        .unwrap();
        let uni = Universe::new(3);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name("net", &Env::new(), RunOptions::default())
            .unwrap();
        assert!(res.deadlocked);
        assert_eq!(res.outcome, RunOutcome::Deadlocked);
        assert_eq!(res.steps, 0);
    }

    #[test]
    fn round_robin_scheduler_also_works() {
        let defs = examples::buffer2();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "buffer2",
                &Env::new(),
                RunOptions {
                    max_steps: 12,
                    scheduler: Scheduler::round_robin(),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert!(!res.deadlocked);
        let h = res.visible.history();
        assert!(h
            .on(&Channel::simple("out"))
            .is_prefix_of(&h.on(&Channel::simple("in"))));
    }

    // ------------------------------------------------------ faults --

    #[test]
    fn injected_crash_fails_the_component_not_the_run() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 20,
                    scheduler: Scheduler::seeded(4),
                    faults: FaultPlan::none().crash("copier", 4),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        match &res.outcome {
            RunOutcome::ComponentFailed { label, at_step } => {
                assert_eq!(label, "copier");
                assert_eq!(*at_step, 4);
            }
            other => panic!("expected ComponentFailed, got {other:?}"),
        }
        assert_eq!(res.failures.len(), 1);
        assert_eq!(res.failures[0].reason, FailureReason::InjectedCrash);
        assert!(!res.failures[0].recovered);
        // The run degraded instead of erroring: the trace up to (and
        // possibly past) the crash is preserved.
        assert!(res.steps >= 4);
    }

    #[test]
    fn crash_with_replay_is_transparent() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let healthy = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 24,
                    scheduler: Scheduler::seeded(9),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let faulty = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 24,
                    scheduler: Scheduler::seeded(9),
                    faults: FaultPlan::none()
                        .crash("copier", 6)
                        .with_restart(RestartPolicy::Replay),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        // Restart-by-replay reconstructs the component's state exactly
        // (state = function of history), so the faulty run is
        // indistinguishable from the healthy one.
        assert_eq!(faulty.outcome, RunOutcome::Completed);
        assert_eq!(faulty.full, healthy.full);
        assert_eq!(faulty.recoveries(), 1);
        assert_eq!(faulty.failures.len(), 1);
        assert!(faulty.failures[0].recovered);
    }

    #[test]
    fn stall_delays_but_preserves_behaviour() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 16,
                    scheduler: Scheduler::seeded(2),
                    faults: FaultPlan::none().stall("recopier", 2, 5),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert_eq!(res.outcome, RunOutcome::Completed);
        assert!(res.failures.is_empty());
        let h = res.visible.history();
        assert!(h
            .on(&Channel::simple("output"))
            .is_prefix_of(&h.on(&Channel::simple("input"))));
    }

    #[test]
    fn starvation_biases_the_schedule() {
        // Two independent producers; starving one means the other gets
        // every pick.
        let defs = csp_lang::parse_definitions(
            "a = left!0 -> a
             b = right!0 -> b
             net = a || b",
        )
        .unwrap();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "net",
                &Env::new(),
                RunOptions {
                    max_steps: 10,
                    scheduler: Scheduler::seeded(1),
                    faults: FaultPlan::none().starving(0usize),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert_eq!(res.outcome, RunOutcome::Completed);
        assert!(
            res.full
                .iter()
                .all(|e| e.channel() == &Channel::simple("right")),
            "starved component still fired: {}",
            res.full
        );
    }

    #[test]
    fn livelock_detector_fires_on_concealed_spin() {
        // All communication is concealed: an observer sees nothing,
        // forever. The trace model calls this indistinguishable from
        // STOP (§4); the watchdog reports it.
        let defs = csp_lang::parse_definitions(
            "ping = w!0 -> ping
             pong = w?x:NAT -> pong
             spinner = chan w; (ping || pong)",
        )
        .unwrap();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "spinner",
                &Env::new(),
                RunOptions {
                    max_steps: 1000,
                    scheduler: Scheduler::seeded(0),
                    supervision: Supervision::default().with_livelock_window(32),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        match res.outcome {
            RunOutcome::Livelock { hidden_streak, .. } => assert_eq!(hidden_streak, 32),
            other => panic!("expected Livelock, got {other:?}"),
        }
        assert!(res.visible.is_empty());
    }

    #[test]
    fn deadline_bounds_the_run() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let started = Instant::now();
        let res = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: usize::MAX,
                    scheduler: Scheduler::seeded(0),
                    supervision: Supervision::default().with_deadline(Duration::from_millis(100)),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert!(matches!(res.outcome, RunOutcome::TimedOut { .. }));
        // Teardown is prompt: well under the 30s harness budget.
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn unknown_fault_target_is_a_setup_error() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let err = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    faults: FaultPlan::none().crash("ghost", 1),
                    ..RunOptions::default()
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RunError::Fault(FaultError::UnknownComponent(_))
        ));
    }

    #[test]
    fn crash_then_reset_restart_can_change_visible_behaviour() {
        // The protocol sender alternates data and acknowledgement; a
        // reset forgets where in the cycle it was. The run keeps going —
        // but (unlike replay) it is no longer guaranteed to match the
        // healthy run.
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 24,
                    scheduler: Scheduler::seeded(9),
                    faults: FaultPlan::none()
                        .crash("copier", 6)
                        .with_restart(RestartPolicy::Reset),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert_eq!(res.outcome, RunOutcome::Completed);
        assert_eq!(res.recoveries(), 1);
    }
}
