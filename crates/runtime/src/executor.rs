//! The concurrent executor: one OS thread per network component, joined
//! by a coordinator implementing the paper's simultaneous-participation
//! rule for channel events.
//!
//! §1.0: a communication "occurs only when both processes are ready for
//! it" — generalised per the §1.2(8) note to *every* process connected
//! to the channel. Each step, every component reports the events it is
//! ready for (its *offers*); an event is enabled iff every component
//! whose alphabet contains its channel offers it; the scheduler picks one
//! enabled event; exactly the participating components advance.

use crossbeam::channel::{unbounded, Receiver, Sender};
use csp_lang::{Definitions, Env, EvalError, Process};
use csp_semantics::{Config, Lts, Step, Universe};
use csp_trace::{Event, Trace};

use crate::net::{flatten, NetError};
use crate::Scheduler;

/// Options controlling a run.
#[derive(Debug)]
pub struct RunOptions {
    /// Stop after this many events (hidden ones included).
    pub max_steps: usize,
    /// How non-determinism is resolved.
    pub scheduler: Scheduler,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_steps: 64,
            scheduler: Scheduler::seeded(0),
        }
    }
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The externally visible trace (hidden channels removed), as the
    /// paper's observer would record it.
    pub visible: Trace,
    /// The full trace including concealed communications.
    pub full: Trace,
    /// True if the network stopped because no event was enabled.
    pub deadlocked: bool,
    /// Number of events that occurred.
    pub steps: usize,
}

/// Errors from the executor.
#[derive(Debug)]
pub enum RunError {
    /// The process is not a static network.
    Net(NetError),
    /// A component failed to evaluate.
    Eval(EvalError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Net(e) => e.fmt(f),
            RunError::Eval(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunError {}

impl From<NetError> for RunError {
    fn from(e: NetError) -> Self {
        RunError::Net(e)
    }
}

impl From<EvalError> for RunError {
    fn from(e: EvalError) -> Self {
        RunError::Eval(e)
    }
}

/// Message from coordinator to a component.
enum Decision {
    /// The given event occurred and involves you: advance past it.
    Advance(Event),
    /// An event occurred that does not involve you: re-offer.
    Stay,
    /// The run is over.
    Halt,
}

/// Executes networks built from a definition list.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    defs: &'a Definitions,
    universe: &'a Universe,
}

impl<'a> Executor<'a> {
    /// Creates an executor.
    pub fn new(defs: &'a Definitions, universe: &'a Universe) -> Self {
        Executor { defs, universe }
    }

    /// Runs the named process.
    ///
    /// # Errors
    ///
    /// Fails on non-static networks and on evaluation errors inside
    /// components.
    pub fn run_name(
        &self,
        name: &str,
        env: &Env,
        opts: RunOptions,
    ) -> Result<RunResult, RunError> {
        self.run(&Process::call(name), env, opts)
    }

    /// Runs a process expression as a concurrent network.
    ///
    /// # Errors
    ///
    /// Fails on non-static networks and on evaluation errors inside
    /// components.
    pub fn run(
        &self,
        process: &Process,
        env: &Env,
        mut opts: RunOptions,
    ) -> Result<RunResult, RunError> {
        let net = flatten(process, self.defs, env)?;
        let n = net.components.len();

        // Channel pairs per component.
        let mut offer_rxs: Vec<Receiver<Result<Vec<Event>, EvalError>>> = Vec::new();
        let mut decision_txs: Vec<Sender<Decision>> = Vec::new();

        let mut full = Vec::new();
        let mut deadlocked = false;

        crossbeam::scope(|scope| -> Result<(), RunError> {
            for comp in &net.components {
                let (offer_tx, offer_rx) = unbounded();
                let (decision_tx, decision_rx) = unbounded::<Decision>();
                offer_rxs.push(offer_rx);
                decision_txs.push(decision_tx);
                let defs = self.defs;
                let universe = self.universe;
                let comp = comp.clone();
                scope.spawn(move |_| {
                    component_thread(comp, defs, universe, &offer_tx, &decision_rx);
                });
            }

            // Coordinator loop.
            for _ in 0..opts.max_steps {
                // Gather offers.
                let mut offers: Vec<Vec<Event>> = Vec::with_capacity(n);
                for rx in &offer_rxs {
                    match rx.recv() {
                        Ok(Ok(events)) => offers.push(events),
                        Ok(Err(e)) => {
                            halt_all(&decision_txs);
                            return Err(RunError::Eval(e));
                        }
                        Err(_) => {
                            halt_all(&decision_txs);
                            return Err(RunError::Eval(EvalError::UndefinedProcess(
                                "component thread died".to_string(),
                            )));
                        }
                    }
                }

                // Enabled events: offered by someone and matched by every
                // component whose alphabet contains the channel.
                let mut enabled: Vec<Event> = Vec::new();
                for (i, comp_offers) in offers.iter().enumerate() {
                    for e in comp_offers {
                        if enabled.contains(e) {
                            continue;
                        }
                        let ok = net.components.iter().enumerate().all(|(j, c)| {
                            !c.alphabet.contains(e.channel()) || offers[j].contains(e)
                        });
                        // The offering component's own alphabet always
                        // contains the channel, so `i` participates.
                        let _ = i;
                        if ok {
                            enabled.push(e.clone());
                        }
                    }
                }
                enabled.sort();
                enabled.dedup();

                if enabled.is_empty() {
                    deadlocked = true;
                    break;
                }

                let chosen = enabled[opts.scheduler.pick(&enabled)].clone();
                full.push(chosen.clone());
                for (j, tx) in decision_txs.iter().enumerate() {
                    let involved = net.components[j].alphabet.contains(chosen.channel());
                    let msg = if involved {
                        Decision::Advance(chosen.clone())
                    } else {
                        Decision::Stay
                    };
                    let _ = tx.send(msg);
                }
            }

            halt_all(&decision_txs);
            Ok(())
        })
        .expect("component thread panicked")?;

        let full = Trace::from_events(full);
        let visible = full.restrict(&net.hidden);
        Ok(RunResult {
            steps: full.len(),
            visible,
            full,
            deadlocked,
        })
    }
}

fn halt_all(txs: &[Sender<Decision>]) {
    for tx in txs {
        let _ = tx.send(Decision::Halt);
    }
}

/// The per-component loop: offer, await decision, advance.
fn component_thread(
    comp: crate::net::Component,
    defs: &Definitions,
    universe: &Universe,
    offer_tx: &Sender<Result<Vec<Event>, EvalError>>,
    decision_rx: &Receiver<Decision>,
) {
    let lts = Lts::new(defs, universe);
    let mut config = Config::new(comp.process, comp.env);
    loop {
        let steps = match lts.steps(&config) {
            Ok(s) => s,
            Err(e) => {
                let _ = offer_tx.send(Err(e));
                return;
            }
        };
        // Components are sequential: every step is visible.
        let mut events: Vec<Event> = steps
            .iter()
            .map(|s| match s {
                Step::Visible(e, _) => e.clone(),
                Step::Internal(_) => unreachable!("sequential components have no hiding"),
            })
            .collect();
        events.sort();
        events.dedup();
        if offer_tx.send(Ok(events)).is_err() {
            return;
        }
        match decision_rx.recv() {
            Ok(Decision::Advance(e)) => {
                let next = steps.into_iter().find_map(|s| match s {
                    Step::Visible(ev, c) if ev == e => Some(c),
                    _ => None,
                });
                match next {
                    Some(c) => config = c,
                    None => {
                        // Coordinator advanced us past an event we did not
                        // offer — a coordinator bug; fail loudly via the
                        // offer channel on the next loop.
                        let _ = offer_tx.send(Err(EvalError::UndefinedProcess(
                            format!("component advanced past unoffered event {e}"),
                        )));
                        return;
                    }
                }
            }
            Ok(Decision::Stay) => {}
            Ok(Decision::Halt) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_lang::examples;
    use csp_trace::Channel;

    #[test]
    fn pipeline_runs_and_copies() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 30,
                    scheduler: Scheduler::seeded(42),
                },
            )
            .unwrap();
        assert!(!res.deadlocked);
        assert_eq!(res.steps, 30);
        // The invariant output ≤ input holds on the visible trace.
        let h = res.visible.history();
        let output = h.on(&Channel::simple("output"));
        let input = h.on(&Channel::simple("input"));
        assert!(output.is_prefix_of(&input), "visible: {}", res.visible);
        // Hidden wire events were recorded in the full trace only.
        assert!(res.full.len() > res.visible.len());
        assert!(!res
            .visible
            .iter()
            .any(|e| e.channel() == &Channel::simple("wire")));
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let run = |seed| {
            exec.run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 20,
                    scheduler: Scheduler::seeded(seed),
                },
            )
            .unwrap()
            .full
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn protocol_delivers_messages_in_order() {
        let defs = examples::protocol();
        let uni = Universe::new(0).with_named(
            "M",
            [csp_trace::Value::nat(0), csp_trace::Value::nat(1)],
        );
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "protocol",
                &Env::new(),
                RunOptions {
                    max_steps: 40,
                    scheduler: Scheduler::seeded(3),
                },
            )
            .unwrap();
        let h = res.visible.history();
        let output = h.on(&Channel::simple("output"));
        let input = h.on(&Channel::simple("input"));
        assert!(output.is_prefix_of(&input), "visible: {}", res.visible);
    }

    #[test]
    fn multiplier_computes_scalar_products_live() {
        // Rows restricted to {0..2} so that the column partial sums stay
        // within the NAT bound used for the col-channel input sets
        // (max 2*2 + 3*2 + 5*2 = 20).
        let defs = csp_lang::parse_definitions(
            "mult[i:1..3] = row[i]?x:{0..2} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
             zeroes = col[0]!0 -> zeroes
             last = col[3]?y:NAT -> output!y -> last
             network = zeroes || mult[1] || mult[2] || mult[3] || last
             multiplier = chan col[0..3]; network",
        )
        .unwrap();
        let env = examples::multiplier_env(&[2, 3, 5]);
        let uni = Universe::new(20);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "multiplier",
                &env,
                RunOptions {
                    max_steps: 64,
                    scheduler: Scheduler::seeded(11),
                },
            )
            .unwrap();
        let h = res.visible.history();
        let out = h.on(&Channel::simple("output"));
        assert!(!out.is_empty(), "no outputs in {}", res.visible);
        for i in 1..=out.len() {
            let expected: i64 = (1..=3)
                .map(|j| {
                    let vj = [2, 3, 5][j - 1];
                    let row = h.on(&Channel::indexed("row", j as i64));
                    vj * row.at(i).expect("row consumed").as_int().unwrap()
                })
                .sum();
            assert_eq!(out.at(i).unwrap().as_int().unwrap(), expected);
        }
    }

    #[test]
    fn mismatched_network_deadlocks() {
        let defs = csp_lang::parse_definitions(
            "left = w!1 -> STOP
             right = w?x:{2} -> STOP
             net = left || right",
        )
        .unwrap();
        let uni = Universe::new(3);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name("net", &Env::new(), RunOptions::default())
            .unwrap();
        assert!(res.deadlocked);
        assert_eq!(res.steps, 0);
    }

    #[test]
    fn round_robin_scheduler_also_works() {
        let defs = examples::buffer2();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "buffer2",
                &Env::new(),
                RunOptions {
                    max_steps: 12,
                    scheduler: Scheduler::round_robin(),
                },
            )
            .unwrap();
        assert!(!res.deadlocked);
        let h = res.visible.history();
        assert!(h
            .on(&Channel::simple("out"))
            .is_prefix_of(&h.on(&Channel::simple("in"))));
    }
}
