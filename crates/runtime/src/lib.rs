//! # csp-runtime
//!
//! A concurrent executor for Zhou & Hoare (1981) networks: each network
//! component runs on its own OS thread, and a coordinator implements the
//! paper's simultaneous-participation rule — an event `c.m` occurs only
//! when *every* process connected to channel `c` is ready for it (§1.0,
//! §1.2(8) note). Hidden channels (`chan L; …`) fire like any other but
//! are removed from the visible trace, exactly as the semantics removes
//! them from recordable traces.
//!
//! The runtime closes the reproduction loop:
//!
//! 1. `csp-proof` certifies `P sat R` symbolically;
//! 2. `csp-semantics` defines `⟦P⟧`;
//! 3. [`Executor`] produces real traces from real threads;
//! 4. [`check_conformance`] verifies each recorded trace is in `⟦P⟧` and
//!    maintains `R` at every moment.
//!
//! ```
//! use csp_lang::{examples, Env};
//! use csp_runtime::{Executor, RunOptions, Scheduler};
//! use csp_semantics::Universe;
//!
//! let defs = examples::pipeline();
//! let uni = Universe::new(1);
//! let exec = Executor::new(&defs, &uni);
//! let res = exec.run_name("pipeline", &Env::new(), RunOptions {
//!     max_steps: 12,
//!     scheduler: Scheduler::seeded(1),
//!     ..RunOptions::default()
//! }).unwrap();
//! assert!(!res.deadlocked);
//! ```
//!
//! Runs can also be subjected to injected faults — crashes, stalls,
//! delayed offers, starvation — under a watchdog; see [`FaultPlan`],
//! [`Supervision`], and [`RunOutcome`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conformance;
mod executor;
mod fault;
mod monitor;
mod net;
mod scheduler;
mod supervisor;

pub use conformance::{check_conformance, check_conformance_with_engine, ConformanceReport};
pub use executor::{Executor, RunError, RunOptions, RunResult};
pub use fault::{ComponentSel, Fault, FaultError, FaultPlan, RestartPolicy};
pub use monitor::{
    Monitor, MonitorReport, MonitorSpec, MonitorVerdict, MonitorViolation, ViolationKind,
};
pub use net::{flatten, Component, NetError, Network};
pub use scheduler::Scheduler;
pub use supervisor::{ComponentFailure, FailureReason, RunOutcome, Supervision};

// Re-export the causal layer so downstream users get clocks and logs
// from the same crate that produces them.
pub use csp_causal::chrome::chrome_causal_trace;
pub use csp_causal::{msc, CausalError, CausalEvent, CausalEventKind, CausalLog, VectorClock};
