//! Network extraction: flattening a process expression into sequential
//! components, their alphabets, and the concealed channels.
//!
//! The paper's networks are *static*: `‖` and `chan` appear outside all
//! communication prefixes (e.g. `multiplier = chan col[0..3]; (zeroes ||
//! mult[1] || … || last)`). The runtime executes exactly this class —
//! each component becomes a thread; parallel composition inside a prefix
//! would require dynamic process creation the paper's language cannot
//! express anyway (recursion is the only control structure).

use csp_lang::{channel_alphabet, output_channels, Definitions, Env, EvalError, Process};
use csp_trace::ChannelSet;

/// One sequential component of a network.
#[derive(Debug, Clone)]
pub struct Component {
    /// Display name (the call text or a positional label).
    pub label: String,
    /// The component's process term (contains no `‖` or `chan`).
    pub process: Process,
    /// The environment it runs in.
    pub env: Env,
    /// Its channel alphabet — every event on these channels requires its
    /// participation.
    pub alphabet: ChannelSet,
    /// The channels it can *write* on (output position `c!e`) — used to
    /// orient committed communications (sender vs. readers) in the
    /// causal log.
    pub writes: ChannelSet,
}

/// A flattened network ready for execution.
#[derive(Debug, Clone)]
pub struct Network {
    /// The sequential components.
    pub components: Vec<Component>,
    /// Channels concealed by enclosing `chan L; …` layers.
    pub hidden: ChannelSet,
}

/// Errors raised while flattening.
#[derive(Debug)]
pub enum NetError {
    /// The process nests `‖` or `chan` under a communication prefix or
    /// choice, which the thread-per-component runtime cannot execute.
    NotStatic {
        /// The offending sub-term.
        offending: String,
    },
    /// Evaluation failed (undefined name, unbound subscript, …).
    Eval(EvalError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NotStatic { offending } => write!(
                f,
                "network is not static: `{offending}` nests || or chan under a prefix"
            ),
            NetError::Eval(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for NetError {}

impl From<EvalError> for NetError {
    fn from(e: EvalError) -> Self {
        NetError::Eval(e)
    }
}

/// Flattens `p` into a [`Network`]. Name references are unfolded only
/// when they expand to network structure (parallel/hiding at the top of
/// their bodies); sequential names stay folded and unfold lazily during
/// execution.
///
/// # Errors
///
/// Returns [`NetError::NotStatic`] for dynamic networks and
/// [`NetError::Eval`] for resolution failures.
pub fn flatten(p: &Process, defs: &Definitions, env: &Env) -> Result<Network, NetError> {
    let mut components = Vec::new();
    let mut hidden = ChannelSet::new();
    walk(p, defs, env, &mut components, &mut hidden, &mut Vec::new())?;
    Ok(Network { components, hidden })
}

fn walk(
    p: &Process,
    defs: &Definitions,
    env: &Env,
    components: &mut Vec<Component>,
    hidden: &mut ChannelSet,
    unfold_stack: &mut Vec<String>,
) -> Result<(), NetError> {
    match p {
        Process::Parallel { left, right, .. } => {
            walk(left, defs, env, components, hidden, unfold_stack)?;
            walk(right, defs, env, components, hidden, unfold_stack)
        }
        Process::Hide { channels, body } => {
            for c in channels {
                hidden.insert(c.resolve(env)?);
            }
            walk(body, defs, env, components, hidden, unfold_stack)
        }
        Process::Call { name, args } => {
            // Unfold once to see whether the body is network structure.
            if unfold_stack.iter().any(|n| n == name) {
                // Recursive through a call without communication —
                // treat as a sequential component (the executor's fuel
                // handles it).
                return push_component(p, defs, env, components);
            }
            let vals = args
                .iter()
                .map(|e| e.eval(env))
                .collect::<Result<Vec<_>, _>>()
                .map_err(NetError::Eval)?;
            let (body, scope) = defs.resolve_call(name, &vals, env)?;
            if contains_network_structure(body) {
                unfold_stack.push(name.clone());
                let r = walk(body, defs, &scope, components, hidden, unfold_stack);
                unfold_stack.pop();
                r
            } else {
                push_component(p, defs, env, components)
            }
        }
        Process::Stop
        | Process::Output { .. }
        | Process::Input { .. }
        | Process::Choice(_, _)
        | Process::Error(_) => {
            if contains_network_structure(p) {
                return Err(NetError::NotStatic {
                    offending: p.to_string(),
                });
            }
            push_component(p, defs, env, components)
        }
    }
}

fn push_component(
    p: &Process,
    defs: &Definitions,
    env: &Env,
    components: &mut Vec<Component>,
) -> Result<(), NetError> {
    let alphabet = channel_alphabet(p, defs, env)?;
    let writes = output_channels(p, defs, env)?;
    components.push(Component {
        label: p.to_string(),
        process: p.clone(),
        env: env.clone(),
        alphabet,
        writes,
    });
    Ok(())
}

/// True if the term contains `‖` or `chan` anywhere below a prefix or
/// choice (directly; calls are checked at unfold time).
fn contains_network_structure(p: &Process) -> bool {
    match p {
        Process::Stop | Process::Call { .. } | Process::Error(_) => false,
        Process::Output { then, .. } | Process::Input { then, .. } => {
            contains_network_structure(then)
        }
        Process::Choice(a, b) => contains_network_structure(a) || contains_network_structure(b),
        Process::Parallel { .. } | Process::Hide { .. } => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_lang::examples;
    use csp_trace::Channel;

    #[test]
    fn pipeline_flattens_to_two_components() {
        let defs = examples::pipeline();
        let net = flatten(&Process::call("pipeline"), &defs, &Env::new()).unwrap();
        assert_eq!(net.components.len(), 2);
        assert!(net.hidden.contains(&Channel::simple("wire")));
        let copier = &net.components[0];
        assert!(copier.alphabet.contains(&Channel::simple("input")));
        assert!(copier.alphabet.contains(&Channel::simple("wire")));
    }

    #[test]
    fn multiplier_flattens_to_five_components() {
        let defs = examples::multiplier();
        let env = examples::multiplier_env(&[1, 1, 1]);
        let net = flatten(&Process::call("multiplier"), &defs, &env).unwrap();
        assert_eq!(net.components.len(), 5);
        assert_eq!(net.hidden.len(), 4); // col[0..3]
                                         // mult[2]'s alphabet: row[2], col[1], col[2].
        let m2 = net
            .components
            .iter()
            .find(|c| c.label.contains("mult[2]"))
            .expect("mult[2] present");
        assert!(m2.alphabet.contains(&Channel::indexed("row", 2)));
        assert!(m2.alphabet.contains(&Channel::indexed("col", 1)));
        assert!(m2.alphabet.contains(&Channel::indexed("col", 2)));
        assert_eq!(m2.alphabet.len(), 3);
    }

    #[test]
    fn sequential_process_is_single_component() {
        let defs = examples::pipeline();
        let net = flatten(&Process::call("copier"), &defs, &Env::new()).unwrap();
        assert_eq!(net.components.len(), 1);
        assert!(net.hidden.is_empty());
    }

    #[test]
    fn protocol_flattens_with_hidden_wire() {
        let defs = examples::protocol();
        let net = flatten(&Process::call("protocol"), &defs, &Env::new()).unwrap();
        assert_eq!(net.components.len(), 2);
        assert!(net.hidden.contains(&Channel::simple("wire")));
    }
}
