//! Conformance checking: a recorded run must be a behaviour the
//! semantics admits, and must maintain every proven invariant at every
//! moment.
//!
//! This closes the loop of the reproduction: the *proof system* certifies
//! `P sat R`; the *model* defines `⟦P⟧`; the *runtime* produces actual
//! traces; conformance shows the three agree on real executions.

use csp_assert::{Assertion, EvalCtx, FuncTable};
use csp_lang::{Definitions, Env, EvalError, Process};
use csp_semantics::{CompiledLts, CompiledStep, Config, Engine, Lts, StateId, Step, Universe};
use csp_trace::Trace;

/// The verdict of a conformance check.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// The recorded trace is a member of the semantic trace set.
    pub trace_admitted: bool,
    /// Index of the first event the semantics could not match, if any.
    pub diverged_at: Option<usize>,
    /// For each checked invariant: its text and the index of the first
    /// prefix violating it (`None` = held throughout).
    pub invariants: Vec<(String, Option<usize>)>,
}

impl ConformanceReport {
    /// True when the trace is admitted and every invariant held.
    pub fn conforms(&self) -> bool {
        self.trace_admitted && self.invariants.iter().all(|(_, v)| v.is_none())
    }
}

/// Replays a recorded *visible* trace against the operational semantics
/// of `process` and checks the given invariants at every prefix.
///
/// The replay tracks the set of configurations the network could be in
/// (hidden communications may interleave anywhere, so each visible event
/// is matched after up to `internal_budget` concealed steps).
///
/// # Errors
///
/// Propagates evaluation failures from the semantics or the assertions.
pub fn check_conformance(
    process: &Process,
    env: &Env,
    defs: &Definitions,
    universe: &Universe,
    visible: &Trace,
    invariants: &[Assertion],
    internal_budget: usize,
) -> Result<ConformanceReport, EvalError> {
    check_conformance_with_engine(
        process,
        env,
        defs,
        universe,
        visible,
        invariants,
        internal_budget,
        Engine::Auto,
    )
}

/// [`check_conformance`] with an explicit backend choice. The engines
/// track identical frontiers (the compiled one holds interned state ids
/// instead of configurations), so the reports are the same; the compiled
/// replay pays the stepping cost once per distinct network state rather
/// than once per frontier occurrence.
///
/// # Errors
///
/// Propagates evaluation failures from the semantics or the assertions.
#[allow(clippy::too_many_arguments)]
pub fn check_conformance_with_engine(
    process: &Process,
    env: &Env,
    defs: &Definitions,
    universe: &Universe,
    visible: &Trace,
    invariants: &[Assertion],
    internal_budget: usize,
    engine: Engine,
) -> Result<ConformanceReport, EvalError> {
    let diverged_at = match engine.resolve(defs, process) {
        Engine::Compiled => {
            replay_compiled(process, env, defs, universe, visible, internal_budget)?
        }
        _ => replay_enumerative(process, env, defs, universe, visible, internal_budget)?,
    };

    // Invariants at every prefix (including the complete trace and <>).
    let funcs = FuncTable::with_builtins();
    let mut inv_results = Vec::with_capacity(invariants.len());
    for inv in invariants {
        let mut first_violation = None;
        for (i, prefix) in visible.prefixes().into_iter().enumerate() {
            let h = prefix.history();
            let ctx = EvalCtx::new(env, &h, &funcs, universe);
            let ok = ctx.assertion(inv).map_err(|e| match e {
                csp_assert::AssertError::Eval(e) => e,
                csp_assert::AssertError::UnknownFunction(n) => {
                    EvalError::UnboundVariable(format!("function {n}"))
                }
            })?;
            if !ok {
                first_violation = Some(i);
                break;
            }
        }
        inv_results.push((inv.to_string(), first_violation));
    }

    Ok(ConformanceReport {
        trace_admitted: diverged_at.is_none(),
        diverged_at,
        invariants: inv_results,
    })
}

/// The enumerative replay: tracks a frontier of configurations.
fn replay_enumerative(
    process: &Process,
    env: &Env,
    defs: &Definitions,
    universe: &Universe,
    visible: &Trace,
    internal_budget: usize,
) -> Result<Option<usize>, EvalError> {
    let lts = Lts::new(defs, universe);
    let mut frontier = vec![Config::new(process.clone(), env.clone())];
    for (i, event) in visible.iter().enumerate() {
        let mut next = Vec::new();
        for cfg in &frontier {
            collect_after(&lts, cfg, event, internal_budget, &mut next)?;
        }
        next.sort();
        next.dedup();
        if next.is_empty() {
            return Ok(Some(i));
        }
        frontier = next;
    }
    Ok(None)
}

/// The compiled replay: the same frontier tracking over interned state
/// ids, with successor rows memoised across the whole replay.
fn replay_compiled(
    process: &Process,
    env: &Env,
    defs: &Definitions,
    universe: &Universe,
    visible: &Trace,
    internal_budget: usize,
) -> Result<Option<usize>, EvalError> {
    let mut lts = CompiledLts::new(defs, universe);
    let start = lts.intern(Config::new(process.clone(), env.clone()));
    let mut frontier = vec![start];
    for (i, event) in visible.iter().enumerate() {
        let mut next = Vec::new();
        for &id in &frontier {
            collect_after_compiled(&mut lts, id, event, internal_budget, &mut next)?;
        }
        next.sort();
        next.dedup();
        if next.is_empty() {
            return Ok(Some(i));
        }
        frontier = next;
    }
    Ok(None)
}

/// Collects every configuration reachable from `cfg` by at most `budget`
/// internal steps followed by the visible `event`.
fn collect_after(
    lts: &Lts<'_>,
    cfg: &Config,
    event: &csp_trace::Event,
    budget: usize,
    out: &mut Vec<Config>,
) -> Result<(), EvalError> {
    for step in lts.steps(cfg)? {
        match step {
            Step::Visible(e, next) => {
                if &e == event {
                    out.push(next);
                }
            }
            Step::Internal(next) => {
                if budget > 0 {
                    collect_after(lts, &next, event, budget - 1, out)?;
                }
            }
        }
    }
    Ok(())
}

/// [`collect_after`] over compiled rows. Also the stepping primitive of
/// the online [`crate::Monitor`], which tracks the same frontier one
/// event at a time while the run executes.
pub(crate) fn collect_after_compiled(
    lts: &mut CompiledLts<'_>,
    id: StateId,
    event: &csp_trace::Event,
    budget: usize,
    out: &mut Vec<StateId>,
) -> Result<(), EvalError> {
    let n = lts.steps_of(id)?.len();
    for k in 0..n {
        match lts.steps_of(id)?[k].clone() {
            CompiledStep::Visible(e, next) => {
                if &e == event {
                    out.push(next);
                }
            }
            CompiledStep::Internal(next) => {
                if budget > 0 {
                    collect_after_compiled(lts, next, event, budget - 1, out)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Executor, RunOptions, Scheduler};
    use csp_assert::{parse_assertion, ChannelInfo};
    use csp_lang::examples;
    use csp_trace::Value;

    fn info() -> ChannelInfo {
        ChannelInfo::new()
            .with_channels(["input", "wire", "output", "in", "out"])
            .with_arrays(["row", "col"])
            .with_funcs(["f"])
    }

    #[test]
    fn recorded_pipeline_run_conforms() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 24,
                    scheduler: Scheduler::seeded(5),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let inv = parse_assertion("output <= input", &info()).unwrap();
        let report = check_conformance(
            &Process::call("pipeline"),
            &Env::new(),
            &defs,
            &uni,
            &res.visible,
            &[inv],
            8,
        )
        .unwrap();
        assert!(report.conforms(), "{report:?}");
    }

    #[test]
    fn protocol_run_conforms_with_proven_invariant() {
        let defs = examples::protocol();
        let uni = Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "protocol",
                &Env::new(),
                RunOptions {
                    max_steps: 30,
                    scheduler: Scheduler::seeded(8),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let inv = parse_assertion("output <= input", &info()).unwrap();
        let report = check_conformance(
            &Process::call("protocol"),
            &Env::new(),
            &defs,
            &uni,
            &res.visible,
            &[inv],
            12,
        )
        .unwrap();
        assert!(report.conforms(), "{report:?}");
    }

    #[test]
    fn corrupted_trace_is_rejected() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        // A trace the pipeline cannot produce: output before any input.
        let bogus = Trace::parse_like([("output", Value::nat(1))]);
        let report = check_conformance(
            &Process::call("pipeline"),
            &Env::new(),
            &defs,
            &uni,
            &bogus,
            &[],
            8,
        )
        .unwrap();
        assert!(!report.trace_admitted);
        assert_eq!(report.diverged_at, Some(0));
    }

    #[test]
    fn engines_agree_on_replay() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 24,
                    scheduler: Scheduler::seeded(5),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let bogus = Trace::parse_like([("output", Value::nat(1))]);
        for trace in [&res.visible, &bogus] {
            let mut reports = Vec::new();
            for engine in [Engine::Enumerative, Engine::Compiled, Engine::Auto] {
                reports.push(
                    check_conformance_with_engine(
                        &Process::call("pipeline"),
                        &Env::new(),
                        &defs,
                        &uni,
                        trace,
                        &[],
                        8,
                        engine,
                    )
                    .unwrap(),
                );
            }
            for r in &reports[1..] {
                assert_eq!(r.trace_admitted, reports[0].trace_admitted);
                assert_eq!(r.diverged_at, reports[0].diverged_at);
            }
        }
    }

    #[test]
    fn invariant_violation_is_located() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        // Check a false invariant against a legitimate trace.
        let exec = Executor::new(&defs, &uni);
        let res = exec
            .run_name(
                "pipeline",
                &Env::new(),
                RunOptions {
                    max_steps: 16,
                    scheduler: Scheduler::seeded(1),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let false_inv = parse_assertion("#input <= 0", &info()).unwrap();
        let report = check_conformance(
            &Process::call("pipeline"),
            &Env::new(),
            &defs,
            &uni,
            &res.visible,
            &[false_inv],
            8,
        )
        .unwrap();
        assert!(report.trace_admitted);
        let (_, violation) = &report.invariants[0];
        assert!(violation.is_some());
        assert!(!report.conforms());
    }
}
