//! Supervision for network runs: watchdog limits and the structured
//! run outcome.
//!
//! The executor's coordinator is the natural supervisor — it already
//! mediates every communication, so it is the one place that can notice
//! a component dying (its offer channel disconnects), a component
//! wedging (its offer never arrives), or the network spinning on
//! concealed events without visible progress. [`Supervision`] bounds how
//! long the coordinator waits at each of those points, and
//! [`RunOutcome`] reports what actually ended the run — the distinctions
//! (`Deadlocked` vs `Livelock` vs `ComponentFailed` …) that §4 of the
//! paper points out the trace model itself cannot draw.

use std::time::Duration;

/// Watchdog limits for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supervision {
    /// How long the coordinator waits for any single component's offer
    /// before declaring the component hung. Generous by default; tighten
    /// it in tests.
    pub round_timeout: Duration,
    /// Wall-clock budget for the whole run; `None` means unbounded.
    /// When exceeded the run stops with [`RunOutcome::TimedOut`].
    pub deadline: Option<Duration>,
    /// Livelock detector: if this many *consecutive* concealed events
    /// occur with no visible event between them, the run stops with
    /// [`RunOutcome::Livelock`]. `0` disables the detector.
    pub livelock_window: usize,
    /// Restart-intensity cap: how many times any single component may be
    /// respawned before the supervisor gives up and leaves it dead. This
    /// bounds crash/restart loops (a component whose evaluation fails
    /// deterministically would otherwise respawn forever).
    pub max_restarts: usize,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            round_timeout: Duration::from_secs(10),
            deadline: None,
            livelock_window: 0,
            max_restarts: 4,
        }
    }
}

impl Supervision {
    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-offer timeout.
    #[must_use]
    pub fn with_round_timeout(mut self, timeout: Duration) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// Sets the livelock window (consecutive hidden events).
    #[must_use]
    pub fn with_livelock_window(mut self, window: usize) -> Self {
        self.livelock_window = window;
        self
    }

    /// Sets the per-component restart-intensity cap.
    #[must_use]
    pub fn with_max_restarts(mut self, max: usize) -> Self {
        self.max_restarts = max;
        self
    }
}

/// Why a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The step budget was used up with the network still live.
    Completed,
    /// No event was enabled and nothing was pending: a genuine deadlock.
    Deadlocked,
    /// The wall-clock deadline expired.
    TimedOut {
        /// Events recorded before time ran out.
        at_step: usize,
    },
    /// The network kept communicating on concealed channels without
    /// visible progress for longer than the livelock window.
    Livelock {
        /// Events recorded when the detector fired.
        at_step: usize,
        /// Length of the concealed-event streak.
        hidden_streak: usize,
    },
    /// A component failed (injected crash, evaluation error, hang, or
    /// failed recovery) and stayed dead; the rest of the network was
    /// allowed to degrade gracefully around it.
    ComponentFailed {
        /// Label of the first component that failed unrecovered.
        label: String,
        /// Global event count at the moment of that failure.
        at_step: usize,
    },
    /// A component thread panicked unexpectedly (not an injected fault).
    Crashed {
        /// Label of the panicked component.
        label: String,
        /// Global event count at the moment of the panic.
        at_step: usize,
    },
}

impl RunOutcome {
    /// True only for [`RunOutcome::Completed`].
    pub fn is_clean(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// True for [`RunOutcome::Deadlocked`].
    pub fn is_deadlock(&self) -> bool {
        matches!(self, RunOutcome::Deadlocked)
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Completed => write!(f, "completed"),
            RunOutcome::Deadlocked => write!(f, "deadlocked"),
            RunOutcome::TimedOut { at_step } => {
                write!(f, "timed out after {at_step} event(s)")
            }
            RunOutcome::Livelock {
                at_step,
                hidden_streak,
            } => write!(
                f,
                "livelock after {at_step} event(s) ({hidden_streak} concealed events \
                 without visible progress)"
            ),
            RunOutcome::ComponentFailed { label, at_step } => {
                write!(f, "component `{label}` failed at step {at_step}")
            }
            RunOutcome::Crashed { label, at_step } => {
                write!(f, "component `{label}` panicked at step {at_step}")
            }
        }
    }
}

/// Why a particular component died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// Killed by a [`crate::Fault::Crash`] in the fault plan.
    InjectedCrash,
    /// The thread panicked on its own.
    Panicked,
    /// Evaluation of the component's process failed.
    EvalFailed(String),
    /// Its offer did not arrive within the round timeout.
    Hung,
    /// A respawned component could not re-offer an event of its recorded
    /// history — replay diverged (e.g. same-label nondeterminism).
    ReplayDiverged,
    /// Its channel closed without an error report.
    ChannelClosed,
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::InjectedCrash => write!(f, "injected crash"),
            FailureReason::Panicked => write!(f, "panicked"),
            FailureReason::EvalFailed(e) => write!(f, "evaluation failed: {e}"),
            FailureReason::Hung => write!(f, "hung (offer timed out)"),
            FailureReason::ReplayDiverged => write!(f, "replay diverged"),
            FailureReason::ChannelClosed => write!(f, "channel closed"),
        }
    }
}

/// One component death observed by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentFailure {
    /// Index of the component in the flattened network.
    pub index: usize,
    /// Its display label.
    pub label: String,
    /// Global event count when it died.
    pub at_step: usize,
    /// Why it died.
    pub reason: FailureReason,
    /// True when a restart policy brought it back successfully.
    pub recovered: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_display_is_informative() {
        let o = RunOutcome::ComponentFailed {
            label: "copier".into(),
            at_step: 4,
        };
        assert_eq!(o.to_string(), "component `copier` failed at step 4");
        assert!(!o.is_clean());
        assert!(RunOutcome::Completed.is_clean());
        assert!(RunOutcome::Deadlocked.is_deadlock());
    }

    #[test]
    fn supervision_builders_compose() {
        let s = Supervision::default()
            .with_deadline(Duration::from_millis(250))
            .with_round_timeout(Duration::from_millis(50))
            .with_livelock_window(64);
        assert_eq!(s.deadline, Some(Duration::from_millis(250)));
        assert_eq!(s.round_timeout, Duration::from_millis(50));
        assert_eq!(s.livelock_window, 64);
    }
}
