//! Scheduling policies for resolving non-determinism at run time.
//!
//! §1.2(8): "If more than one such communication is possible, the choice
//! between them is non-determinate." An executor must pick; the policy
//! decides how, and a seeded policy makes runs reproducible.

use csp_trace::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the executor resolves a choice among enabled events.
#[derive(Debug)]
pub enum Scheduler {
    /// Always the first enabled event in deterministic order. Useful for
    /// regression tests.
    First,
    /// Cycle through positions — a crude fairness device.
    RoundRobin {
        /// Next starting offset.
        cursor: usize,
    },
    /// Uniformly random with a fixed seed — reproducible randomness.
    /// (Boxed: `StdRng` is large relative to the other variants.)
    Seeded(Box<StdRng>),
}

impl Scheduler {
    /// A seeded random scheduler.
    pub fn seeded(seed: u64) -> Self {
        Scheduler::Seeded(Box::new(StdRng::seed_from_u64(seed)))
    }

    /// A round-robin scheduler.
    pub fn round_robin() -> Self {
        Scheduler::RoundRobin { cursor: 0 }
    }

    /// Picks one index among `enabled.len()` candidates, or `None` when
    /// nothing is enabled (the caller treats that as a deadlock rather
    /// than this policy treating it as a bug).
    pub fn pick(&mut self, enabled: &[Event]) -> Option<usize> {
        if enabled.is_empty() {
            return None;
        }
        Some(match self {
            Scheduler::First => 0,
            Scheduler::RoundRobin { cursor } => {
                let i = *cursor % enabled.len();
                *cursor = cursor.wrapping_add(1);
                i
            }
            Scheduler::Seeded(rng) => rng.gen_range(0..enabled.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::{Channel, Value};

    fn events(n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(Channel::simple("c"), Value::nat(i as u32)))
            .collect()
    }

    #[test]
    fn first_always_picks_zero() {
        let mut s = Scheduler::First;
        assert_eq!(s.pick(&events(3)), Some(0));
        assert_eq!(s.pick(&events(3)), Some(0));
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = Scheduler::round_robin();
        let picks: Vec<usize> = (0..6).map(|_| s.pick(&events(3)).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn seeded_is_reproducible_and_in_range() {
        let mut a = Scheduler::seeded(9);
        let mut b = Scheduler::seeded(9);
        for _ in 0..20 {
            let ea = a.pick(&events(5)).unwrap();
            let eb = b.pick(&events(5)).unwrap();
            assert_eq!(ea, eb);
            assert!(ea < 5);
        }
    }

    #[test]
    fn empty_enabled_set_yields_none_for_every_policy() {
        for mut s in [
            Scheduler::First,
            Scheduler::round_robin(),
            Scheduler::seeded(1),
        ] {
            assert_eq!(s.pick(&[]), None);
        }
    }
}
