//! The online run monitor: runtime verification of an executing network
//! against its own semantics and `sat`-style assertions.
//!
//! Where [`crate::check_conformance`] replays a *finished* trace, the
//! monitor is fed each visible event as the coordinator commits it. It
//! tracks the same frontier the compiled conformance replay would — a
//! set of [`StateId`]s in a [`CompiledLts`], advanced by one visible
//! event (plus up to a budget of concealed steps) per observation — so
//! trace-membership is decided incrementally, and every observed prefix
//! is checked against the monitored assertions the way `P sat R`
//! quantifies over prefixes (§2.2). The first event the semantics cannot
//! match, or the first prefix falsifying an assertion, latches a
//! [`MonitorViolation`]; the run continues (observation must not change
//! the observed system) but the verdict is final.

use csp_assert::{Assertion, EvalCtx, FuncTable};
use csp_lang::{Definitions, Env, Process};
use csp_semantics::{CompiledLts, Config, StateId, Universe};
use csp_trace::{Event, Trace};

use crate::conformance::collect_after_compiled;

/// What an online monitor should check, carried in
/// [`crate::RunOptions::monitor`].
#[derive(Debug, Clone, Default)]
pub struct MonitorSpec {
    /// Assertions checked on every visible prefix (empty = membership
    /// checking only).
    pub assertions: Vec<Assertion>,
    /// Concealed steps the spec process may take between two visible
    /// events (same role as the conformance `internal_budget`).
    pub internal_budget: usize,
}

impl MonitorSpec {
    /// Membership-only monitoring with the default internal budget.
    pub fn new() -> Self {
        MonitorSpec {
            assertions: Vec::new(),
            internal_budget: 32,
        }
    }

    /// Adds an assertion to check at every visible prefix.
    #[must_use]
    pub fn with_assertion(mut self, a: Assertion) -> Self {
        self.assertions.push(a);
        self
    }

    /// Overrides the concealed-step budget per visible event.
    #[must_use]
    pub fn with_internal_budget(mut self, budget: usize) -> Self {
        self.internal_budget = budget;
        self
    }
}

/// The monitor's verdict over the events it has seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// Every observed prefix is a trace of the spec and satisfies every
    /// monitored assertion.
    Conforming,
    /// A violation was observed (see the attached
    /// [`MonitorViolation`]).
    Violated,
    /// The monitor hit an evaluation error and stopped judging.
    Aborted,
}

impl MonitorVerdict {
    /// True iff no violation (and no abort) was observed.
    pub fn is_conforming(&self) -> bool {
        matches!(self, MonitorVerdict::Conforming)
    }
}

impl std::fmt::Display for MonitorVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorVerdict::Conforming => write!(f, "conforming"),
            MonitorVerdict::Violated => write!(f, "violated"),
            MonitorVerdict::Aborted => write!(f, "aborted"),
        }
    }
}

/// Why an observed event was flagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// No spec behaviour matches the observed prefix: the event is not
    /// in `traces(P)` after the previously observed prefix.
    NotInTraces,
    /// The observed prefix falsifies a monitored assertion (its text).
    AssertionFailed(String),
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::NotInTraces => write!(f, "event not admitted by the spec"),
            ViolationKind::AssertionFailed(a) => write!(f, "assertion `{a}` falsified"),
        }
    }
}

/// The first divergent event of a monitored run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorViolation {
    /// Index of the offending event in the *full* committed trace.
    pub step: usize,
    /// Index of the offending event in the visible trace.
    pub visible_index: usize,
    /// The offending event itself.
    pub event: Event,
    /// What went wrong.
    pub kind: ViolationKind,
    /// Causal-log seqs of the events strictly happens-before the
    /// offending one (its past cone), filled in by the executor from the
    /// run's [`csp_causal::CausalLog`].
    pub causal_history: Vec<usize>,
}

impl std::fmt::Display for MonitorViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {} (visible #{}) `{}`: {}",
            self.step, self.visible_index, self.event, self.kind
        )
    }
}

/// What a monitored run reports, in [`crate::RunResult::monitor`].
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// The verdict over the whole observed run.
    pub verdict: MonitorVerdict,
    /// The first divergent event, when `verdict` is `Violated`.
    pub violation: Option<MonitorViolation>,
    /// Visible events the monitor stepped through.
    pub events_checked: usize,
    /// The evaluation error that aborted monitoring, if any.
    pub error: Option<String>,
}

impl MonitorReport {
    /// True iff the observed run conformed.
    pub fn is_conforming(&self) -> bool {
        self.verdict.is_conforming()
    }
}

/// The online monitor itself. Owns a [`CompiledLts`] over the *spec*
/// process (the same term the executor runs) and advances a frontier of
/// state ids by one visible event per [`Monitor::observe`] call.
///
/// Reusing `CompiledLts` rather than a purpose-built automaton means the
/// monitor judges with exactly the semantics the verifier proves against
/// — successor rows are interned and memoised, so a long run pays the
/// stepping cost once per distinct network state.
pub struct Monitor<'a> {
    lts: CompiledLts<'a>,
    frontier: Vec<StateId>,
    env: Env,
    universe: &'a Universe,
    funcs: FuncTable,
    assertions: Vec<Assertion>,
    budget: usize,
    visible: Vec<Event>,
    violation: Option<MonitorViolation>,
    error: Option<String>,
    events_checked: usize,
}

impl<'a> Monitor<'a> {
    /// A monitor for `process` (the executed network's own term) under
    /// `spec`.
    pub fn new(
        process: &Process,
        env: &Env,
        defs: &'a Definitions,
        universe: &'a Universe,
        spec: MonitorSpec,
    ) -> Self {
        let mut lts = CompiledLts::new(defs, universe);
        let start = lts.intern(Config::new(process.clone(), env.clone()));
        Monitor {
            lts,
            frontier: vec![start],
            env: env.clone(),
            universe,
            funcs: FuncTable::with_builtins(),
            assertions: spec.assertions,
            budget: spec.internal_budget,
            visible: Vec::new(),
            violation: None,
            error: None,
            events_checked: 0,
        }
    }

    /// True once a violation or abort has latched; later observations
    /// are ignored (the verdict names the *first* divergent event).
    pub fn is_latched(&self) -> bool {
        self.violation.is_some() || self.error.is_some()
    }

    /// Feeds one committed visible event (`step` = its index in the full
    /// trace). Returns `true` while the run still conforms. Never
    /// panics and never propagates errors into the run: an evaluation
    /// error latches an aborted verdict instead.
    pub fn observe(&mut self, event: Event, step: usize) -> bool {
        if self.is_latched() {
            return false;
        }
        let visible_index = self.visible.len();
        self.events_checked += 1;

        // One frontier step: up to `budget` concealed moves, then the
        // observed event. Empty next-frontier = the spec admits no such
        // continuation.
        let mut next = Vec::new();
        for i in 0..self.frontier.len() {
            let id = self.frontier[i];
            if let Err(e) =
                collect_after_compiled(&mut self.lts, id, &event, self.budget, &mut next)
            {
                self.error = Some(e.to_string());
                return false;
            }
        }
        next.sort();
        next.dedup();
        if next.is_empty() {
            self.violation = Some(MonitorViolation {
                step,
                visible_index,
                event,
                kind: ViolationKind::NotInTraces,
                causal_history: Vec::new(),
            });
            return false;
        }
        self.frontier = next;
        self.visible.push(event);

        // `P sat R` quantifies over every trace prefix: check the newly
        // extended prefix against each monitored assertion.
        if !self.assertions.is_empty() {
            let prefix = Trace::from_events(self.visible.iter().copied());
            let h = prefix.history();
            let ctx = EvalCtx::new(&self.env, &h, &self.funcs, self.universe);
            for a in &self.assertions {
                match ctx.assertion(a) {
                    Ok(true) => {}
                    Ok(false) => {
                        self.violation = Some(MonitorViolation {
                            step,
                            visible_index,
                            event,
                            kind: ViolationKind::AssertionFailed(a.to_string()),
                            causal_history: Vec::new(),
                        });
                        return false;
                    }
                    Err(e) => {
                        self.error = Some(match e {
                            csp_assert::AssertError::Eval(e) => e.to_string(),
                            csp_assert::AssertError::UnknownFunction(n) => {
                                format!("unknown function {n}")
                            }
                        });
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The verdict over everything observed so far.
    pub fn report(&self) -> MonitorReport {
        let verdict = if self.error.is_some() {
            MonitorVerdict::Aborted
        } else if self.violation.is_some() {
            MonitorVerdict::Violated
        } else {
            MonitorVerdict::Conforming
        };
        MonitorReport {
            verdict,
            violation: self.violation.clone(),
            events_checked: self.events_checked,
            error: self.error.clone(),
        }
    }

    /// Attaches a causal history (log seqs happens-before the violating
    /// event) to the latched violation, if any.
    pub fn attach_causal_history(&mut self, history: Vec<usize>) {
        if let Some(v) = &mut self.violation {
            v.causal_history = history;
        }
    }

    /// Step index (in the full trace) of the latched violation, if any.
    pub fn violation_step(&self) -> Option<usize> {
        self.violation.as_ref().map(|v| v.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_assert::{parse_assertion, ChannelInfo};
    use csp_lang::examples;
    use csp_trace::{Channel, Value};

    fn info() -> ChannelInfo {
        ChannelInfo::new()
            .with_channels(["input", "wire", "output"])
            .with_arrays(["col"])
            .with_funcs(["f"])
    }

    #[test]
    fn conforming_prefix_keeps_the_monitor_green() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let spec =
            MonitorSpec::new().with_assertion(parse_assertion("output <= input", &info()).unwrap());
        let mut m = Monitor::new(&Process::call("pipeline"), &Env::new(), &defs, &uni, spec);
        // input.0 then (hidden wire.0 happens internally) output.0.
        assert!(m.observe(Event::new(Channel::simple("input"), Value::nat(0)), 0));
        assert!(m.observe(Event::new(Channel::simple("output"), Value::nat(0)), 2));
        let r = m.report();
        assert!(r.is_conforming(), "{r:?}");
        assert_eq!(r.events_checked, 2);
    }

    #[test]
    fn out_of_spec_event_names_the_first_bad_step() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let mut m = Monitor::new(
            &Process::call("pipeline"),
            &Env::new(),
            &defs,
            &uni,
            MonitorSpec::new(),
        );
        // The pipeline cannot emit output before any input.
        let bad = Event::new(Channel::simple("output"), Value::nat(1));
        assert!(!m.observe(bad, 0));
        let r = m.report();
        assert_eq!(r.verdict, MonitorVerdict::Violated);
        let v = r.violation.unwrap();
        assert_eq!(v.step, 0);
        assert_eq!(v.visible_index, 0);
        assert_eq!(v.event, bad);
        assert_eq!(v.kind, ViolationKind::NotInTraces);
        // Latches: later (even legal) events do not move the verdict.
        assert!(!m.observe(Event::new(Channel::simple("input"), Value::nat(0)), 1));
        assert_eq!(m.report().events_checked, 1);
    }

    #[test]
    fn falsified_assertion_is_flagged_with_its_text() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let spec =
            MonitorSpec::new().with_assertion(parse_assertion("#input <= 0", &info()).unwrap());
        let mut m = Monitor::new(&Process::call("pipeline"), &Env::new(), &defs, &uni, spec);
        assert!(!m.observe(Event::new(Channel::simple("input"), Value::nat(0)), 0));
        let r = m.report();
        assert_eq!(r.verdict, MonitorVerdict::Violated);
        match r.violation.unwrap().kind {
            ViolationKind::AssertionFailed(text) => assert!(text.contains("#input")),
            other => panic!("expected AssertionFailed, got {other:?}"),
        }
    }
}
