//! A minimal HTTP/1.1 client for the verification service: one
//! keep-alive connection, `Content-Length` framing, no redirects, no
//! TLS. Shared by the bench load driver (`bench-json --serve`), the
//! integration tests, and the tutorial's executable walkthrough, so the
//! zero-dependency rule holds on both ends of the socket.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body decoded as UTF-8.
    pub body: String,
}

impl ClientResponse {
    /// Looks up a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A persistent connection to one server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

/// Strips the scheme from a base URL, yielding `host:port`.
///
/// # Errors
///
/// Rejects non-`http://` schemes (there is no TLS here).
pub fn host_of(base_url: &str) -> Result<String, String> {
    let rest = base_url
        .strip_prefix("http://")
        .ok_or_else(|| format!("expected an http:// URL, got `{base_url}`"))?;
    Ok(rest.trim_end_matches('/').to_string())
}

impl Client {
    /// Connects to `http://host:port`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures; a malformed URL comes back as
    /// `InvalidInput`.
    pub fn connect(base_url: &str) -> std::io::Result<Client> {
        let host = host_of(base_url)
            .map_err(|m| std::io::Error::new(std::io::ErrorKind::InvalidInput, m))?;
        let stream = TcpStream::connect(&host)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        // Request = one coalesced write; Nagle would otherwise hold the
        // tail segment for the peer's delayed ACK (~40 ms per request).
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            host,
        })
    }

    /// Issues a `GET`.
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// Issues a `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed responses.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.host,
            body.len(),
        );
        let mut wire = head.into_bytes();
        wire.extend_from_slice(body.as_bytes());
        self.writer.write_all(&wire)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        if status_line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad("malformed header"))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
