//! A deliberately small HTTP/1.1 subset: enough for request/response
//! JSON over keep-alive connections, and nothing else.
//!
//! The workspace is offline and zero-dependency, so there is no hyper
//! or axum here (see DESIGN §10 for the full argument): the service
//! speaks to trusted load drivers and editors on a LAN, every request
//! fits the `Content-Length` framing, and the entire parser is ~200
//! auditable lines. Limits are enforced on header count/size and body
//! size; chunked encoding, upgrades, and multipart are out of scope and
//! rejected.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;

/// Upper bound on one header section (request line included).
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// How many short read timeouts a started request may ride out before
/// the connection is dropped as too slow (timeouts are ~200 ms each).
const MAX_MIDREQUEST_TIMEOUTS: usize = 150;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// Request target, e.g. `/v1/lint`.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// One response about to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — cache status, timing.
    pub extra: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response (the Prometheus exposition).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            extra: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds one extra header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.extra.push((name.to_string(), value.into()));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Reads one request off a keep-alive connection.
///
/// Returns `Ok(None)` when the connection is done: the peer closed it,
/// or the idle wait ended because `keep_waiting` went false (server
/// shutdown), or the peer was too slow mid-request. Malformed requests
/// come back as `Err` with a message suitable for a 400.
///
/// The stream is expected to carry a short read timeout; between
/// requests every timeout consults `keep_waiting`, so an idle worker
/// notices shutdown within one timeout interval without ever tearing a
/// request in half.
///
/// # Errors
///
/// Returns a human-readable message for malformed or over-limit
/// requests (the caller answers 400/413 and closes).
pub fn read_request(
    r: &mut BufReader<TcpStream>,
    keep_waiting: impl Fn() -> bool,
) -> Result<Option<Request>, String> {
    // Idle phase: wait for the first byte without consuming anything.
    loop {
        match r.fill_buf() {
            Ok([]) => return Ok(None), // clean EOF
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if !keep_waiting() {
                    return Ok(None);
                }
            }
            Err(_) => return Ok(None),
        }
    }

    let mut header_bytes = 0usize;
    let request_line = match read_line(r, &mut header_bytes)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_ascii_uppercase(), p.to_string(), v.to_string()),
        _ => return Err(format!("malformed request line `{request_line}`")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; 1.0 defaults to close.
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        let line = match read_line(r, &mut header_bytes)? {
            Some(line) => line,
            None => return Ok(None),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header `{line}`"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| format!("bad content-length `{value}`"))?;
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                return Err("chunked transfer encoding is not supported".to_string());
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        ));
    }

    let mut body = vec![0u8; content_length];
    let mut read = 0usize;
    let mut patience = MAX_MIDREQUEST_TIMEOUTS;
    while read < content_length {
        match r.read(&mut body[read..]) {
            Ok(0) => return Ok(None), // peer hung up mid-body
            Ok(n) => read += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                patience = patience.saturating_sub(1);
                if patience == 0 {
                    return Ok(None);
                }
            }
            Err(_) => return Ok(None),
        }
    }

    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Reads one CRLF-terminated header line, riding out short timeouts.
/// `Ok(None)` means the peer disappeared or stalled past patience.
fn read_line(
    r: &mut BufReader<TcpStream>,
    header_bytes: &mut usize,
) -> Result<Option<String>, String> {
    let mut buf = Vec::new();
    let mut patience = MAX_MIDREQUEST_TIMEOUTS;
    loop {
        match r.read_until(b'\n', &mut buf) {
            Ok(0) => return Ok(None),
            Ok(_) if buf.ends_with(b"\n") => break,
            Ok(_) => {} // partial line before EOF/timeout; keep reading
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                patience = patience.saturating_sub(1);
                if patience == 0 {
                    return Ok(None);
                }
            }
            Err(_) => return Ok(None),
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err("header section too large".to_string());
        }
    }
    *header_bytes += buf.len();
    if *header_bytes > MAX_HEADER_BYTES {
        return Err("header section too large".to_string());
    }
    while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| "header line is not UTF-8".to_string())
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Writes one response, honouring the connection's keep-alive decision.
///
/// # Errors
///
/// Propagates socket write errors (the caller drops the connection).
pub fn write_response(
    w: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One coalesced write: with NODELAY set on the socket, head+body
    // leave as a single segment instead of two (the second of which
    // Nagle would park behind the peer's delayed ACK).
    let mut wire = head.into_bytes();
    wire.extend_from_slice(&resp.body);
    w.write_all(&wire)?;
    w.flush()
}
