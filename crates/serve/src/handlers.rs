//! Endpoint dispatch: JSON request bodies in, `csp/v1` envelopes out.
//!
//! Every verification endpoint is a pure function of its request body —
//! module source, universe/binding parameters, and the query — so the
//! handler layer sits behind a content-addressed response cache keyed by
//! the same FNV-1a hashing the incremental [`AnalysisDb`] uses. Cache
//! status and server-side timing travel in the `X-Csp-Cache` /
//! `X-Csp-Ms` *headers*, never the body: a warm response is
//! byte-identical to a cold one, which the `tests/serve.rs` property
//! test pins down.
//!
//! Counter discipline (the `/metrics` invariant the property tests
//! check): every `POST` to a `/v1/*` verification endpoint increments
//! `serve.requests` and exactly one of `serve.cache.hit`,
//! `serve.cache.miss`, `serve.cache.bypass`.

use std::sync::Arc;
use std::time::Instant;

use csp_core::obs::{json_string, parse_json, JsonValue};
use csp_core::{
    hash_field, render_json, AnalysisDb, Engine, Env, FaultPlan, MonitorSpec, ParseError, Process,
    RunOptions, SatOptions, SatResult, Scheduler, Universe, Value, Workbench, HASH_SEED,
};

use crate::http::{Request, Response};
use crate::ServeState;

/// The five verification endpoints.
pub const VERIFY_ENDPOINTS: [&str; 5] = [
    "/v1/lint",
    "/v1/check",
    "/v1/prove",
    "/v1/run",
    "/v1/profile",
];

/// How a verification request interacted with the response cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheStatus {
    /// Served from the cross-request cache.
    Hit,
    /// Computed now (and cached when the endpoint caches).
    Miss,
    /// Never eligible: `/v1/run` (real-thread execution) and requests
    /// whose body could not be keyed at all.
    Bypass,
}

impl CacheStatus {
    fn label(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
        }
    }
}

/// A handler failure: HTTP status, message, and how the request should
/// be classified against the cache counters.
struct HandlerError {
    status: u16,
    message: String,
    cache: CacheStatus,
}

impl HandlerError {
    fn bypass(message: impl Into<String>) -> Self {
        HandlerError {
            status: 400,
            message: message.into(),
            cache: CacheStatus::Bypass,
        }
    }

    fn miss(message: impl Into<String>) -> Self {
        HandlerError {
            status: 400,
            message: message.into(),
            cache: CacheStatus::Miss,
        }
    }
}

/// Wraps a rendered JSON value in the `csp/v1` envelope (same shape as
/// the CLI's `--json` output; the command is namespaced `serve.*`).
fn envelope(command: &str, data: &str) -> String {
    format!("{{\"schema\":\"csp/v1\",\"command\":{command:?},\"data\":{data}}}")
}

/// Routes one parsed request. Infallible: every outcome, including
/// malformed input, is a well-formed HTTP response.
pub(crate) fn respond(state: &ServeState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => health(state),
        ("GET", "/metrics") => {
            Response::text(200, csp_core::obs::render_prometheus(&state.metrics()))
        }
        ("GET", "/v1/trace") => Response::json(200, state.collector().chrome_trace()),
        (_, "/healthz" | "/metrics" | "/v1/trace") => method_not_allowed("GET"),
        (_, path) if VERIFY_ENDPOINTS.contains(&path) => {
            if req.method == "POST" {
                verify(state, req)
            } else {
                method_not_allowed("POST")
            }
        }
        (_, path) => Response::json(
            404,
            envelope(
                "serve.error",
                &format!(
                    "{{\"error\":{}}}",
                    json_string(&format!("no such endpoint `{path}`"))
                ),
            ),
        ),
    }
}

fn method_not_allowed(allowed: &str) -> Response {
    Response::json(
        405,
        envelope(
            "serve.error",
            &format!("{{\"error\":{}}}", json_string(&format!("use {allowed}"))),
        ),
    )
    .with_header("Allow", allowed)
}

fn health(state: &ServeState) -> Response {
    let data = format!(
        "{{\"status\":\"ok\",\"uptime_ms\":{},\"cache_entries\":{},\"workers\":{}}}",
        state.uptime().as_millis(),
        state.cache().len(),
        state.workers(),
    );
    Response::json(200, envelope("serve.health", &data))
}

/// The instrumented wrapper around every verification endpoint: counts
/// the request, classifies it against the cache, times it, and carries
/// the cache/timing metadata in headers so response *bodies* stay
/// deterministic.
fn verify(state: &ServeState, req: &Request) -> Response {
    let t0 = Instant::now();
    // "/v1/lint" → "lint"
    let endpoint = &req.path["/v1/".len()..];
    let collector = state.collector();
    collector.add("serve.requests", 1);
    collector.add(format!("serve.{endpoint}.requests"), 1);
    let mut span = collector.span("serve.request");
    span.record("path", req.path.as_str());
    let (response, cache) = match handle_verify(state, endpoint, &req.body) {
        Ok((body, cache)) => (Response::json(200, body.as_bytes().to_vec()), cache),
        Err(e) => {
            collector.add("serve.errors", 1);
            let data = format!("{{\"error\":{}}}", json_string(&e.message));
            (
                Response::json(e.status, envelope("serve.error", &data)),
                e.cache,
            )
        }
    };
    collector.add(format!("serve.cache.{}", cache.label()), 1);
    span.record("cache", cache.label());
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    collector.observe_ns("serve.request_ns", ns);
    span.end();
    response
        .with_header("X-Csp-Cache", cache.label())
        .with_header("X-Csp-Ms", format!("{:.3}", ns as f64 / 1e6))
}

fn handle_verify(
    state: &ServeState,
    endpoint: &str,
    body: &[u8],
) -> Result<(Arc<str>, CacheStatus), HandlerError> {
    let p = Params::parse(body).map_err(HandlerError::bypass)?;
    // `/v1/run` executes on real threads; identical requests may
    // legitimately produce different interleavings, so it is never
    // cached — not even probed.
    if endpoint == "run" {
        let body = run(state, &p)?;
        return Ok((Arc::from(body), CacheStatus::Bypass));
    }
    // Engine-aware endpoints count their selector per request (hits
    // included), so /metrics shows the backend mix regardless of cache
    // temperature.
    if matches!(endpoint, "check" | "prove") {
        state
            .collector()
            .add(format!("serve.engine.{}", p.engine.as_str()), 1);
    }
    let key = p.cache_key(endpoint);
    if let Some(hit) = state.cache().get(key) {
        return Ok((hit, CacheStatus::Hit));
    }
    let body = match endpoint {
        "lint" => lint(state, &p),
        "check" => check(state, &p),
        "prove" => prove(state, &p),
        "profile" => profile(state, &p),
        other => Err(HandlerError::bypass(format!("no such endpoint `{other}`"))),
    }?;
    let rendered: Arc<str> = Arc::from(body);
    state.cache().insert(key, Arc::clone(&rendered));
    Ok((rendered, CacheStatus::Miss))
}

/// `/v1/lint`: incremental analysis. The per-module [`AnalysisDb`] is
/// pooled across requests, so an edited re-submission relints only the
/// definitions whose content hash moved (the `serve.lint.relinted` /
/// `serve.lint.cached_defs` counters expose the split).
fn lint(state: &ServeState, p: &Params) -> Result<String, HandlerError> {
    let db_key = p.lint_db_key();
    let mut db = state
        .take_lint_db(db_key)
        .unwrap_or_else(|| AnalysisDb::new().with_env(&p.env()));
    let stats = db.set_source(&p.source);
    state
        .collector()
        .add("serve.lint.relinted", stats.relinted as u64);
    state
        .collector()
        .add("serve.lint.cached_defs", stats.cached as u64);
    let data = format!(
        "{{\"module\":{},\"definitions\":{},\"errors\":{},\"diagnostics\":{}}}",
        json_string(&p.module),
        stats.definitions,
        parse_errors_json(db.parse_errors()),
        render_json(&db.diagnostics()),
    );
    state.put_lint_db(db_key, db);
    Ok(envelope("serve.lint", &data))
}

/// `/v1/check`: bounded model checking through a pooled workbench.
fn check(state: &ServeState, p: &Params) -> Result<String, HandlerError> {
    let process = p.need_process()?;
    let assertion = p
        .assertion
        .as_deref()
        .ok_or_else(|| HandlerError::miss("missing required string field `assertion`"))?;
    let pooled = state
        .pool()
        .checkout(p.wb_key(), || p.build_workbench())
        .map_err(HandlerError::miss)?;
    let session = pooled.wb.session_with(state.collector().clone());
    let verdict = session.check_sat(
        process,
        assertion,
        SatOptions::from(p.depth).with_engine(p.engine),
    );
    let data = match verdict {
        Ok(SatResult::Holds {
            traces_checked,
            depth,
            engine,
        }) => format!(
            "{{\"process\":{},\"assertion\":{},\"engine\":{},\"holds\":true,\
             \"traces_checked\":{traces_checked},\"depth\":{depth}}}",
            json_string(process),
            json_string(assertion),
            json_string(engine.as_str()),
        ),
        Ok(SatResult::Counterexample { trace, engine }) => format!(
            "{{\"process\":{},\"assertion\":{},\"engine\":{},\"holds\":false,\"counterexample\":{}}}",
            json_string(process),
            json_string(assertion),
            json_string(engine.as_str()),
            json_string(&trace.to_string()),
        ),
        Err(e) => {
            state.pool().checkin(pooled);
            return Err(HandlerError::miss(e.to_string()));
        }
    };
    state.pool().checkin(pooled);
    Ok(envelope("serve.check", &data))
}

/// `/v1/prove`: proof synthesis + checking. A failed proof is a verdict
/// (`"proved":false`), not a transport error — mirroring the CLI, which
/// prints `proof failed` and exits 1 rather than 2.
fn prove(state: &ServeState, p: &Params) -> Result<String, HandlerError> {
    if p.specs.is_empty() {
        return Err(HandlerError::miss(
            "at least one spec {\"process\":…,\"assertion\":…} is required",
        ));
    }
    let pooled = state
        .pool()
        .checkout(p.wb_key(), || p.build_workbench())
        .map_err(HandlerError::miss)?;
    let session = pooled.wb.session_with(state.collector().clone());
    let specs: Vec<(&str, &str)> = p
        .specs
        .iter()
        .map(|(n, a)| (n.as_str(), a.as_str()))
        .collect();
    let specs_json: Vec<String> = p
        .specs
        .iter()
        .map(|(n, a)| {
            format!(
                "{{\"process\":{},\"assertion\":{}}}",
                json_string(n),
                json_string(a)
            )
        })
        .collect();
    // The proof checker itself is symbolic; the engine member reports
    // what the selector resolves to for the concluded process, so
    // callers see the same resolution `check` would use.
    let resolved = p
        .engine
        .resolve(pooled.wb.definitions(), &Process::call(&p.specs[0].0));
    let data = match session.prove_auto(&specs) {
        Ok(report) => format!(
            "{{\"specs\":[{}],\"engine\":{},\"proved\":true,\"rules\":{}}}",
            specs_json.join(","),
            json_string(resolved.as_str()),
            report.rule_count(),
        ),
        Err(e) => format!(
            "{{\"specs\":[{}],\"engine\":{},\"proved\":false,\"error\":{}}}",
            specs_json.join(","),
            json_string(resolved.as_str()),
            json_string(&e.to_string()),
        ),
    };
    state.pool().checkin(pooled);
    Ok(envelope("serve.prove", &data))
}

/// `/v1/run`: real-thread execution of the named network. Bypasses the
/// cache by design; the scheduler seed still makes it *mostly*
/// reproducible, but thread timing may vary interleavings legitimately.
fn run(state: &ServeState, p: &Params) -> Result<String, HandlerError> {
    let process = p.need_process()?;
    let faults = match &p.fault_plan {
        Some(spec) => FaultPlan::parse(spec).map_err(|e| HandlerError::bypass(e.to_string()))?,
        None => FaultPlan::none(),
    };
    let pooled = state
        .pool()
        .checkout(p.wb_key(), || p.build_workbench())
        .map_err(HandlerError::bypass)?;
    // `"monitor": true` = online trace-membership checking; a string is
    // additionally checked as a `sat` assertion on every visible prefix.
    let monitor = match &p.monitor {
        None => None,
        Some(src) if src.is_empty() => Some(MonitorSpec::new()),
        Some(src) => match pooled.wb.assertion(src) {
            Ok(a) => Some(MonitorSpec::new().with_assertion(a)),
            Err(e) => {
                state.pool().checkin(pooled);
                return Err(HandlerError::bypass(e.to_string()));
            }
        },
    };
    let session = pooled.wb.session_with(state.collector().clone());
    let result = session.run(
        process,
        RunOptions {
            max_steps: p.steps,
            scheduler: Scheduler::seeded(p.seed),
            faults,
            monitor,
            ..RunOptions::default()
        },
    );
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            state.pool().checkin(pooled);
            return Err(HandlerError::bypass(e.to_string()));
        }
    };
    state.pool().checkin(pooled);
    let failures: Vec<String> = result
        .failures
        .iter()
        .map(|f| {
            format!(
                "{{\"label\":{},\"reason\":{},\"at_step\":{},\"recovered\":{}}}",
                json_string(&f.label),
                json_string(&f.reason.to_string()),
                f.at_step,
                f.recovered,
            )
        })
        .collect();
    let data = format!(
        "{{\"process\":{},\"steps\":{},\"outcome\":{},\"clean\":{},\
         \"visible\":{},\"failures\":[{}],\"supervision\":{},\"monitor\":{}}}",
        json_string(process),
        result.steps,
        json_string(&result.outcome.to_string()),
        result.outcome.is_clean(),
        json_string(&result.visible.to_string()),
        failures.join(","),
        render_supervision(&result),
        render_monitor(&result),
    );
    Ok(envelope("serve.run", &data))
}

/// The machine-readable supervision summary of a finished run: how many
/// components died, how many deaths a restart policy recovered, and the
/// causal-log size (fault/supervision events included).
pub fn render_supervision(result: &csp_core::RunResult) -> String {
    format!(
        "{{\"deaths\":{},\"recovered\":{},\"causal_events\":{},\"causal_dropped\":{}}}",
        result.failures.len(),
        result.recoveries(),
        result.causal.len(),
        result.causal.dropped(),
    )
}

/// The `"monitor"` member of a run response: `null` when monitoring was
/// off, else the verdict plus the first violation (if any) with its
/// causal history.
pub fn render_monitor(result: &csp_core::RunResult) -> String {
    let Some(m) = &result.monitor else {
        return "null".to_string();
    };
    let violation = match &m.violation {
        None => "null".to_string(),
        Some(v) => format!(
            "{{\"step\":{},\"visible_index\":{},\"event\":{},\"kind\":{},\"causal_history\":[{}]}}",
            v.step,
            v.visible_index,
            json_string(&v.event.to_string()),
            json_string(&v.kind.to_string()),
            v.causal_history
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
        ),
    };
    format!(
        "{{\"verdict\":{},\"conforming\":{},\"events_checked\":{},\"violation\":{}}}",
        json_string(&m.verdict.to_string()),
        m.is_conforming(),
        m.events_checked,
        violation,
    )
}

/// `/v1/profile`: the parse → fixpoint → verify pipeline, timed per
/// phase. The `ms` fields are the only nondeterministic bytes any cached
/// endpoint emits (a cache hit replays the *original* timings, which is
/// the honest answer: the cached verdict cost that much to compute).
fn profile(state: &ServeState, p: &Params) -> Result<String, HandlerError> {
    let t0 = Instant::now();
    let pooled = state
        .pool()
        .checkout(p.wb_key(), || p.build_workbench())
        .map_err(HandlerError::miss)?;
    let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
    let session = pooled.wb.session_with(state.collector().clone());

    let t1 = Instant::now();
    let fix = session.fixpoint(p.depth, 32);
    let fixpoint_ms = t1.elapsed().as_secs_f64() * 1e3;
    let fix = match fix {
        Ok(f) => f,
        Err(e) => {
            state.pool().checkin(pooled);
            return Err(HandlerError::miss(e.to_string()));
        }
    };

    let t2 = Instant::now();
    let verified = match (p.process.as_deref(), p.assertion.as_deref()) {
        (Some(name), Some(assertion)) => session
            .check_sat(name, assertion, p.depth)
            .map(|v| u64::from(v.holds()))
            .map_err(|e| e.to_string()),
        _ => {
            // Array equations need a concrete subscript; sweep plain ones.
            let names: Vec<String> = pooled
                .wb
                .definitions()
                .iter()
                .filter(|d| d.param().is_none())
                .map(|d| d.name().to_string())
                .collect();
            let mut traces = 0u64;
            let mut err = None;
            for name in &names {
                match pooled.wb.traces(name, p.depth) {
                    Ok(ts) => traces += ts.len() as u64,
                    Err(e) => {
                        err = Some(e.to_string());
                        break;
                    }
                }
            }
            match err {
                Some(e) => Err(e),
                None => Ok(traces),
            }
        }
    };
    let verify_ms = t2.elapsed().as_secs_f64() * 1e3;
    let verified = match verified {
        Ok(v) => v,
        Err(e) => {
            state.pool().checkin(pooled);
            return Err(HandlerError::miss(e));
        }
    };
    let definitions = pooled.wb.definitions().len();
    state.pool().checkin(pooled);

    let converged = match fix.converged_at {
        Some(i) => i.to_string(),
        None => "null".to_string(),
    };
    let data = format!(
        "{{\"phases\":[\
         {{\"name\":\"parse\",\"ms\":{parse_ms:.3},\"definitions\":{definitions}}},\
         {{\"name\":\"fixpoint\",\"ms\":{fixpoint_ms:.3},\"iterations\":{},\"converged_at\":{converged}}},\
         {{\"name\":\"verify\",\"ms\":{verify_ms:.3},\"result\":{verified}}}]}}",
        fix.iterates.len(),
    );
    Ok(envelope("serve.profile", &data))
}

/// Recovered parse errors as JSON, span fields flattened exactly like
/// the CLI's lint output.
fn parse_errors_json(errors: &[ParseError]) -> String {
    let items: Vec<String> = errors
        .iter()
        .map(|e| {
            let sp = e.span();
            format!(
                "{{\"message\":{},\"line\":{},\"column\":{},\"offset\":{},\"len\":{}}}",
                json_string(e.message()),
                sp.line,
                sp.column,
                sp.offset,
                sp.len
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// One request's decoded parameters — the same knobs the CLI exposes as
/// flags, carried in a JSON object. Every field participates in the
/// cache key.
struct Params {
    source: String,
    module: String,
    process: Option<String>,
    assertion: Option<String>,
    specs: Vec<(String, String)>,
    depth: usize,
    steps: usize,
    seed: u64,
    nat_bound: u32,
    sets: Vec<(String, Vec<Value>)>,
    binds: Vec<(String, Vec<i64>)>,
    channels: Vec<String>,
    fault_plan: Option<String>,
    engine: Engine,
    /// `/v1/run` online monitoring: `Some("")` (from `"monitor": true`)
    /// means membership-only, a non-empty string adds a `sat` assertion.
    monitor: Option<String>,
}

impl Params {
    fn parse(body: &[u8]) -> Result<Params, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let text = text.trim();
        if text.is_empty() {
            return Err("empty body; expected a JSON object with a `source` field".to_string());
        }
        let v = parse_json(text)
            .map_err(|e| format!("bad JSON at offset {}: {}", e.offset, e.message))?;
        let source = v
            .get("source")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing required string field `source`".to_string())?
            .to_string();
        let str_field = |name: &str| -> Result<Option<String>, String> {
            match v.get(name) {
                None => Ok(None),
                Some(f) => f
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("field `{name}` must be a string")),
            }
        };
        let num_field = |name: &str, default: u64| -> Result<u64, String> {
            match v.get(name) {
                None => Ok(default),
                Some(f) => f
                    .as_u64()
                    .ok_or_else(|| format!("field `{name}` must be a non-negative number")),
            }
        };
        let mut specs = Vec::new();
        if let Some(arr) = v.get("specs") {
            let arr = arr
                .as_array()
                .ok_or_else(|| "field `specs` must be an array".to_string())?;
            for s in arr {
                let (Some(process), Some(assertion)) = (
                    s.get("process").and_then(JsonValue::as_str),
                    s.get("assertion").and_then(JsonValue::as_str),
                ) else {
                    return Err(
                        "each spec needs string fields `process` and `assertion`".to_string()
                    );
                };
                specs.push((process.to_string(), assertion.to_string()));
            }
        }
        let mut sets = Vec::new();
        if let Some(obj) = v.get("sets") {
            let entries = obj
                .entries()
                .ok_or_else(|| "field `sets` must be an object of arrays".to_string())?;
            for (name, vals) in entries {
                let arr = vals
                    .as_array()
                    .ok_or_else(|| format!("set `{name}` must be an array"))?;
                let parsed = arr
                    .iter()
                    .map(parse_set_value)
                    .collect::<Result<Vec<_>, _>>()?;
                sets.push((name.clone(), parsed));
            }
            sets.sort_by(|a, b| a.0.cmp(&b.0));
        }
        let mut binds = Vec::new();
        if let Some(obj) = v.get("bind") {
            let entries = obj
                .entries()
                .ok_or_else(|| "field `bind` must be an object of integer arrays".to_string())?;
            for (name, vals) in entries {
                let arr = vals
                    .as_array()
                    .ok_or_else(|| format!("bind `{name}` must be an array"))?;
                let parsed = arr
                    .iter()
                    .map(|x| {
                        x.as_i64()
                            .ok_or_else(|| format!("bind `{name}` must contain integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                binds.push((name.clone(), parsed));
            }
            binds.sort_by(|a, b| a.0.cmp(&b.0));
        }
        let mut channels = Vec::new();
        if let Some(arr) = v.get("channels") {
            let arr = arr
                .as_array()
                .ok_or_else(|| "field `channels` must be an array of strings".to_string())?;
            for c in arr {
                channels.push(
                    c.as_str()
                        .ok_or_else(|| "field `channels` must contain strings".to_string())?
                        .to_string(),
                );
            }
        }
        let monitor = match v.get("monitor") {
            None => None,
            Some(f) => match (f.as_bool(), f.as_str()) {
                (Some(true), _) => Some(String::new()),
                (Some(false), _) => None,
                (_, Some(s)) => Some(s.to_string()),
                _ => {
                    return Err(
                        "field `monitor` must be a boolean or an assertion string".to_string()
                    )
                }
            },
        };
        Ok(Params {
            source,
            module: str_field("module")?.unwrap_or_else(|| "default".to_string()),
            process: str_field("process")?,
            assertion: str_field("assertion")?,
            specs,
            depth: num_field("depth", 4)? as usize,
            steps: num_field("steps", 32)? as usize,
            seed: num_field("seed", 0)?,
            nat_bound: num_field("nat_bound", 2)? as u32,
            sets,
            binds,
            channels,
            fault_plan: str_field("fault_plan")?,
            engine: match str_field("engine")? {
                Some(s) => s.parse::<Engine>()?,
                None => Engine::Auto,
            },
            monitor,
        })
    }

    fn need_process(&self) -> Result<&str, HandlerError> {
        self.process
            .as_deref()
            .ok_or_else(|| HandlerError::miss("missing required string field `process`"))
    }

    /// The full response-cache key: endpoint plus *every* parameter.
    fn cache_key(&self, endpoint: &str) -> u64 {
        let mut h = hash_field(HASH_SEED, endpoint.as_bytes());
        h = self.hash_workbench_fields(h);
        h = hash_field(h, self.module.as_bytes());
        h = hash_opt(h, self.process.as_deref());
        h = hash_opt(h, self.assertion.as_deref());
        h = hash_opt(h, self.fault_plan.as_deref());
        h = hash_opt(h, self.monitor.as_deref());
        for (n, a) in &self.specs {
            h = hash_field(h, n.as_bytes());
            h = hash_field(h, a.as_bytes());
        }
        h = hash_field(h, &(self.depth as u64).to_le_bytes());
        h = hash_field(h, &(self.steps as u64).to_le_bytes());
        h = hash_field(h, &self.seed.to_le_bytes());
        // Compiled and enumerative responses carry their engine in the
        // body, so they must never alias in the cache.
        h = hash_field(h, self.engine.as_str().as_bytes());
        h
    }

    /// The workbench-pool key: only the fields that shape construction.
    fn wb_key(&self) -> u64 {
        self.hash_workbench_fields(hash_field(HASH_SEED, b"workbench"))
    }

    /// The lint-database pool key: lint depends on the module identity
    /// and host bindings, not on the universe or query fields (and the
    /// *source* is deliberately absent — reusing the db across edits of
    /// one module is the whole point).
    fn lint_db_key(&self) -> u64 {
        let mut h = hash_field(HASH_SEED, b"lint-db");
        h = hash_field(h, self.module.as_bytes());
        for (name, vals) in &self.binds {
            h = hash_field(h, name.as_bytes());
            for v in vals {
                h = hash_field(h, &v.to_le_bytes());
            }
        }
        h
    }

    fn hash_workbench_fields(&self, mut h: u64) -> u64 {
        h = hash_field(h, self.source.as_bytes());
        h = hash_field(h, &u64::from(self.nat_bound).to_le_bytes());
        for (name, vals) in &self.sets {
            h = hash_field(h, name.as_bytes());
            for v in vals {
                h = hash_field(h, v.to_string().as_bytes());
            }
        }
        for (name, vals) in &self.binds {
            h = hash_field(h, name.as_bytes());
            for v in vals {
                h = hash_field(h, &v.to_le_bytes());
            }
        }
        for c in &self.channels {
            h = hash_field(h, c.as_bytes());
        }
        h
    }

    fn env(&self) -> Env {
        let mut env = Env::new();
        for (name, vals) in &self.binds {
            for (i, &v) in vals.iter().enumerate() {
                env.bind_mut(&format!("{name}[{}]", i + 1), Value::Int(v));
            }
        }
        env
    }

    fn build_workbench(&self) -> Result<Workbench, String> {
        let mut uni = Universe::new(self.nat_bound);
        for (name, vals) in &self.sets {
            uni = uni.with_named(name, vals.iter().cloned());
        }
        let mut wb = Workbench::new().with_universe(uni);
        wb.define_source(&self.source).map_err(|e| e.to_string())?;
        for (name, vals) in &self.binds {
            wb.bind_vector(name, vals);
        }
        if !self.channels.is_empty() {
            wb.declare_channels(self.channels.iter().map(String::as_str));
        }
        Ok(wb)
    }
}

fn hash_opt(h: u64, v: Option<&str>) -> u64 {
    match v {
        Some(s) => hash_field(hash_field(h, b"+"), s.as_bytes()),
        None => hash_field(h, b"-"),
    }
}

/// One set element: a JSON integer or an Uppercase atom string, same
/// grammar as the CLI's `--set`.
fn parse_set_value(v: &JsonValue) -> Result<Value, String> {
    if let Some(n) = v.as_i64() {
        return Ok(Value::Int(n));
    }
    if let Some(s) = v.as_str() {
        let s = s.trim();
        if let Ok(n) = s.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        if s.chars().next().is_some_and(char::is_uppercase) {
            return Ok(Value::sym(s));
        }
    }
    Err("set values must be integers or Uppercase atoms".to_string())
}
