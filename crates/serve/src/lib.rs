//! # csp-serve
//!
//! `csp serve` — a persistent verification service over the
//! [`Workbench`](csp_core::Workbench): the CLI's `lint` / `check` /
//! `prove` / `run` / `profile` verbs exposed as HTTP endpoints with the
//! same `{"schema":"csp/v1",…}` envelope, plus `/healthz`, `/metrics`
//! (Prometheus text exposition) and `/v1/trace` (Chrome trace-event
//! JSON of the server's own span stream).
//!
//! The point of staying resident is the **cross-request cache**: every
//! verification verdict is a pure function of its request body, so
//! results are keyed by FNV-1a content hashes (the same hashing the
//! incremental [`AnalysisDb`] uses) and replayed
//! for identical requests. Three reuse layers, cheapest first:
//!
//! 1. rendered-response cache ([`VerifyCache`]) —
//!    a repeated request costs one hash + one map lookup;
//! 2. pooled [`AnalysisDb`]s per module — an
//!    *edited* re-lint pays only for the definitions whose content hash
//!    moved;
//! 3. pooled parsed [`Workbench`](csp_core::Workbench)es — a new query
//!    over known source skips the parse.
//!
//! Nothing is ever *invalidated*: keys are content hashes, so a stale
//! entry is unreachable by construction and eviction is plain LRU.
//!
//! The server itself is a bounded worker-thread model: one accept loop
//! feeding a channel, `workers` threads each running keep-alive
//! connections to completion. Worker width defaults to
//! [`rayon::current_num_threads`], so `RAYON_NUM_THREADS` sizes every
//! pool in the workspace. No hyper, no tokio — see `DESIGN.md` §10 for
//! why a ~200-line HTTP/1.1 subset is the right tool here.
//!
//! ```no_run
//! let server = csp_serve::CspServer::bind(&csp_serve::ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..csp_serve::ServeConfig::default()
//! })?;
//! let handle = server.spawn()?;
//! let mut client = csp_serve::Client::connect(&handle.url())?;
//! let resp = client.post("/v1/lint", r#"{"source":"p = c!0 -> p"}"#)?;
//! assert_eq!(resp.status, 200);
//! handle.stop();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod handlers;
pub mod http;

pub use client::{Client, ClientResponse};
pub use handlers::{render_monitor, render_supervision};

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csp_core::obs::MetricsSnapshot;
use csp_core::{AnalysisDb, Collector, Lru, VerifyCache, WorkbenchPool};

/// How long a worker blocks in one socket read before re-checking the
/// stop flag; bounds shutdown latency for idle keep-alive connections.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Pooled lint databases retained across requests (per distinct
/// `(module, bindings)` identity).
const LINT_DB_CAP: usize = 32;

/// Distinct workbench keys the pool retains.
const WB_KEY_CAP: usize = 64;

/// Server configuration, mirrored by `csp serve`'s flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7017` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Rendered responses the cross-request cache retains (0 disables).
    pub cache_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7017".to_string(),
            workers: default_workers(),
            cache_cap: 1024,
        }
    }
}

/// The default worker width: the same knob (`RAYON_NUM_THREADS`) that
/// sizes every other thread pool in the workspace, clamped to [2, 16].
pub fn default_workers() -> usize {
    rayon::current_num_threads().clamp(2, 16)
}

/// Everything the handlers share across requests: the collector feeding
/// `/metrics` and `/v1/trace`, the three reuse layers, and uptime.
#[derive(Debug)]
pub struct ServeState {
    collector: Collector,
    cache: VerifyCache,
    pool: WorkbenchPool,
    lint_dbs: Mutex<Lru<AnalysisDb>>,
    started: Instant,
    workers: usize,
}

impl ServeState {
    /// Fresh state with a response cache of `cache_cap` entries.
    pub fn new(cache_cap: usize, workers: usize) -> Self {
        ServeState {
            collector: Collector::new(),
            cache: VerifyCache::new(cache_cap),
            pool: WorkbenchPool::new(WB_KEY_CAP),
            lint_dbs: Mutex::new(Lru::new(LINT_DB_CAP)),
            started: Instant::now(),
            workers,
        }
    }

    /// The server's collector (spans, counters, histograms).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The cross-request response cache.
    pub fn cache(&self) -> &VerifyCache {
        &self.cache
    }

    /// The parsed-workbench pool.
    pub fn pool(&self) -> &WorkbenchPool {
        &self.pool
    }

    /// Time since the state was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Configured worker width (reported by `/healthz`).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Answers one request. Exposed so tests (and the property tests in
    /// particular) can drive the full handler stack — cache, counters,
    /// envelopes — without sockets.
    pub fn respond(&self, req: &http::Request) -> http::Response {
        handlers::respond(self, req)
    }

    /// Convenience for handler-level tests: POSTs `body` to `path`.
    pub fn post(&self, path: &str, body: &str) -> http::Response {
        self.respond(&http::Request {
            method: "POST".to_string(),
            path: path.to_string(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        })
    }

    /// The `/metrics` snapshot: the collector's aggregates plus the
    /// cache/pool gauges.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.collector.snapshot();
        snap.set_counter("serve.cache.entries", self.cache.len() as u64);
        snap.set_counter("serve.pool.builds", self.pool.builds());
        snap.set_counter("serve.pool.reuses", self.pool.reuses());
        snap.set_counter("serve.workers", self.workers as u64);
        snap.set_counter("obs.events_dropped", self.collector.dropped());
        snap
    }

    fn take_lint_db(&self, key: u64) -> Option<AnalysisDb> {
        self.lint_dbs.lock().expect("lint-db lock").take(key)
    }

    fn put_lint_db(&self, key: u64, db: AnalysisDb) {
        self.lint_dbs.lock().expect("lint-db lock").insert(key, db);
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct CspServer {
    listener: TcpListener,
    state: Arc<ServeState>,
    workers: usize,
}

impl CspServer {
    /// Binds the configured address (without accepting yet).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission).
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<CspServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let workers = cfg.workers.max(1);
        Ok(CspServer {
            listener,
            state: Arc::new(ServeState::new(cfg.cache_cap, workers)),
            workers,
        })
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shared handle on the server's state (metrics, cache).
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept loop on the calling thread until `stop` is
    /// raised (see [`CspServer::spawn`] for the detached form). The
    /// loop only observes `stop` when `accept` returns, so a stopper
    /// must also poke the listener with one throwaway connection —
    /// [`ServerHandle::stop`] does exactly that.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors only
    /// drop that connection.
    pub fn run_until(self, stop: &AtomicBool) -> std::io::Result<()> {
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(self.workers * 4);
        let rx = Mutex::new(rx);
        let state = &self.state;
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| worker_loop(state, &rx, stop));
            }
            accept_loop(&self.listener, &tx, stop);
            // Dropping the sender lets idle workers drain out.
            drop(tx);
        });
        Ok(())
    }

    /// Runs forever on the calling thread (the `csp serve` entry).
    ///
    /// # Errors
    ///
    /// As for [`CspServer::run_until`].
    pub fn run(self) -> std::io::Result<()> {
        static NEVER: AtomicBool = AtomicBool::new(false);
        self.run_until(&NEVER)
    }

    /// Runs the server on a background thread, returning a handle that
    /// can stop it. Used by tests and the bench load driver's
    /// `--serve spawn` mode.
    ///
    /// # Errors
    ///
    /// Propagates the address query failure.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = self.state();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || self.run_until(&flag));
        Ok(ServerHandle {
            addr,
            state,
            stop,
            thread,
        })
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Relaxed) {
                    return; // the wake-up connection itself is dropped
                }
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                // Responses go out as one coalesced write; without
                // NODELAY, Nagle holds the tail segment for the
                // client's delayed ACK (~40 ms on every response).
                let _ = stream.set_nodelay(true);
                // Blocks when every worker is busy and the queue is
                // full: accept backpressure instead of unbounded memory.
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if stop.load(Relaxed) {
                    return;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // keep serving.
            }
        }
    }
}

/// One worker: pulls connections off the shared channel and runs each
/// keep-alive session to completion.
fn worker_loop(state: &ServeState, rx: &Mutex<Receiver<TcpStream>>, stop: &AtomicBool) {
    loop {
        if stop.load(Relaxed) {
            return;
        }
        // Holding the lock across the blocking recv is deliberate: it
        // serialises *waiting* workers (one wakes per connection), and
        // the sender side being dropped unblocks them all at shutdown.
        let next = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(stream) = next else { return };
        handle_connection(state, stream, stop);
    }
}

fn handle_connection(state: &ServeState, stream: TcpStream, stop: &AtomicBool) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader, || !stop.load(Relaxed)) {
            Ok(Some(req)) => {
                let resp = handlers::respond(state, &req);
                let keep_alive = req.keep_alive && !stop.load(Relaxed);
                if http::write_response(&mut write_half, &resp, keep_alive).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Ok(None) => return, // peer closed, stalled out, or shutdown
            Err(message) => {
                // Malformed request: answer 400 and close.
                let body = format!(
                    "{{\"schema\":\"csp/v1\",\"command\":\"serve.error\",\
                     \"data\":{{\"error\":{}}}}}",
                    csp_core::obs::json_string(&message)
                );
                let resp = http::Response::json(400, body);
                let _ = http::write_response(&mut write_half, &resp, false);
                return;
            }
        }
    }
}

/// A running background server (from [`CspServer::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The server's base URL, e.g. `http://127.0.0.1:49152`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server state (metrics, cache, collector).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops the server and joins every thread: raises the stop flag,
    /// wakes the accept loop with a throwaway connection, and waits for
    /// in-flight requests to finish.
    pub fn stop(self) {
        self.stop.store(true, Relaxed);
        // Wake the (blocking) accept call so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "copier = input?x:NAT -> wire!x -> copier
                       recopier = wire?y:NAT -> output!y -> recopier
                       pipeline = chan wire; (copier || recopier)";

    fn body(extra: &str) -> String {
        format!("{{\"source\":{:?}{extra}}}", SRC)
    }

    #[test]
    fn lint_misses_then_hits() {
        let state = ServeState::new(64, 2);
        let cold = state.post("/v1/lint", &body(""));
        assert_eq!(
            cold.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&cold.body)
        );
        assert!(header(&cold, "X-Csp-Cache") == Some("miss"));
        let warm = state.post("/v1/lint", &body(""));
        assert_eq!(header(&warm, "X-Csp-Cache"), Some("hit"));
        assert_eq!(cold.body, warm.body, "hit must be byte-identical");
        let m = state.metrics();
        assert_eq!(m.counter("serve.requests"), 2);
        assert_eq!(m.counter("serve.cache.hit"), 1);
        assert_eq!(m.counter("serve.cache.miss"), 1);
    }

    #[test]
    fn check_prove_run_profile_round_trip() {
        let state = ServeState::new(64, 2);
        let check = state.post(
            "/v1/check",
            &body(",\"process\":\"pipeline\",\"assertion\":\"output <= input\",\"depth\":3,\"nat_bound\":1"),
        );
        let text = String::from_utf8_lossy(&check.body).into_owned();
        assert_eq!(check.status, 200, "{text}");
        assert!(text.contains("\"holds\":true"), "{text}");

        let prove = state.post(
            "/v1/prove",
            &body(",\"specs\":[{\"process\":\"copier\",\"assertion\":\"wire <= input\"}],\"nat_bound\":1"),
        );
        let text = String::from_utf8_lossy(&prove.body).into_owned();
        assert!(text.contains("\"proved\":true"), "{text}");

        let run = state.post(
            "/v1/run",
            &body(",\"process\":\"pipeline\",\"steps\":12,\"seed\":3,\"nat_bound\":1"),
        );
        let text = String::from_utf8_lossy(&run.body).into_owned();
        assert_eq!(run.status, 200, "{text}");
        assert_eq!(header(&run, "X-Csp-Cache"), Some("bypass"));

        let profile = state.post("/v1/profile", &body(",\"depth\":3,\"nat_bound\":1"));
        let text = String::from_utf8_lossy(&profile.body).into_owned();
        assert!(text.contains("\"name\":\"fixpoint\""), "{text}");

        // Counter invariant: hit + miss + bypass == requests.
        let m = state.metrics();
        assert_eq!(
            m.counter("serve.cache.hit")
                + m.counter("serve.cache.miss")
                + m.counter("serve.cache.bypass"),
            m.counter("serve.requests"),
        );
        // The pool reused the parsed workbench across check/prove/run/profile.
        assert!(
            state.pool().reuses() >= 2,
            "reuses = {}",
            state.pool().reuses()
        );
    }

    #[test]
    fn bad_requests_classify_as_bypass_or_miss() {
        let state = ServeState::new(64, 2);
        let bad_json = state.post("/v1/check", "{nope");
        assert_eq!(bad_json.status, 400);
        assert_eq!(header(&bad_json, "X-Csp-Cache"), Some("bypass"));
        let bad_process = state.post("/v1/check", &body(",\"assertion\":\"output <= input\""));
        assert_eq!(bad_process.status, 400);
        assert_eq!(header(&bad_process, "X-Csp-Cache"), Some("miss"));
        let m = state.metrics();
        assert_eq!(m.counter("serve.errors"), 2);
        assert_eq!(
            m.counter("serve.cache.bypass") + m.counter("serve.cache.miss"),
            m.counter("serve.requests"),
        );
    }

    #[test]
    fn e2e_over_tcp_with_keep_alive() {
        let server = CspServer::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_cap: 64,
        })
        .unwrap();
        let state = server.state();
        let handle = server.spawn().unwrap();
        let mut client = Client::connect(&handle.url()).unwrap();

        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"status\":\"ok\""));

        // Two lints over one keep-alive connection: miss then hit.
        let cold = client.post("/v1/lint", &body("")).unwrap();
        let warm = client.post("/v1/lint", &body("")).unwrap();
        assert_eq!(cold.header("X-Csp-Cache"), Some("miss"));
        assert_eq!(warm.header("X-Csp-Cache"), Some("hit"));
        assert_eq!(cold.body, warm.body);

        let metrics = client.get("/metrics").unwrap();
        assert!(metrics.body.contains("serve.requests"), "{}", metrics.body);
        let trace = client.get("/v1/trace").unwrap();
        assert!(trace.body.contains("traceEvents"));

        let missing = client.get("/v1/nope").unwrap();
        assert_eq!(missing.status, 404);
        let wrong_method = client.get("/v1/lint").unwrap();
        assert_eq!(wrong_method.status, 405);

        handle.stop();
        assert_eq!(state.metrics().counter("serve.requests"), 2);
    }

    fn header<'r>(resp: &'r http::Response, name: &str) -> Option<&'r str> {
        resp.extra
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}
