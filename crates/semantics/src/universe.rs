//! Finite universes for enumeration.
//!
//! The paper's message sets may be unbounded (`NAT`) or abstract (`M`).
//! The denotational model itself is set-theoretic and has no trouble with
//! that; *enumeration-based tools* (bounded trace computation, model
//! checking, simulation) need a finite carrier. A [`Universe`] supplies
//! one: an inclusive bound for `NAT` and a table resolving named abstract
//! sets to finite sets. This is substitution 3 of `DESIGN.md`: proofs stay
//! symbolic, the model is explored on a finite restriction.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use csp_lang::{EvalError, MsgSet};
use csp_trace::Value;

/// A finite restriction of the value space used when enumerating traces.
///
/// # Examples
///
/// ```
/// use csp_semantics::Universe;
/// use csp_trace::Value;
///
/// let uni = Universe::new(2).with_named("M", [Value::nat(0), Value::nat(1)]);
/// assert_eq!(uni.nat_bound(), 2);
/// assert_eq!(uni.resolve_named("M").unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Universe {
    nat_bound: u32,
    named: BTreeMap<String, BTreeSet<Value>>,
}

impl Universe {
    /// A universe where `NAT` is restricted to `{0, …, nat_bound}` and no
    /// named sets are known.
    pub fn new(nat_bound: u32) -> Self {
        Universe {
            nat_bound,
            named: BTreeMap::new(),
        }
    }

    /// A small default universe (`NAT ↾ {0, 1, 2}`) that keeps trace sets
    /// comfortably small; suitable for unit tests and quick checks.
    pub fn small() -> Self {
        Universe::new(2)
    }

    /// The inclusive upper bound used for `NAT`.
    pub fn nat_bound(&self) -> u32 {
        self.nat_bound
    }

    /// Registers a finite interpretation for a named abstract set such as
    /// the paper's `M`.
    #[must_use]
    pub fn with_named<I: IntoIterator<Item = Value>>(mut self, name: &str, vals: I) -> Self {
        self.named
            .insert(name.to_string(), vals.into_iter().collect());
        self
    }

    /// Looks up the interpretation of a named set.
    pub fn resolve_named(&self, name: &str) -> Option<&BTreeSet<Value>> {
        self.named.get(name)
    }

    /// Enumerates the members of a message set under this universe, in
    /// deterministic order.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundedSet`] if `set` names an abstract set
    /// with no registered interpretation.
    pub fn enumerate(&self, set: &MsgSet) -> Result<Vec<Value>, EvalError> {
        set.enumerate(self.nat_bound, &|n| self.named.get(n).cloned())
    }

    /// Membership of `v` in `set` under this universe.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundedSet`] for unresolvable named sets.
    pub fn contains(&self, set: &MsgSet, v: &Value) -> Result<bool, EvalError> {
        match set.contains(v) {
            Some(b) => Ok(b),
            None => match set {
                MsgSet::Named(n) => self
                    .named
                    .get(n)
                    .map(|s| s.contains(v))
                    .ok_or_else(|| EvalError::UnboundedSet(n.clone())),
                _ => unreachable!("only named sets are undecidable"),
            },
        }
    }
}

impl Default for Universe {
    fn default() -> Self {
        Universe::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_enumeration_respects_bound() {
        let uni = Universe::new(3);
        let vs = uni.enumerate(&MsgSet::Nat).unwrap();
        assert_eq!(vs.len(), 4);
        assert_eq!(vs[0], Value::nat(0));
        assert_eq!(vs[3], Value::nat(3));
    }

    #[test]
    fn named_sets_resolve_through_table() {
        let uni = Universe::new(1).with_named("M", [Value::sym("a"), Value::sym("b")]);
        let vs = uni.enumerate(&MsgSet::Named("M".into())).unwrap();
        assert_eq!(vs.len(), 2);
        assert!(uni
            .contains(&MsgSet::Named("M".into()), &Value::sym("a"))
            .unwrap());
        assert!(!uni
            .contains(&MsgSet::Named("M".into()), &Value::sym("z"))
            .unwrap());
    }

    #[test]
    fn unknown_named_set_errors() {
        let uni = Universe::new(1);
        assert!(uni.enumerate(&MsgSet::Named("M".into())).is_err());
        assert!(uni
            .contains(&MsgSet::Named("M".into()), &Value::nat(0))
            .is_err());
    }

    #[test]
    fn finite_sets_pass_through() {
        let uni = Universe::new(0);
        let m = MsgSet::Finite([Value::nat(5), Value::nat(7)].into_iter().collect());
        assert_eq!(uni.enumerate(&m).unwrap().len(), 2);
        assert!(uni.contains(&m, &Value::nat(5)).unwrap());
    }

    #[test]
    fn default_is_small() {
        assert_eq!(Universe::default().nat_bound(), 2);
    }
}
