//! The paper's fixpoint construction for recursive definitions — §3.3.
//!
//! "We define `ρ⟦p ⊜ P⟧` as being true iff the value ascribed by ρ to the
//! name `p` is … the least solution to the equation `p = P` … computed as
//! the union of a series of successive approximations `a₀, a₁, a₂, …`:
//! `a₀ = ρ⟦STOP⟧`, `a_{i+1} = (ρ[a_i/p])⟦P⟧`." Process arrays iterate a
//! λ-indexed family the same way.
//!
//! [`fixpoint`] materialises that sequence (depth-bounded so every iterate
//! is finite), reports the iteration at which it converges, and exposes
//! each iterate for inspection — experiment **E5** of `DESIGN.md` prints
//! the growing iterate sizes, and the crate tests confirm the limit equals
//! the unfolding semantics of [`Semantics`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

use csp_lang::{Definitions, Env, EvalError, Process};
use csp_obs::{Collector, Metered, MetricsSnapshot};
use csp_trace::{Event, FxHashMap, TraceSet, Value};
use rayon::prelude::*;

use crate::{Semantics, Universe};

/// Identifies one process instance: a plain name, or an array element
/// with its subscript values.
pub type ProcKey = (String, Vec<Value>);

/// One approximation `a_i`: the trace set ascribed to every process
/// instance at iteration `i`.
pub type Approximation = BTreeMap<ProcKey, TraceSet>;

/// The computed approximation sequence.
#[derive(Debug, Clone)]
pub struct FixpointRun {
    /// `a₀, a₁, …` in order. Always non-empty (`a₀` maps every instance
    /// to `{<>}`).
    pub iterates: Vec<Approximation>,
    /// The first `i` with `a_{i+1} = a_i` (at the requested depth), if
    /// convergence was reached within the iteration budget.
    pub converged_at: Option<usize>,
    /// What the run cost: iteration/instance counts, changed-key and
    /// memo-hit tallies (always populated from cheap local counters),
    /// plus span timings when an enabled [`Collector`] was supplied.
    pub metrics: MetricsSnapshot,
}

impl Metered for FixpointRun {
    fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }
}

impl FixpointRun {
    /// The final approximation — the depth-`d` least fixed point when
    /// [`converged_at`](Self::converged_at) is `Some`.
    pub fn limit(&self) -> &Approximation {
        self.iterates.last().expect("iterates never empty")
    }

    /// The per-iteration sizes of one instance's trace set — the data
    /// series of experiment E5.
    pub fn growth_of(&self, key: &ProcKey) -> Vec<usize> {
        self.iterates
            .iter()
            .map(|a| a.get(key).map_or(1, TraceSet::len))
            .collect()
    }
}

/// Computes the approximation sequence for *all* definitions (the paper's
/// mutual-recursion form of rule 10 iterates all equations jointly),
/// truncating every trace set at `depth` and stopping at the earlier of
/// convergence or `max_iters` additional iterations after `a₀`.
///
/// # Errors
///
/// Fails when instantiating an array index set that cannot be enumerated
/// under `universe`, or on evaluation errors inside a body.
///
/// # Examples
///
/// ```
/// use csp_lang::{examples, Env};
/// use csp_semantics::{fixpoint, Universe};
///
/// let defs = examples::pipeline();
/// let uni = Universe::new(1);
/// let run = fixpoint(&defs, &uni, &Env::new(), 4, 16).unwrap();
/// assert!(run.converged_at.is_some());
/// let growth = run.growth_of(&("copier".to_string(), vec![]));
/// // a₀ ⊆ a₁ ⊆ … : sizes are non-decreasing.
/// assert!(growth.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn fixpoint(
    defs: &Definitions,
    universe: &Universe,
    env: &Env,
    depth: usize,
    max_iters: usize,
) -> Result<FixpointRun, EvalError> {
    fixpoint_with(
        defs,
        universe,
        env,
        depth,
        max_iters,
        &Collector::disabled(),
    )
}

/// [`fixpoint`] with an observation stream: records a root `fixpoint`
/// span, one `fixpoint.iter` span per iteration (with changed-key and
/// memo-hit counts), and one `fixpoint.key` child span per instance
/// actually re-evaluated. With `Collector::disabled()` the extra cost is
/// one branch per instrumentation point, and the returned run is
/// identical to [`fixpoint`]'s (the crate proptests pin this down).
///
/// # Errors
///
/// Same conditions as [`fixpoint`].
pub fn fixpoint_with(
    defs: &Definitions,
    universe: &Universe,
    env: &Env,
    depth: usize,
    max_iters: usize,
    collector: &Collector,
) -> Result<FixpointRun, EvalError> {
    let keys = instance_keys(defs, universe, env)?;

    // Hidden communications do not count toward visible trace length, so
    // iterates must be carried at an amplified working depth: each level
    // of `chan L; …` nesting may need up to 3× more raw events (matching
    // the Semantics default hide multiplier). The reported iterates are
    // truncated back to the requested depth.
    let nesting = keys
        .iter()
        .map(|k| {
            defs.get(&k.0)
                .map_or(0, |d| hide_nesting(d.body(), defs, &mut Vec::new()))
        })
        .max()
        .unwrap_or(0);
    let work_depth = depth * 3usize.saturating_pow(nesting as u32);

    // a₀ = STOP for every instance.
    let mut current: Approximation = keys
        .iter()
        .cloned()
        .map(|k| (k, TraceSet::stop()))
        .collect();
    let truncate = |a: &Approximation| -> Approximation {
        a.iter()
            .map(|(k, t)| (k.clone(), t.up_to_depth(depth)))
            .collect()
    };
    let mut iterates = vec![truncate(&current)];
    let mut converged_at = None;

    let sem = Semantics::new(defs, universe);

    // The direct call-dependencies of each definition: a Call node inside
    // `F_p` reads the *current* approximation of the called name, so
    // `a_{i+1}[p] = F_p(a_i)` can only differ from `a_i[p]` if one of
    // those names changed in the step producing `a_i`. Tracking the
    // changed names lets converged regions of a network drop out of the
    // joint iteration early instead of being re-evaluated to the end.
    let deps: FxHashMap<String, BTreeSet<String>> = keys
        .iter()
        .map(|k| k.0.clone())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .map(|name| {
            let mut called = BTreeSet::new();
            if let Some(def) = defs.get(&name) {
                called_names(def.body(), &mut called);
            }
            (name, called)
        })
        .collect();

    // `None` marks the first iteration, where every instance is dirty.
    let mut changed_names: Option<BTreeSet<String>> = None;

    let mut root = collector.span("fixpoint");
    root.record("instances", keys.len());
    root.record("depth", depth);
    root.record("work_depth", work_depth);
    root.record("max_iters", max_iters);

    // Cross-iteration tallies for the always-populated metrics snapshot.
    let mut total_memo_hits = 0u64;
    let mut total_memo_misses = 0u64;
    let mut total_changed = 0u64;
    let mut total_skipped = 0u64;

    for i in 0..max_iters {
        let mut iter_span = root.child("fixpoint.iter");
        iter_span.record("iter", i);
        let iter_start = collector.is_enabled().then(Instant::now);
        // One shared memo of Call-site truncations per iteration: every
        // instance evaluated this round reads the same `a_i`, so a
        // (callee, depth) truncation computed once serves all of them.
        let memo = CallMemo::new();
        let skipped = AtomicU64::new(0);
        let results: Vec<Result<(ProcKey, TraceSet), EvalError>> = keys
            .par_iter()
            .map(|key| {
                if let Some(changed) = &changed_names {
                    let stale = deps.get(&key.0).is_some_and(|d| !d.is_disjoint(changed));
                    if !stale {
                        // Early exit: no dependency changed last step, so
                        // re-evaluation would reproduce the current value.
                        skipped.fetch_add(1, Relaxed);
                        let t = current.get(key).cloned().unwrap_or_else(TraceSet::stop);
                        return Ok((key.clone(), t));
                    }
                }
                let mut key_span = iter_span.child("fixpoint.key");
                key_span.record("name", key.0.as_str());
                let (body, scope) = defs.resolve_call(&key.0, &key.1, env)?;
                let t = eval_approx(&sem, body, &scope, work_depth, &current, &memo)?;
                let t = t.up_to_depth(work_depth);
                key_span.record("traces", t.len());
                Ok((key.clone(), t))
            })
            .collect();

        let mut next = Approximation::new();
        let mut newly_changed = BTreeSet::new();
        for r in results {
            let (k, t) = r?;
            if current.get(&k) != Some(&t) {
                newly_changed.insert(k.0.clone());
            }
            next.insert(k, t);
        }
        let (hits, misses) = memo.counts();
        total_memo_hits += hits;
        total_memo_misses += misses;
        total_changed += newly_changed.len() as u64;
        total_skipped += skipped.load(Relaxed);
        iter_span.record("changed", newly_changed.len());
        iter_span.record("skipped", skipped.load(Relaxed));
        iter_span.record("memo_hits", hits);
        iter_span.record("memo_misses", misses);
        if let Some(t0) = iter_start {
            collector.observe_ns(
                "fixpoint.iter_ns",
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        let done = newly_changed.is_empty();
        changed_names = Some(newly_changed);
        current = next;
        iterates.push(truncate(&current));
        if done {
            converged_at = Some(i);
            break;
        }
    }

    root.record("converged", converged_at.is_some());
    root.end();

    let mut metrics = MetricsSnapshot::new();
    metrics
        .set_counter("fixpoint.instances", keys.len() as u64)
        .set_counter("fixpoint.iterations", (iterates.len() - 1) as u64)
        .set_counter("fixpoint.changed_keys", total_changed)
        .set_counter("fixpoint.skipped_keys", total_skipped)
        .set_counter("fixpoint.memo_hits", total_memo_hits)
        .set_counter("fixpoint.memo_misses", total_memo_misses)
        .set_counter("fixpoint.converged", u64::from(converged_at.is_some()));
    // Mirror the tallies into the collector so a session aggregating
    // several operations sees them alongside its span stats.
    if collector.is_enabled() {
        for (name, value) in &metrics.counters {
            collector.add(name.clone(), *value);
        }
    }

    Ok(FixpointRun {
        iterates,
        converged_at,
        metrics,
    })
}

/// Collects the process names a body calls directly (its Call nodes).
fn called_names(p: &Process, out: &mut BTreeSet<String>) {
    match p {
        Process::Stop | Process::Error(_) => {}
        Process::Call { name, .. } => {
            out.insert(name.clone());
        }
        Process::Output { then, .. } | Process::Input { then, .. } => called_names(then, out),
        Process::Choice(a, b) => {
            called_names(a, out);
            called_names(b, out);
        }
        Process::Parallel { left, right, .. } => {
            called_names(left, out);
            called_names(right, out);
        }
        Process::Hide { body, .. } => called_names(body, out),
    }
}

/// Maximum nesting depth of `chan L; …` reachable from `p`, following
/// process-name references (cycle-safe).
fn hide_nesting(p: &Process, defs: &Definitions, stack: &mut Vec<String>) -> usize {
    match p {
        Process::Stop | Process::Error(_) => 0,
        Process::Call { name, .. } => {
            if stack.iter().any(|n| n == name) {
                return 0;
            }
            stack.push(name.clone());
            let n = defs
                .get(name)
                .map_or(0, |d| hide_nesting(d.body(), defs, stack));
            stack.pop();
            n
        }
        Process::Output { then, .. } | Process::Input { then, .. } => {
            hide_nesting(then, defs, stack)
        }
        Process::Choice(a, b) => hide_nesting(a, defs, stack).max(hide_nesting(b, defs, stack)),
        Process::Parallel { left, right, .. } => {
            hide_nesting(left, defs, stack).max(hide_nesting(right, defs, stack))
        }
        Process::Hide { body, .. } => 1 + hide_nesting(body, defs, stack),
    }
}

/// All process instances: plain names, and array elements for every
/// subscript value the universe can enumerate from the parameter set.
fn instance_keys(
    defs: &Definitions,
    universe: &Universe,
    env: &Env,
) -> Result<Vec<ProcKey>, EvalError> {
    let mut keys = Vec::new();
    for def in defs.iter() {
        match def.param() {
            None => keys.push((def.name().to_string(), Vec::new())),
            Some((_, set)) => {
                let m = set.eval(env)?;
                for v in universe.enumerate(&m)? {
                    keys.push((def.name().to_string(), vec![v]));
                }
            }
        }
    }
    Ok(keys)
}

/// Memo of Call-site truncations, shared across the instances of one
/// iteration: `(callee key, depth) → a_i[callee] ↾ depth`, plus relaxed
/// hit/miss tallies for the iteration's instrumentation.
struct CallMemo {
    map: Mutex<FxHashMap<(ProcKey, usize), TraceSet>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CallMemo {
    fn new() -> Self {
        CallMemo {
            map: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn counts(&self) -> (u64, u64) {
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }
}

/// Evaluates a body with process names interpreted by the current
/// approximation (the environment `ρ[a_i/p]` of §3.3) instead of by
/// unfolding.
fn eval_approx(
    sem: &Semantics<'_>,
    p: &Process,
    env: &Env,
    depth: usize,
    approx: &Approximation,
    memo: &CallMemo,
) -> Result<TraceSet, EvalError> {
    match p {
        Process::Stop | Process::Error(_) => Ok(TraceSet::stop()),
        Process::Call { name, args } => {
            let vals = args
                .iter()
                .map(|e| e.eval(env))
                .collect::<Result<Vec<_>, _>>()?;
            let key = (name.clone(), vals);
            let memo_key = (key, depth);
            if let Some(t) = memo.map.lock().expect("call memo").get(&memo_key) {
                memo.hits.fetch_add(1, Relaxed);
                return Ok(t.clone());
            }
            memo.misses.fetch_add(1, Relaxed);
            // Instances outside the enumerated family (or whose subscript
            // the universe did not cover) default to a₀ = STOP.
            let t = approx
                .get(&memo_key.0)
                .cloned()
                .unwrap_or_else(TraceSet::stop)
                .up_to_depth(depth);
            memo.map
                .lock()
                .expect("call memo")
                .insert(memo_key, t.clone());
            Ok(t)
        }
        Process::Output { chan, msg, then } => {
            if depth == 0 {
                return Ok(TraceSet::stop());
            }
            let c = chan.resolve(env)?;
            let v = msg.eval(env)?;
            let inner = eval_approx(sem, then, env, depth - 1, approx, memo)?;
            Ok(inner.prefixed(Event::new(c, v)))
        }
        Process::Input {
            chan,
            var,
            set,
            then,
        } => {
            if depth == 0 {
                return Ok(TraceSet::stop());
            }
            let c = chan.resolve(env)?;
            let m = set.eval(env)?;
            let mut out = TraceSet::stop();
            for v in sem.universe().enumerate(&m)? {
                let scope = env.bind(var, v.clone());
                let inner = eval_approx(sem, then, &scope, depth - 1, approx, memo)?;
                out = out.union(&inner.prefixed(Event::new(c.clone(), v)));
            }
            Ok(out)
        }
        Process::Choice(a, b) => Ok(eval_approx(sem, a, env, depth, approx, memo)?
            .union(&eval_approx(sem, b, env, depth, approx, memo)?)),
        Process::Parallel {
            left,
            right,
            left_alpha,
            right_alpha,
        } => {
            let (x, y) = sem.parallel_alphabets(
                left,
                right,
                left_alpha.as_deref(),
                right_alpha.as_deref(),
                env,
            )?;
            let tl = eval_approx(sem, left, env, depth, approx, memo)?;
            let tr = eval_approx(sem, right, env, depth, approx, memo)?;
            Ok(tl.parallel(&x, &tr, &y).up_to_depth(depth))
        }
        Process::Hide { channels, body } => {
            let hidden: csp_trace::ChannelSet = channels
                .iter()
                .map(|c| c.resolve(env))
                .collect::<Result<_, _>>()?;
            // Iterate bodies at triple depth, mirroring Semantics' default
            // hide handling.
            let tb = eval_approx(sem, body, env, depth * 3, approx, memo)?;
            Ok(tb.hide(&hidden).up_to_depth(depth))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_lang::{examples, parse_definitions};

    fn key(name: &str) -> ProcKey {
        (name.to_string(), Vec::new())
    }

    #[test]
    fn copier_iterates_grow_and_converge() {
        let defs = parse_definitions("copier = input?x:NAT -> wire!x -> copier").unwrap();
        let uni = Universe::new(1);
        let run = fixpoint(&defs, &uni, &Env::new(), 4, 16).unwrap();
        assert!(run.converged_at.is_some());
        let growth = run.growth_of(&key("copier"));
        assert_eq!(growth[0], 1); // a₀ = {<>}
        assert!(growth.windows(2).all(|w| w[0] <= w[1]), "{growth:?}");
        // One unfolding contributes two events, so depth 4 needs a₂ = limit.
        let limit = run.limit().get(&key("copier")).unwrap();
        assert_eq!(limit.depth(), 4);
    }

    #[test]
    fn limit_agrees_with_unfolding_semantics() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let env = Env::new();
        let run = fixpoint(&defs, &uni, &env, 4, 16).unwrap();
        let sem = Semantics::new(&defs, &uni);
        for name in ["copier", "recopier", "pipeline"] {
            let via_fix = run.limit().get(&key(name)).unwrap();
            let via_unfold = sem.denote_name(name, &env, 4).unwrap();
            assert_eq!(via_fix, &via_unfold, "disagreement on {name}");
        }
    }

    #[test]
    fn unguarded_equation_converges_to_stop_immediately() {
        let defs = parse_definitions("p = p").unwrap();
        let uni = Universe::small();
        let run = fixpoint(&defs, &uni, &Env::new(), 5, 8).unwrap();
        assert_eq!(run.converged_at, Some(0));
        assert_eq!(run.limit().get(&key("p")).unwrap().len(), 1);
    }

    #[test]
    fn array_instances_iterate_jointly() {
        let defs = parse_definitions("q[x:0..1] = wire!x -> q[1-x]").unwrap();
        let uni = Universe::small();
        let run = fixpoint(&defs, &uni, &Env::new(), 3, 16).unwrap();
        assert!(run.converged_at.is_some());
        let q0 = run
            .limit()
            .get(&("q".to_string(), vec![Value::Int(0)]))
            .unwrap();
        // q[0] alternates 0,1,0,…
        let t = csp_trace::Trace::parse_like([
            ("wire", Value::nat(0)),
            ("wire", Value::nat(1)),
            ("wire", Value::nat(0)),
        ]);
        assert!(q0.contains(&t));
    }

    #[test]
    fn mutual_recursion_converges() {
        let defs = parse_definitions(
            "ping = a!0 -> pong
             pong = b!1 -> ping",
        )
        .unwrap();
        let uni = Universe::small();
        let run = fixpoint(&defs, &uni, &Env::new(), 4, 16).unwrap();
        assert!(run.converged_at.is_some());
        let ping = run.limit().get(&key("ping")).unwrap();
        let t = csp_trace::Trace::parse_like([
            ("a", Value::nat(0)),
            ("b", Value::nat(1)),
            ("a", Value::nat(0)),
            ("b", Value::nat(1)),
        ]);
        assert!(ping.contains(&t));
    }

    #[test]
    fn non_convergence_within_budget_is_reported() {
        let defs = parse_definitions("copier = input?x:NAT -> wire!x -> copier").unwrap();
        let uni = Universe::new(1);
        // Depth 10 needs ~5 iterations; budget 2 is insufficient.
        let run = fixpoint(&defs, &uni, &Env::new(), 10, 2).unwrap();
        assert_eq!(run.converged_at, None);
        assert_eq!(run.iterates.len(), 3); // a₀, a₁, a₂
    }
}
