//! The compiled verification backend: definitions lowered to an explicit
//! labelled transition system with interned states.
//!
//! The enumerative engine ([`Lts::traces_budgeted`]) recomputes the
//! transition relation at every `(trace, configuration)` pair it visits —
//! for a confluent network the same configuration is re-stepped once per
//! interleaving that reaches it, and each step re-resolves alphabets and
//! re-closes operand environments. [`CompiledLts`] removes exactly that
//! redundancy: configurations are interned into an arena of [`StateId`]s
//! the first time they are seen, the enabled steps of each state are
//! computed once (on the fly, so parallel composition and hiding are
//! still product automata over *reachable* states only, never
//! materialised trace sets), and every later visit is a table lookup.
//!
//! On top of the compiled successor rows, reachability-style checks
//! (deadlock search, trace refinement) run over [`StateSet`] bitset rows
//! instead of ordered configuration sets.
//!
//! The enumerative engine stays authoritative: it is the direct
//! transcription of the paper's semantics, so the compiled engine is
//! validated against it the same way the interned trace engine is
//! validated against `NaiveTraceSet` — identical budgets, identical
//! exploration order, byte-identical trace sets (see the tests here and
//! the property harness in `csp-verify`). [`Engine`] is the selector the
//! higher layers thread through their option bundles.

use std::collections::{BTreeMap, BTreeSet};

use csp_lang::{Definitions, Env, EvalError, Process};
use csp_trace::{Event, Trace, TraceSet};

use crate::{Config, Lts, Step, Universe};

/// Which verification backend answers a query.
///
/// The selector is `#[non_exhaustive]`: future backends (e.g. a failures
/// model) can be added without breaking callers. Parse/display round-trip
/// through the CLI spelling:
///
/// ```
/// use csp_semantics::Engine;
///
/// let e: Engine = "compiled".parse().unwrap();
/// assert_eq!(e, Engine::Compiled);
/// assert_eq!(e.to_string(), "compiled");
/// assert_eq!(Engine::default(), Engine::Auto);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Engine {
    /// The enumerative trace-set engine — the paper's semantics
    /// transcribed directly; kept as the cross-validation oracle.
    Enumerative,
    /// The compiled-LTS engine: interned states, memoised successor
    /// rows, bitset reachability.
    Compiled,
    /// Resolve per query: compiled for networks (any reachable parallel
    /// composition or hiding, where re-stepping is quadratic pain),
    /// enumerative for plain sequential terms (where interning is pure
    /// overhead).
    #[default]
    Auto,
}

impl Engine {
    /// The CLI spelling (`enumerative` / `compiled` / `auto`).
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Enumerative => "enumerative",
            Engine::Compiled => "compiled",
            Engine::Auto => "auto",
        }
    }

    /// Resolves `Auto` against a concrete query: compiled when the
    /// definitions reachable from `root` contain a parallel composition
    /// or hiding, enumerative otherwise. `Enumerative` and `Compiled`
    /// resolve to themselves.
    pub fn resolve(self, defs: &Definitions, root: &Process) -> Engine {
        match self {
            Engine::Auto => {
                if prefers_compiled(defs, root) {
                    Engine::Compiled
                } else {
                    Engine::Enumerative
                }
            }
            other => other,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "enumerative" => Ok(Engine::Enumerative),
            "compiled" => Ok(Engine::Compiled),
            "auto" => Ok(Engine::Auto),
            other => Err(format!(
                "unknown engine `{other}` (expected `enumerative`, `compiled`, or `auto`)"
            )),
        }
    }
}

/// True when any definition reachable from `root` composes processes in
/// parallel or hides channels — the shapes whose state spaces revisit
/// configurations across interleavings.
fn prefers_compiled(defs: &Definitions, root: &Process) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack: Vec<&Process> = vec![root];
    while let Some(p) = stack.pop() {
        match p {
            Process::Parallel { .. } | Process::Hide { .. } => return true,
            Process::Stop | Process::Error(_) => {}
            Process::Call { name, .. } => {
                if seen.insert(name.as_str()) {
                    if let Some(def) = defs.get(name) {
                        stack.push(def.body());
                    }
                }
            }
            Process::Output { then, .. } | Process::Input { then, .. } => stack.push(then),
            Process::Choice(a, b) => {
                stack.push(a);
                stack.push(b);
            }
        }
    }
    false
}

/// An interned configuration in a [`CompiledLts`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(u32);

impl StateId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One compiled transition: the target is a [`StateId`], not a
/// configuration, so following it is an array index instead of a term
/// rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledStep {
    /// An externally visible communication.
    Visible(Event, StateId),
    /// A concealed communication.
    Internal(StateId),
}

/// A set of [`StateId`]s as a bitset row (one bit per arena slot) — the
/// representation the reachability checks iterate over.
///
/// Invariant: no trailing zero words, so equal sets compare equal (the
/// refinement walk keys its memo on these).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct StateSet {
    words: Vec<u64>,
}

impl StateSet {
    /// The empty set.
    pub fn new() -> Self {
        StateSet::default()
    }

    /// Inserts a state; returns `true` when it was not already present.
    pub fn insert(&mut self, id: StateId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// True when the state is in the set.
    pub fn contains(&self, id: StateId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of states in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no state is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The member states, ascending.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| StateId((wi * 64 + b) as u32))
        })
    }
}

impl FromIterator<StateId> for StateSet {
    fn from_iter<I: IntoIterator<Item = StateId>>(iter: I) -> Self {
        let mut set = StateSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

/// The compiled transition-system view of a definition list: an arena of
/// interned configurations with memoised successor rows, grown on the
/// fly as checks reach new states.
#[derive(Debug)]
pub struct CompiledLts<'a> {
    lts: Lts<'a>,
    states: Vec<Config>,
    index: BTreeMap<Config, u32>,
    rows: Vec<Option<Vec<CompiledStep>>>,
    transitions: usize,
}

impl<'a> CompiledLts<'a> {
    /// An empty arena over the given definitions and universe.
    pub fn new(defs: &'a Definitions, universe: &'a Universe) -> Self {
        CompiledLts {
            lts: Lts::new(defs, universe),
            states: Vec::new(),
            index: BTreeMap::new(),
            rows: Vec::new(),
            transitions: 0,
        }
    }

    /// Interns a configuration, returning its arena id (stable for the
    /// lifetime of the arena; the same configuration always gets the
    /// same id).
    pub fn intern(&mut self, config: Config) -> StateId {
        if let Some(&i) = self.index.get(&config) {
            return StateId(i);
        }
        let i = u32::try_from(self.states.len()).expect("state arena exceeds u32");
        self.states.push(config.clone());
        self.index.insert(config, i);
        self.rows.push(None);
        StateId(i)
    }

    /// Interns the initial configuration of a named process.
    pub fn start(&mut self, name: &str, env: &Env) -> StateId {
        let config = self.lts.initial(name, env);
        self.intern(config)
    }

    /// The configuration behind an id.
    pub fn state(&self, id: StateId) -> &Config {
        &self.states[id.index()]
    }

    /// Distinct configurations interned so far.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Transitions in the compiled rows so far.
    pub fn num_transitions(&self) -> usize {
        self.transitions
    }

    /// The successor row of a state, compiling it on first access. The
    /// steps keep the exact order [`Lts::steps`] produces them in, so
    /// walks over the compiled graph reproduce the enumerative engine's
    /// exploration order (and therefore its budget-cut trace sets)
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures from the transition relation.
    pub fn steps_of(&mut self, id: StateId) -> Result<&[CompiledStep], EvalError> {
        if self.rows[id.index()].is_none() {
            let config = self.states[id.index()].clone();
            let steps = self.lts.steps(&config)?;
            let row: Vec<CompiledStep> = steps
                .into_iter()
                .map(|s| match s {
                    Step::Visible(e, c) => CompiledStep::Visible(e, self.intern(c)),
                    Step::Internal(c) => CompiledStep::Internal(self.intern(c)),
                })
                .collect();
            self.transitions += row.len();
            self.rows[id.index()] = Some(row);
        }
        Ok(self.rows[id.index()].as_deref().expect("row just compiled"))
    }

    /// The set of visible traces of length at most `depth`, exploring at
    /// most `internal_budget` concealed communications along any path —
    /// the compiled counterpart of [`Lts::traces_budgeted`], guaranteed
    /// to produce the identical trace set (same dedup, same order, same
    /// budget cuts; only the per-visit cost differs).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures from the transition relation.
    pub fn traces_budgeted(
        &mut self,
        start: StateId,
        depth: usize,
        internal_budget: usize,
    ) -> Result<TraceSet, EvalError> {
        let mut out = TraceSet::stop();
        let mut seen: BTreeSet<(Trace, u32)> = BTreeSet::new();
        self.walk(
            start,
            depth,
            internal_budget,
            &Trace::empty(),
            &mut out,
            &mut seen,
        )?;
        Ok(out)
    }

    /// [`traces_budgeted`](Self::traces_budgeted) with the default
    /// internal budget (`depth × 3`, matching [`Lts::traces`]).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures from the transition relation.
    pub fn traces(&mut self, start: StateId, depth: usize) -> Result<TraceSet, EvalError> {
        self.traces_budgeted(start, depth, depth * 3)
    }

    fn walk(
        &mut self,
        id: StateId,
        depth: usize,
        internal_budget: usize,
        prefix: &Trace,
        out: &mut TraceSet,
        seen: &mut BTreeSet<(Trace, u32)>,
    ) -> Result<(), EvalError> {
        if !seen.insert((prefix.clone(), id.0)) {
            return Ok(());
        }
        out.insert_closed(prefix.clone());
        let n = self.steps_of(id)?.len();
        for k in 0..n {
            let step = self.rows[id.index()].as_ref().expect("compiled")[k].clone();
            match step {
                CompiledStep::Visible(e, next) => {
                    if depth > 0 {
                        self.walk(next, depth - 1, internal_budget, &prefix.snoc(e), out, seen)?;
                    }
                }
                CompiledStep::Internal(next) => {
                    if internal_budget > 0 {
                        self.walk(next, depth, internal_budget - 1, prefix, out, seen)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Every state reachable from `set` by at most `budget` concealed
    /// steps (the τ-closure, bounded like the trace walks bound hidden
    /// chatter).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures from the transition relation.
    pub fn tau_closure(&mut self, set: StateSet, budget: usize) -> Result<StateSet, EvalError> {
        let mut closed = set;
        let mut frontier: Vec<StateId> = closed.iter().collect();
        let mut layer = 0;
        while !frontier.is_empty() && layer < budget {
            let mut next = Vec::new();
            for id in frontier {
                let n = self.steps_of(id)?.len();
                for k in 0..n {
                    if let CompiledStep::Internal(t) =
                        self.rows[id.index()].as_ref().expect("compiled")[k]
                    {
                        if closed.insert(t) {
                            next.push(t);
                        }
                    }
                }
            }
            frontier = next;
            layer += 1;
        }
        Ok(closed)
    }

    /// Bounded trace refinement by subset construction: every visible
    /// behaviour of `impl_start` up to `depth` events must be matched by
    /// `spec_start`. The walk pairs each implementation state with the
    /// bitset of specification states reachable on the same visible
    /// trace (τ-closed after every event); a pair whose specification
    /// side empties yields the counterexample trace. Nothing is
    /// materialised — the check is reachability over compiled rows.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures from the transition relation.
    pub fn refines(
        &mut self,
        impl_start: StateId,
        spec_start: StateId,
        depth: usize,
        internal_budget: usize,
    ) -> Result<Result<(), Trace>, EvalError> {
        let spec0 = self.tau_closure(StateSet::from_iter([spec_start]), internal_budget)?;
        let mut seen: BTreeSet<(u32, StateSet, usize, usize)> = BTreeSet::new();
        self.refine_walk(
            impl_start,
            &spec0,
            depth,
            internal_budget,
            &Trace::empty(),
            &mut seen,
        )
    }

    fn refine_walk(
        &mut self,
        id: StateId,
        spec: &StateSet,
        depth: usize,
        internal_left: usize,
        prefix: &Trace,
        seen: &mut BTreeSet<(u32, StateSet, usize, usize)>,
    ) -> Result<Result<(), Trace>, EvalError> {
        if !seen.insert((id.0, spec.clone(), depth, internal_left)) {
            return Ok(Ok(()));
        }
        let n = self.steps_of(id)?.len();
        for k in 0..n {
            let step = self.rows[id.index()].as_ref().expect("compiled")[k].clone();
            match step {
                CompiledStep::Visible(e, next) => {
                    if depth == 0 {
                        continue;
                    }
                    let mut after = StateSet::new();
                    for s in spec.iter().collect::<Vec<_>>() {
                        let m = self.steps_of(s)?.len();
                        for j in 0..m {
                            if let CompiledStep::Visible(e2, t) =
                                self.rows[s.index()].as_ref().expect("compiled")[j]
                            {
                                if e2 == e {
                                    after.insert(t);
                                }
                            }
                        }
                    }
                    let trace = prefix.snoc(e);
                    if after.is_empty() {
                        return Ok(Err(trace));
                    }
                    let after = self.tau_closure(after, internal_left)?;
                    if let Err(cex) =
                        self.refine_walk(next, &after, depth - 1, internal_left, &trace, seen)?
                    {
                        return Ok(Err(cex));
                    }
                }
                CompiledStep::Internal(next) => {
                    if internal_left > 0 {
                        if let Err(cex) =
                            self.refine_walk(next, spec, depth, internal_left - 1, prefix, seen)?
                        {
                            return Ok(Err(cex));
                        }
                    }
                }
            }
        }
        Ok(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_lang::{examples, parse_definitions};
    use csp_trace::Value;

    #[test]
    fn engine_parse_display_round_trip() {
        for e in [Engine::Enumerative, Engine::Compiled, Engine::Auto] {
            let back: Engine = e.to_string().parse().unwrap();
            assert_eq!(back, e);
        }
        let err = "turbo".parse::<Engine>().unwrap_err();
        assert!(
            err.contains("turbo") && err.contains("enumerative"),
            "{err}"
        );
    }

    #[test]
    fn auto_resolves_by_network_shape() {
        let defs = examples::pipeline();
        // The pipeline hides `wire` and composes in parallel: compiled.
        assert_eq!(
            Engine::Auto.resolve(&defs, &Process::call("pipeline")),
            Engine::Compiled
        );
        // A single sequential component: enumerative.
        assert_eq!(
            Engine::Auto.resolve(&defs, &Process::call("copier")),
            Engine::Enumerative
        );
        // Explicit choices always win.
        assert_eq!(
            Engine::Compiled.resolve(&defs, &Process::call("copier")),
            Engine::Compiled
        );
        assert_eq!(
            Engine::Enumerative.resolve(&defs, &Process::call("pipeline")),
            Engine::Enumerative
        );
    }

    #[test]
    fn state_sets_behave_like_sets() {
        let mut s = StateSet::new();
        assert!(s.is_empty());
        assert!(s.insert(StateId(3)));
        assert!(s.insert(StateId(200)));
        assert!(!s.insert(StateId(3)));
        assert!(s.contains(StateId(200)) && !s.contains(StateId(4)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![StateId(3), StateId(200)]);
        let t: StateSet = [StateId(200), StateId(3)].into_iter().collect();
        assert_eq!(s, t, "order-insensitive equality");
    }

    #[test]
    fn interning_is_stable() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let mut c = CompiledLts::new(&defs, &uni);
        let a = c.start("pipeline", &Env::new());
        let b = c.start("pipeline", &Env::new());
        assert_eq!(a, b);
        assert_eq!(c.num_states(), 1);
    }

    #[test]
    fn compiled_traces_equal_enumerative_on_pipeline() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let lts = Lts::new(&defs, &uni);
        let env = Env::new();
        for name in ["copier", "recopier", "pipeline"] {
            for depth in 0..=4 {
                let mut c = CompiledLts::new(&defs, &uni);
                let start = c.start(name, &env);
                let compiled = c.traces(start, depth).unwrap();
                let enumerated = lts.traces(&lts.initial(name, &env), depth).unwrap();
                assert_eq!(compiled, enumerated, "{name} at depth {depth}");
            }
        }
    }

    #[test]
    fn compiled_traces_equal_enumerative_on_protocol() {
        let defs = examples::protocol();
        let uni = Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]);
        let lts = Lts::new(&defs, &uni);
        let env = Env::new();
        for depth in 0..=3 {
            let mut c = CompiledLts::new(&defs, &uni);
            let start = c.start("protocol", &env);
            let compiled = c.traces(start, depth).unwrap();
            let enumerated = lts.traces(&lts.initial("protocol", &env), depth).unwrap();
            assert_eq!(compiled, enumerated, "protocol at depth {depth}");
        }
    }

    #[test]
    fn compiled_traces_equal_enumerative_on_multiplier() {
        let defs = parse_definitions(csp_lang::examples::MULTIPLIER_SRC).unwrap();
        let env = examples::multiplier_env(&[2, 3, 5]);
        let uni = Universe::new(10);
        let lts = Lts::new(&defs, &uni);
        let mut c = CompiledLts::new(&defs, &uni);
        let start = c.intern(Config::new(Process::call("multiplier"), env.clone()));
        let compiled = c.traces_budgeted(start, 4, 16).unwrap();
        let enumerated = lts
            .traces_budgeted(&Config::new(Process::call("multiplier"), env), 4, 16)
            .unwrap();
        assert_eq!(compiled, enumerated);
        // The whole point: far fewer states than (trace, state) visits.
        assert!(c.num_states() > 1);
        assert!(c.num_states() < compiled.len() * 4);
    }

    #[test]
    fn compiled_refinement_agrees_with_trace_subset() {
        let defs = parse_definitions(
            "spec = a?x:NAT -> spec | b!0 -> spec
             good = a?x:NAT -> good
             bad = c!9 -> bad",
        )
        .unwrap();
        let uni = Universe::new(1);
        let env = Env::new();
        let mut c = CompiledLts::new(&defs, &uni);
        let spec = c.start("spec", &env);
        let good = c.start("good", &env);
        let bad = c.start("bad", &env);
        assert!(c.refines(good, spec, 3, 9).unwrap().is_ok());
        let cex = c.refines(bad, spec, 3, 9).unwrap().unwrap_err();
        assert_eq!(cex.len(), 1, "shortest counterexample: {cex}");
        // Reflexivity.
        assert!(c.refines(spec, spec, 3, 9).unwrap().is_ok());
    }

    #[test]
    fn compiled_refinement_sees_through_hiding() {
        // pipeline (with wire hidden) refines the one-place buffer spec
        // only via τ-closure over the hidden synchronisations.
        let defs = parse_definitions(
            "copier = input?x:NAT -> wire!x -> copier
             recopier = wire?y:NAT -> output!y -> recopier
             pipeline = chan wire; (copier || recopier)
             anyio = input?x:NAT -> anyio | output!0 -> anyio | output!1 -> anyio",
        )
        .unwrap();
        let uni = Universe::new(1);
        let env = Env::new();
        let mut c = CompiledLts::new(&defs, &uni);
        let impl_s = c.start("pipeline", &env);
        let spec_s = c.start("anyio", &env);
        assert!(c.refines(impl_s, spec_s, 3, 9).unwrap().is_ok());
        // And the reverse direction fails: anyio can output before any
        // input, which the pipeline never does.
        let cex = c.refines(spec_s, impl_s, 3, 9).unwrap().unwrap_err();
        assert!(!cex.is_empty());
    }

    #[test]
    fn rows_are_compiled_once() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let mut c = CompiledLts::new(&defs, &uni);
        let start = c.start("pipeline", &env_new());
        c.traces(start, 3).unwrap();
        let states = c.num_states();
        let transitions = c.num_transitions();
        // A second walk re-uses every row: no new states, no new rows.
        c.traces(start, 3).unwrap();
        assert_eq!(c.num_states(), states);
        assert_eq!(c.num_transitions(), transitions);
    }

    fn env_new() -> Env {
        Env::new()
    }
}
