//! Trace-set comparison: equality and refinement with discrepancy
//! reports.
//!
//! Used for the paper's §4 identity `STOP | P = P`, for the
//! operational/denotational agreement theorem, and by the model checker's
//! regression tests.

use csp_trace::{Trace, TraceSet};

/// The difference between two trace sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discrepancy {
    /// Traces in the left set but not the right, in sorted order
    /// (truncated to a small sample for display).
    pub only_left: Vec<Trace>,
    /// Traces in the right set but not the left.
    pub only_right: Vec<Trace>,
}

impl Discrepancy {
    /// True when the two sets were equal.
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty()
    }
}

impl std::fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "trace sets are equal");
        }
        if !self.only_left.is_empty() {
            writeln!(f, "only in left ({}):", self.only_left.len())?;
            for t in self.only_left.iter().take(5) {
                writeln!(f, "  {t}")?;
            }
        }
        if !self.only_right.is_empty() {
            writeln!(f, "only in right ({}):", self.only_right.len())?;
            for t in self.only_right.iter().take(5) {
                writeln!(f, "  {t}")?;
            }
        }
        Ok(())
    }
}

/// Compares two trace sets, returning `None` when equal and the
/// difference otherwise.
///
/// # Examples
///
/// ```
/// use csp_semantics::compare;
/// use csp_trace::{Trace, TraceSet, Value};
///
/// let p = TraceSet::closure_of([Trace::parse_like([("a", Value::nat(1))])]);
/// assert!(compare(&p, &p).is_none());
/// assert!(compare(&p, &TraceSet::stop()).is_some());
/// ```
pub fn compare(left: &TraceSet, right: &TraceSet) -> Option<Discrepancy> {
    let only_left: Vec<Trace> = left
        .iter()
        .filter(|t| !right.contains(t))
        .cloned()
        .collect();
    let only_right: Vec<Trace> = right
        .iter()
        .filter(|t| !left.contains(t))
        .cloned()
        .collect();
    if only_left.is_empty() && only_right.is_empty() {
        None
    } else {
        Some(Discrepancy {
            only_left,
            only_right,
        })
    }
}

/// Trace refinement: every behaviour of `impl_set` is a behaviour of
/// `spec_set`. Returns the first witness to the contrary, if any.
pub fn refines(impl_set: &TraceSet, spec_set: &TraceSet) -> Result<(), Trace> {
    for t in impl_set.iter() {
        if !spec_set.contains(t) {
            return Err(t.clone());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::Value;

    fn tr(pairs: &[(&'static str, u32)]) -> Trace {
        Trace::parse_like(pairs.iter().map(|&(c, n)| (c, Value::nat(n))))
    }

    #[test]
    fn equal_sets_compare_none() {
        let p = TraceSet::closure_of([tr(&[("a", 1), ("b", 2)])]);
        assert!(compare(&p, &p.clone()).is_none());
    }

    #[test]
    fn differences_are_reported_both_ways() {
        let p = TraceSet::closure_of([tr(&[("a", 1)])]);
        let q = TraceSet::closure_of([tr(&[("b", 2)])]);
        let d = compare(&p, &q).unwrap();
        assert_eq!(d.only_left, vec![tr(&[("a", 1)])]);
        assert_eq!(d.only_right, vec![tr(&[("b", 2)])]);
        assert!(!d.is_empty());
        let shown = d.to_string();
        assert!(shown.contains("only in left"));
        assert!(shown.contains("only in right"));
    }

    #[test]
    fn refinement_finds_witness() {
        let spec = TraceSet::closure_of([tr(&[("a", 1), ("b", 2)])]);
        let good = TraceSet::closure_of([tr(&[("a", 1)])]);
        let bad = TraceSet::closure_of([tr(&[("c", 3)])]);
        assert!(refines(&good, &spec).is_ok());
        assert_eq!(refines(&bad, &spec), Err(tr(&[("c", 3)])));
        // Refinement is reflexive.
        assert!(refines(&spec, &spec).is_ok());
    }
}
