//! Operational semantics: a labelled transition system over process
//! configurations.
//!
//! The paper defines processes denotationally; an implementation executes
//! them step by step. This module derives the transition relation from
//! the syntax and proves (in tests, and as property tests at the crate
//! root) that the traces it generates agree with the denotational model —
//! the standard "operational/denotational consistency" result the paper
//! leaves implicit.
//!
//! Compared with [`Semantics`](crate::Semantics) (which evaluates parallel
//! operands independently and merges whole trace sets), the LTS composes
//! *on the fly*: only reachable synchronisations are explored, which is
//! exponentially cheaper for networks like the multiplier array and is
//! what the benchmark harness uses for the larger experiments.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use csp_lang::{ChanRef, Definitions, Env, EvalError, Expr, Process};
use csp_trace::{ChannelSet, Event, Trace, TraceSet};

use crate::Universe;

/// A configuration: a process term plus the environment binding its free
/// variables (input payloads, array parameters, host constants).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Config {
    process: Arc<Process>,
    env: Env,
}

impl Config {
    /// Creates a configuration.
    pub fn new(process: Process, env: Env) -> Self {
        Config {
            process: Arc::new(process),
            env,
        }
    }

    /// A configuration sharing an existing term — successor construction
    /// in the transition relation reuses unchanged subterms this way.
    fn from_arc(process: Arc<Process>, env: Env) -> Self {
        Config { process, env }
    }

    /// The process term.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// The environment.
    pub fn env(&self) -> &Env {
        &self.env
    }
}

/// One transition out of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// An externally visible communication.
    Visible(Event, Config),
    /// A communication concealed by `chan L; …`; it advances the network
    /// without extending the visible trace.
    Internal(Config),
}

/// The transition-system view of a definition list.
#[derive(Debug, Clone)]
pub struct Lts<'a> {
    defs: &'a Definitions,
    universe: &'a Universe,
    fuel0: usize,
    /// Resolved parallel alphabets, keyed by the explicit channel list.
    /// Once a `||` has been expanded its alphabets are materialised into
    /// every successor term as constant channel references, so the same
    /// lists are re-resolved on every subsequent step of the network;
    /// caching them skips that churn. Only constant (environment-free)
    /// lists are cached. Shared across clones.
    alpha_memo: Arc<Mutex<BTreeMap<Vec<ChanRef>, Arc<ChannelSet>>>>,
}

impl<'a> Lts<'a> {
    /// Creates the LTS over the given definitions and universe.
    pub fn new(defs: &'a Definitions, universe: &'a Universe) -> Self {
        Lts {
            defs,
            universe,
            fuel0: (defs.len() + 2).max(8),
            alpha_memo: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The alphabet of one `||` operand: an explicit channel list is
    /// resolved (with memoisation when it is constant), an absent one is
    /// inferred from the operand's text.
    fn resolve_alpha(
        &self,
        explicit: Option<&[ChanRef]>,
        operand: &Process,
        env: &Env,
    ) -> Result<Arc<ChannelSet>, EvalError> {
        let Some(refs) = explicit else {
            return Ok(Arc::new(csp_lang::channel_alphabet(
                operand, self.defs, env,
            )?));
        };
        let constant = refs.iter().all(|c| c.indices().iter().all(Expr::is_closed));
        if constant {
            if let Some(hit) = self.alpha_memo.lock().expect("alphabet memo").get(refs) {
                return Ok(Arc::clone(hit));
            }
        }
        let set = Arc::new(crate::denote::resolve_chanrefs(refs, env)?);
        if constant {
            self.alpha_memo
                .lock()
                .expect("alphabet memo")
                .insert(refs.to_vec(), Arc::clone(&set));
        }
        Ok(set)
    }

    /// The initial configuration for a named process.
    pub fn initial(&self, name: &str, env: &Env) -> Config {
        Config::new(Process::call(name), env.clone())
    }

    /// All transitions enabled in `config`.
    ///
    /// # Errors
    ///
    /// Fails on undefined names, unbound variables, or unresolvable sets.
    pub fn steps(&self, config: &Config) -> Result<Vec<Step>, EvalError> {
        self.steps_inner(&config.process, &config.env, self.fuel0)
    }

    fn steps_inner(&self, p: &Process, env: &Env, fuel: usize) -> Result<Vec<Step>, EvalError> {
        match p {
            // Error holes behave like STOP: no transitions.
            Process::Stop | Process::Error(_) => Ok(Vec::new()),
            Process::Call { name, args } => {
                if fuel == 0 {
                    // Unguarded cycle: no transitions, like STOP — the
                    // least-fixed-point reading.
                    return Ok(Vec::new());
                }
                let vals = args
                    .iter()
                    .map(|e| e.eval(env))
                    .collect::<Result<Vec<_>, _>>()?;
                let (body, scope) = self.defs.resolve_call(name, &vals, env)?;
                self.steps_inner(body, &scope, fuel - 1)
            }
            Process::Output { chan, msg, then } => {
                let c = chan.resolve(env)?;
                let v = msg.eval(env)?;
                Ok(vec![Step::Visible(
                    Event::new(c, v),
                    Config::from_arc(Arc::clone(then), env.clone()),
                )])
            }
            Process::Input {
                chan,
                var,
                set,
                then,
            } => {
                let c = chan.resolve(env)?;
                let m = set.eval(env)?;
                let mut out = Vec::new();
                for v in self.universe.enumerate(&m)? {
                    out.push(Step::Visible(
                        Event::new(c.clone(), v.clone()),
                        Config::from_arc(Arc::clone(then), env.bind(var, v)),
                    ));
                }
                Ok(out)
            }
            Process::Choice(a, b) => {
                // Initial-choice semantics: the union of both arms'
                // transitions, matching ⟦P|Q⟧ = ⟦P⟧ ∪ ⟦Q⟧.
                let mut out = self.steps_inner(a, env, fuel)?;
                out.extend(self.steps_inner(b, env, fuel)?);
                Ok(out)
            }
            Process::Parallel {
                left,
                right,
                left_alpha,
                right_alpha,
            } => {
                // Alphabets are fixed at composition time (§1.2(7)); once
                // computed they are materialised into successor terms so
                // they do not drift as the operands evolve.
                let x = self.resolve_alpha(left_alpha.as_deref(), left, env)?;
                let y = self.resolve_alpha(right_alpha.as_deref(), right, env)?;
                let sync = x.intersection(&y);
                let ls = self.steps_inner(left, env, fuel)?;
                let rs = self.steps_inner(right, env, fuel)?;
                let mut out = Vec::new();
                let x_refs = channelset_to_refs(&x);
                let y_refs = channelset_to_refs(&y);
                // Operand environments can diverge (each side binds its own
                // input variables), so successors are closed with their own
                // environment before recombination. Host constants (array
                // cells like `v[1]`) are not variables and survive in the
                // shared outer environment. Closing is the identity on the
                // (typical) already-closed operand, in which case the term
                // is shared rather than copied.
                let close_arc = |p: &Arc<Process>, e: &Env| -> Arc<Process> {
                    if e.iter().any(|(v, _)| csp_lang::process_has_free(p, v)) {
                        Arc::new(
                            csp_lang::close_process(p, e)
                                .expect("closing with constants cannot fail"),
                        )
                    } else {
                        Arc::clone(p)
                    }
                };
                // The side that did not move is the same for every
                // interleaved step: close it once and share it.
                let left_stat = close_arc(left, env);
                let right_stat = close_arc(right, env);
                let rebuild = |l: Arc<Process>, r: Arc<Process>| Process::Parallel {
                    left: l,
                    right: r,
                    left_alpha: Some(x_refs.clone()),
                    right_alpha: Some(y_refs.clone()),
                };
                for step in &ls {
                    if let Step::Visible(e, lc) = step {
                        if !sync.contains(e.channel()) {
                            out.push(Step::Visible(
                                *e,
                                Config::new(
                                    rebuild(
                                        close_arc(&lc.process, &lc.env),
                                        Arc::clone(&right_stat),
                                    ),
                                    env.clone(),
                                ),
                            ));
                        } else {
                            // Joint step: the right must offer the same event.
                            for rstep in &rs {
                                if let Step::Visible(e2, rc) = rstep {
                                    if e2 == e {
                                        out.push(Step::Visible(
                                            *e,
                                            Config::new(
                                                rebuild(
                                                    close_arc(&lc.process, &lc.env),
                                                    close_arc(&rc.process, &rc.env),
                                                ),
                                                env.clone(),
                                            ),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
                for rstep in &rs {
                    if let Step::Visible(e, rc) = rstep {
                        if !sync.contains(e.channel()) {
                            out.push(Step::Visible(
                                *e,
                                Config::new(
                                    rebuild(
                                        Arc::clone(&left_stat),
                                        close_arc(&rc.process, &rc.env),
                                    ),
                                    env.clone(),
                                ),
                            ));
                        }
                    }
                }
                Ok(out)
            }
            Process::Hide { channels, body } => {
                let hidden: ChannelSet = channels
                    .iter()
                    .map(|c| c.resolve(env))
                    .collect::<Result<_, _>>()?;
                let mut out = Vec::new();
                // Successor configs are owned here, so the hiding wrapper is
                // rebuilt around the *moved* body term — no deep copy.
                let rewrap = |c: Config| {
                    Config::new(
                        Process::Hide {
                            channels: channels.clone(),
                            body: c.process,
                        },
                        c.env,
                    )
                };
                for step in self.steps_inner(body, env, fuel)? {
                    match step {
                        Step::Visible(e, c) if hidden.contains(e.channel()) => {
                            out.push(Step::Internal(rewrap(c)));
                        }
                        Step::Visible(e, c) => {
                            out.push(Step::Visible(e, rewrap(c)));
                        }
                        Step::Internal(c) => {
                            out.push(Step::Internal(rewrap(c)));
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// The set of visible traces of length at most `depth`, exploring at
    /// most `internal_budget` concealed communications along any path
    /// (defaults used by [`traces`](Self::traces): `depth × 3`, matching
    /// the denotational hide multiplier).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures from [`steps`](Self::steps).
    pub fn traces_budgeted(
        &self,
        start: &Config,
        depth: usize,
        internal_budget: usize,
    ) -> Result<TraceSet, EvalError> {
        let mut out = TraceSet::stop();
        let mut seen: BTreeSet<(Trace, Config)> = BTreeSet::new();
        self.explore(
            start,
            depth,
            internal_budget,
            &Trace::empty(),
            &mut out,
            &mut seen,
        )?;
        Ok(out)
    }

    /// The set of visible traces of length at most `depth`, with the
    /// default internal budget.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures from [`steps`](Self::steps).
    pub fn traces(&self, start: &Config, depth: usize) -> Result<TraceSet, EvalError> {
        self.traces_budgeted(start, depth, depth * 3)
    }

    fn explore(
        &self,
        config: &Config,
        depth: usize,
        internal_budget: usize,
        prefix: &Trace,
        out: &mut TraceSet,
        seen: &mut BTreeSet<(Trace, Config)>,
    ) -> Result<(), EvalError> {
        // Dedup (trace, configuration) pairs to cut re-exploration of
        // confluent interleavings.
        if !seen.insert((prefix.clone(), config.clone())) {
            return Ok(());
        }
        out.insert_closed(prefix.clone());
        for step in self.steps(config)? {
            match step {
                Step::Visible(e, next) => {
                    if depth > 0 {
                        self.explore(
                            &next,
                            depth - 1,
                            internal_budget,
                            &prefix.snoc(e),
                            out,
                            seen,
                        )?;
                    }
                }
                Step::Internal(next) => {
                    if internal_budget > 0 {
                        self.explore(&next, depth, internal_budget - 1, prefix, out, seen)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Renders a concrete channel set back into constant channel references —
/// used to pin a parallel node's alphabets after first resolution.
fn channelset_to_refs(cs: &ChannelSet) -> Vec<ChanRef> {
    cs.iter()
        .map(|c| {
            ChanRef::with_indices(
                c.base(),
                c.indices().iter().map(|&i| Expr::int(i)).collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Semantics;
    use csp_lang::{examples, parse_definitions};
    use csp_trace::Value;

    fn tr(pairs: &[(&'static str, u32)]) -> Trace {
        Trace::parse_like(pairs.iter().map(|&(c, n)| (c, Value::nat(n))))
    }

    #[test]
    fn stop_has_no_steps() {
        let defs = Definitions::new();
        let uni = Universe::small();
        let lts = Lts::new(&defs, &uni);
        let c = Config::new(Process::Stop, Env::new());
        assert!(lts.steps(&c).unwrap().is_empty());
    }

    #[test]
    fn output_offers_one_step_input_offers_universe() {
        let defs = Definitions::new();
        let uni = Universe::new(2);
        let lts = Lts::new(&defs, &uni);
        let c = Config::new(csp_lang::parse_process("a!7 -> STOP").unwrap(), Env::new());
        // a!7 with NAT bound 2 still fires: outputs are computed, not
        // enumerated.
        let uni_big = Universe::new(7);
        let _ = uni_big;
        let steps = lts.steps(&c).unwrap();
        assert_eq!(steps.len(), 1);
        let c2 = Config::new(
            csp_lang::parse_process("a?x:NAT -> STOP").unwrap(),
            Env::new(),
        );
        assert_eq!(lts.steps(&c2).unwrap().len(), 3);
    }

    #[test]
    fn lts_traces_agree_with_denotation_on_pipeline() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let lts = Lts::new(&defs, &uni);
        let sem = Semantics::new(&defs, &uni);
        let env = Env::new();
        for name in ["copier", "recopier", "pipeline"] {
            for depth in 0..=4 {
                let op = lts.traces(&lts.initial(name, &env), depth).unwrap();
                let den = sem.denote_name(name, &env, depth).unwrap();
                assert_eq!(op, den, "{name} at depth {depth}");
            }
        }
    }

    #[test]
    fn lts_traces_agree_with_denotation_on_protocol() {
        let defs = examples::protocol();
        let uni = Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]);
        let lts = Lts::new(&defs, &uni);
        let sem = Semantics::new(&defs, &uni);
        let env = Env::new();
        for depth in 0..=3 {
            let op = lts.traces(&lts.initial("protocol", &env), depth).unwrap();
            let den = sem.denote_name("protocol", &env, depth).unwrap();
            assert_eq!(op, den, "protocol at depth {depth}");
        }
    }

    #[test]
    fn multiplier_outputs_scalar_products() {
        // The full §1.3(5) network, width 3, via on-the-fly composition.
        // Row inputs are restricted to {0,1} so the state space stays
        // small while column sums (up to 2+3+5 = 10) remain representable
        // under the NAT bound.
        let defs = parse_definitions(
            "mult[i:1..3] = row[i]?x:{0..1} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
             zeroes = col[0]!0 -> zeroes
             last = col[3]?y:NAT -> output!y -> last
             network = zeroes || mult[1] || mult[2] || mult[3] || last
             multiplier = chan col[0..3]; network",
        )
        .unwrap();
        let env = examples::multiplier_env(&[2, 3, 5]);
        let uni = Universe::new(10);
        let lts = Lts::new(&defs, &uni);
        let t = lts
            .traces_budgeted(&lts.initial("multiplier", &env), 4, 16)
            .unwrap();
        use csp_trace::Channel;
        let mut outputs = 0;
        for s in t.iter() {
            let h = s.history();
            let out = h.on(&Channel::simple("output"));
            if out.len() == 1 {
                outputs += 1;
                let r = |i: i64| {
                    h.on(&Channel::indexed("row", i))
                        .at(1)
                        .unwrap()
                        .as_int()
                        .unwrap()
                };
                assert_eq!(
                    out.at(1).unwrap().as_int().unwrap(),
                    2 * r(1) + 3 * r(2) + 5 * r(3),
                    "wrong scalar product in {s}"
                );
            }
        }
        assert!(outputs > 0, "no complete round explored");
    }

    #[test]
    fn hidden_events_do_not_appear_in_traces() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let lts = Lts::new(&defs, &uni);
        let t = lts
            .traces(&lts.initial("pipeline", &Env::new()), 3)
            .unwrap();
        use csp_trace::Channel;
        assert!(!t.channels().contains(&Channel::simple("wire")));
        assert!(t.contains(&tr(&[("input", 1), ("output", 1)])));
    }

    #[test]
    fn internal_budget_bounds_hidden_chatter() {
        // A process whose only behaviour is hidden: chan a; loop.
        let defs = parse_definitions("loop = a!0 -> loop").unwrap();
        let uni = Universe::small();
        let lts = Lts::new(&defs, &uni);
        let hidden = csp_lang::parse_process("chan a; loop").unwrap();
        let c = Config::new(hidden, Env::new());
        // Must terminate despite the unbounded internal loop.
        let t = lts.traces_budgeted(&c, 3, 5).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn choice_steps_union_both_arms() {
        let defs = Definitions::new();
        let uni = Universe::small();
        let lts = Lts::new(&defs, &uni);
        let c = Config::new(
            csp_lang::parse_process("a!1 -> STOP | b!2 -> STOP").unwrap(),
            Env::new(),
        );
        assert_eq!(lts.steps(&c).unwrap().len(), 2);
    }

    #[test]
    fn mismatched_sync_deadlocks() {
        let defs = Definitions::new();
        let uni = Universe::small();
        let lts = Lts::new(&defs, &uni);
        let c = Config::new(
            csp_lang::parse_process("(w!1 -> STOP) || (w!2 -> STOP)").unwrap(),
            Env::new(),
        );
        assert!(lts.steps(&c).unwrap().is_empty());
    }

    #[test]
    fn alphabets_are_pinned_at_composition() {
        // P = a!1 -> STOP, Q = a?x -> a?x -> STOP. After the joint a.1,
        // P is STOP — but a stays in P's alphabet, so Q cannot continue
        // alone.
        let defs = Definitions::new();
        let uni = Universe::new(1);
        let lts = Lts::new(&defs, &uni);
        let c = Config::new(
            csp_lang::parse_process("(a!1 -> STOP) || (a?x:NAT -> a?y:NAT -> STOP)").unwrap(),
            Env::new(),
        );
        let t = lts.traces(&c, 3).unwrap();
        assert!(t.contains(&tr(&[("a", 1)])));
        assert_eq!(t.depth(), 1, "Q escaped the pinned alphabet: {t}");
    }
}
