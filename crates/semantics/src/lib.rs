//! # csp-semantics
//!
//! The denotational model of Zhou & Hoare (1981) §3, plus a derived
//! operational semantics.
//!
//! * [`Semantics`] — the paper's semantic equations: every process
//!   expression denotes a prefix-closed trace set, computed here to a
//!   requested depth over a finite [`Universe`].
//! * [`mod@fixpoint`] — the explicit approximation sequence `a₀ ⊆ a₁ ⊆ …` of
//!   §3.3 for (mutually) recursive definitions and process arrays, with
//!   convergence detection.
//! * [`Lts`] — a labelled transition system derived from the syntax; its
//!   traces provably (by test) agree with the denotational model, and it
//!   composes networks on the fly, which is what the larger experiments
//!   use.
//! * [`compare`]/[`refines`] — trace-set equality and refinement with
//!   counterexample reporting (e.g. the §4 identity `STOP | P = P`).
//! * [`CompiledLts`] — the compiled backend: the same transition relation
//!   with configurations interned into a [`StateId`] arena and successor
//!   rows memoised, so reachability-style checks (deadlock, refinement)
//!   run over [`StateSet`] bitsets instead of re-stepping terms.
//!   [`Engine`] selects between the backends and is re-exported by
//!   `csp-core` as the option-level selector.
//!
//! ```
//! use csp_lang::{examples, Env};
//! use csp_semantics::{Lts, Semantics, Universe};
//!
//! let defs = examples::pipeline();
//! let uni = Universe::new(1);
//! let sem = Semantics::new(&defs, &uni);
//! let lts = Lts::new(&defs, &uni);
//! let env = Env::new();
//! let d = sem.denote_name("pipeline", &env, 3).unwrap();
//! let o = lts.traces(&lts.initial("pipeline", &env), 3).unwrap();
//! assert_eq!(d, o);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod denote;
mod equiv;
mod lts;
mod universe;

pub mod fixpoint;

pub use compiled::{CompiledLts, CompiledStep, Engine, StateId, StateSet};
pub use denote::Semantics;
pub use equiv::{compare, refines, Discrepancy};
pub use fixpoint::{fixpoint, fixpoint_with, Approximation, FixpointRun, ProcKey};
pub use lts::{Config, Lts, Step};
pub use universe::Universe;
