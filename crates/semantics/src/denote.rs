//! Denotational semantics — §3.2 of the paper.
//!
//! Each process expression denotes a prefix-closed set of traces, built
//! with the operators of §3.1:
//!
//! * `⟦STOP⟧ = {<>}`,
//! * `⟦c!e → P⟧ = (c.⟦e⟧ → ⟦P⟧)`,
//! * `⟦c?x:M → P⟧ = ⋃_{v∈M} (c.v → ⟦P⟧ρ[v/x])`,
//! * `⟦P|Q⟧ = ⟦P⟧ ∪ ⟦Q⟧`,
//! * `⟦P‖Q⟧ = ⟦P⟧ ‖_{X,Y} ⟦Q⟧`,
//! * `⟦chan L; P⟧ = ⟦P⟧ \ L`,
//! * recursion: the least fixed point (computed here by depth-bounded
//!   unfolding, and in [`crate::fixpoint`] by the paper's explicit iterate
//!   sequence `a₀ ⊆ a₁ ⊆ …`; the two agree — see the crate tests).
//!
//! [`Semantics::denote`] returns **exactly** the traces of length ≤
//! `depth` of the full denotation, under two finiteness provisos
//! documented in `DESIGN.md`: unbounded message sets are restricted by
//! the [`Universe`], and each `chan L; …` body is explored to
//! `depth × hide_multiplier` events (hidden communications do not count
//! toward trace length, so a concealed body must be unfolded further than
//! the requested depth; raise the multiplier for networks with long
//! internal chatter per visible event).

use csp_lang::{channel_alphabet, ChanRef, Definitions, Env, EvalError, Process};
use csp_trace::{ChannelSet, Event, TraceSet};

use crate::Universe;

/// Evaluator mapping process expressions to bounded trace sets.
///
/// # Examples
///
/// ```
/// use csp_lang::{examples, Env};
/// use csp_semantics::{Semantics, Universe};
///
/// let defs = examples::pipeline();
/// let uni = Universe::new(1); // NAT ↾ {0,1}
/// let sem = Semantics::new(&defs, &uni);
/// let traces = sem.denote_name("copier", &Env::new(), 4).unwrap();
/// // After <input.m, wire.m, input.m'> … every trace alternates copy steps.
/// assert!(traces.len() > 1);
/// assert!(traces.is_prefix_closed());
/// ```
#[derive(Debug, Clone)]
pub struct Semantics<'a> {
    defs: &'a Definitions,
    universe: &'a Universe,
    hide_multiplier: usize,
    fuel0: usize,
}

impl<'a> Semantics<'a> {
    /// Creates an evaluator over the given definitions and universe.
    pub fn new(defs: &'a Definitions, universe: &'a Universe) -> Self {
        Semantics {
            defs,
            universe,
            hide_multiplier: 3,
            fuel0: (defs.len() + 2).max(8),
        }
    }

    /// Sets how much deeper than the requested depth the bodies of
    /// `chan L; P` are explored (default 3×). See the module docs.
    #[must_use]
    pub fn with_hide_multiplier(mut self, m: usize) -> Self {
        self.hide_multiplier = m.max(1);
        self
    }

    /// The definitions this evaluator resolves names through.
    pub fn definitions(&self) -> &Definitions {
        self.defs
    }

    /// The finite universe used for `NAT` and named sets.
    pub fn universe(&self) -> &Universe {
        self.universe
    }

    /// The traces of `p` (interpreted in `env`) of length at most `depth`.
    ///
    /// # Errors
    ///
    /// Fails on undefined process names, unbound variables, unresolvable
    /// named sets, or ill-typed expressions.
    pub fn denote(&self, p: &Process, env: &Env, depth: usize) -> Result<TraceSet, EvalError> {
        self.eval(p, env, depth, self.fuel0)
    }

    /// The traces of the named process, `⟦name⟧`, to the given depth.
    ///
    /// # Errors
    ///
    /// As for [`denote`](Self::denote); also fails if `name` is an array
    /// name (instantiate an element with
    /// [`Definitions::instantiate`](csp_lang::Definitions::instantiate)
    /// and use [`denote`](Self::denote) instead).
    pub fn denote_name(&self, name: &str, env: &Env, depth: usize) -> Result<TraceSet, EvalError> {
        self.denote(&Process::call(name), env, depth)
    }

    /// Resolves the alphabets `X`, `Y` of a parallel composition:
    /// explicit channel lists are evaluated; absent ones are inferred
    /// from the operand's text per the paper's convention.
    ///
    /// # Errors
    ///
    /// Fails if alphabet channel subscripts cannot be evaluated or a
    /// referenced process is undefined.
    pub fn parallel_alphabets(
        &self,
        left: &Process,
        right: &Process,
        left_alpha: Option<&[ChanRef]>,
        right_alpha: Option<&[ChanRef]>,
        env: &Env,
    ) -> Result<(ChannelSet, ChannelSet), EvalError> {
        let x = match left_alpha {
            Some(cs) => resolve_chanrefs(cs, env)?,
            None => channel_alphabet(left, self.defs, env)?,
        };
        let y = match right_alpha {
            Some(cs) => resolve_chanrefs(cs, env)?,
            None => channel_alphabet(right, self.defs, env)?,
        };
        Ok((x, y))
    }

    fn eval(
        &self,
        p: &Process,
        env: &Env,
        depth: usize,
        fuel: usize,
    ) -> Result<TraceSet, EvalError> {
        match p {
            // Error holes denote STOP: the empty trace only (§2.2's
            // weakest process), so partial modules still have semantics.
            Process::Stop | Process::Error(_) => Ok(TraceSet::stop()),
            Process::Call { name, args } => {
                if fuel == 0 || depth == 0 {
                    // a₀-style truncation: deeper unfolding cannot
                    // contribute traces within the remaining depth.
                    return Ok(TraceSet::stop());
                }
                let vals = args
                    .iter()
                    .map(|e| e.eval(env))
                    .collect::<Result<Vec<_>, _>>()?;
                let (body, scope) = self.defs.resolve_call(name, &vals, env)?;
                self.eval(body, &scope, depth, fuel - 1)
            }
            Process::Output { chan, msg, then } => {
                if depth == 0 {
                    return Ok(TraceSet::stop());
                }
                let c = chan.resolve(env)?;
                let v = msg.eval(env)?;
                let inner = self.eval(then, env, depth - 1, self.fuel0)?;
                Ok(inner.prefixed(Event::new(c, v)))
            }
            Process::Input {
                chan,
                var,
                set,
                then,
            } => {
                if depth == 0 {
                    return Ok(TraceSet::stop());
                }
                let c = chan.resolve(env)?;
                let m = set.eval(env)?;
                let mut out = TraceSet::stop();
                for v in self.universe.enumerate(&m)? {
                    let scope = env.bind(var, v.clone());
                    let inner = self.eval(then, &scope, depth - 1, self.fuel0)?;
                    out = out.union(&inner.prefixed(Event::new(c.clone(), v)));
                }
                Ok(out)
            }
            Process::Choice(a, b) => {
                let ta = self.eval(a, env, depth, fuel)?;
                let tb = self.eval(b, env, depth, fuel)?;
                Ok(ta.union(&tb))
            }
            Process::Parallel {
                left,
                right,
                left_alpha,
                right_alpha,
            } => {
                let (x, y) = self.parallel_alphabets(
                    left,
                    right,
                    left_alpha.as_deref(),
                    right_alpha.as_deref(),
                    env,
                )?;
                let tl = self.eval(left, env, depth, fuel)?;
                let tr = self.eval(right, env, depth, fuel)?;
                Ok(tl.parallel(&x, &tr, &y).up_to_depth(depth))
            }
            Process::Hide { channels, body } => {
                let hidden = resolve_chanrefs(channels, env)?;
                let body_depth = depth.saturating_mul(self.hide_multiplier).max(depth);
                let tb = self.eval(body, env, body_depth, fuel)?;
                Ok(tb.hide(&hidden).up_to_depth(depth))
            }
        }
    }
}

pub(crate) fn resolve_chanrefs(cs: &[ChanRef], env: &Env) -> Result<ChannelSet, EvalError> {
    cs.iter().map(|c| c.resolve(env)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_lang::{examples, parse_definitions, parse_process};
    use csp_trace::{Trace, Value};

    fn tr(pairs: &[(&'static str, u32)]) -> Trace {
        Trace::parse_like(pairs.iter().map(|&(c, n)| (c, Value::nat(n))))
    }

    #[test]
    fn stop_denotes_singleton_empty() {
        let defs = Definitions::new();
        let uni = Universe::small();
        let sem = Semantics::new(&defs, &uni);
        let t = sem.denote(&Process::Stop, &Env::new(), 5).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn output_prefix_matches_paper_operator() {
        let defs = Definitions::new();
        let uni = Universe::small();
        let sem = Semantics::new(&defs, &uni);
        let p = parse_process("a!1 -> b!2 -> STOP").unwrap();
        let t = sem.denote(&p, &Env::new(), 5).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.contains(&tr(&[("a", 1), ("b", 2)])));
        // Depth truncation:
        let t1 = sem.denote(&p, &Env::new(), 1).unwrap();
        assert_eq!(t1.len(), 2);
    }

    #[test]
    fn input_unions_over_the_message_set() {
        let defs = Definitions::new();
        let uni = Universe::new(2); // {0,1,2}
        let sem = Semantics::new(&defs, &uni);
        let p = parse_process("c?x:NAT -> d!x -> STOP").unwrap();
        let t = sem.denote(&p, &Env::new(), 2).unwrap();
        // <>, and for each m in {0,1,2}: <c.m> and <c.m, d.m>.
        assert_eq!(t.len(), 7);
        assert!(t.contains(&tr(&[("c", 1), ("d", 1)])));
        assert!(!t.contains(&tr(&[("c", 1), ("d", 2)])));
    }

    #[test]
    fn choice_is_union() {
        let defs = Definitions::new();
        let uni = Universe::small();
        let sem = Semantics::new(&defs, &uni);
        let p = parse_process("a!1 -> STOP | b!2 -> STOP").unwrap();
        let t = sem.denote(&p, &Env::new(), 3).unwrap();
        assert_eq!(t.len(), 3); // <>, <a.1>, <b.2>
    }

    #[test]
    fn copier_traces_match_paper_description() {
        // §1.0: all traces of the form <input.m, wire.m, …>.
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let sem = Semantics::new(&defs, &uni);
        let t = sem.denote_name("copier", &Env::new(), 4).unwrap();
        assert!(t.contains(&tr(&[("input", 0), ("wire", 0), ("input", 1), ("wire", 1)])));
        // wire before input is impossible:
        assert!(!t.contains(&tr(&[("wire", 0)])));
        // wire must repeat the input value:
        assert!(!t.contains(&tr(&[("input", 0), ("wire", 1)])));
        // Depth 4, universe {0,1}: 1 + 2 + 2 + 4 + 4 traces.
        assert_eq!(t.len(), 13);
    }

    #[test]
    fn pipeline_synchronises_on_wire() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let sem = Semantics::new(&defs, &uni);
        let p = parse_process("copier || recopier").unwrap();
        let t = sem.denote(&p, &Env::new(), 4).unwrap();
        assert!(t.contains(&tr(&[
            ("input", 1),
            ("wire", 1),
            ("output", 1),
            ("input", 0)
        ])));
        // recopier cannot output before the wire fires:
        assert!(!t.contains(&tr(&[("input", 1), ("output", 1)])));
    }

    #[test]
    fn hiding_the_wire_gives_output_le_input() {
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let sem = Semantics::new(&defs, &uni);
        let t = sem.denote_name("pipeline", &Env::new(), 4).unwrap();
        // Visible alphabet only input/output:
        assert!(t.contains(&tr(&[
            ("input", 1),
            ("output", 1),
            ("input", 0),
            ("output", 0)
        ])));
        // And output ≤ input on every trace (§2's invariant):
        use csp_trace::Channel;
        for s in t.iter() {
            let h = s.history();
            assert!(
                h.on(&Channel::simple("output"))
                    .is_prefix_of(&h.on(&Channel::simple("input"))),
                "violates output ≤ input: {s}"
            );
        }
    }

    #[test]
    fn unguarded_recursion_denotes_stop() {
        // p = p has least fixed point {<>} (§3.3's a_i are all STOP).
        let defs = parse_definitions("p = p").unwrap();
        let uni = Universe::small();
        let sem = Semantics::new(&defs, &uni);
        let t = sem.denote_name("p", &Env::new(), 5).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn abbreviation_chains_resolve_within_fuel() {
        let defs = parse_definitions(
            "p = q
             q = r
             r = c!0 -> p",
        )
        .unwrap();
        let uni = Universe::small();
        let sem = Semantics::new(&defs, &uni);
        let t = sem.denote_name("p", &Env::new(), 2).unwrap();
        assert!(t.contains(&tr(&[("c", 0), ("c", 0)])));
    }

    #[test]
    fn array_calls_instantiate_parameters() {
        let defs = parse_definitions("q[x:0..3] = wire!x -> q[x+1 % 4]").unwrap();
        let uni = Universe::small();
        let sem = Semantics::new(&defs, &uni);
        let p = parse_process("q[2]").unwrap();
        let t = sem.denote(&p, &Env::new(), 2).unwrap();
        assert!(t.contains(&tr(&[("wire", 2), ("wire", 3)])));
    }

    #[test]
    fn protocol_example_has_only_input_output_visible() {
        let defs = examples::protocol();
        let uni = Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]);
        let sem = Semantics::new(&defs, &uni);
        let t = sem.denote_name("protocol", &Env::new(), 2).unwrap();
        assert!(t.contains(&tr(&[("input", 1), ("output", 1)])));
        use csp_trace::Channel;
        let alpha = t.channels();
        assert!(!alpha.contains(&Channel::simple("wire")));
    }

    #[test]
    fn stop_choice_p_equals_p_in_model() {
        // §4's defect at the semantic level.
        let defs = examples::pipeline();
        let uni = Universe::new(1);
        let sem = Semantics::new(&defs, &uni);
        let p = parse_process("STOP | copier").unwrap();
        let just_copier = sem.denote_name("copier", &Env::new(), 3).unwrap();
        let with_stop = sem.denote(&p, &Env::new(), 3).unwrap();
        assert_eq!(with_stop, just_copier);
    }

    #[test]
    fn explicit_alphabets_override_inference() {
        // Give the left process an alphabet that includes `b` so the
        // composition must synchronise on it; the left cannot do b, so b
        // never fires.
        let p = parse_process("(a!1 -> STOP) || (b!2 -> STOP)").unwrap();
        let (left, right) = match p {
            Process::Parallel { left, right, .. } => (left, right),
            other => panic!("unexpected {other:?}"),
        };
        let composed = Process::Parallel {
            left,
            right,
            left_alpha: Some(vec![ChanRef::simple("a"), ChanRef::simple("b")]),
            right_alpha: Some(vec![ChanRef::simple("b")]),
        };
        let defs = Definitions::new();
        let uni = Universe::small();
        let sem = Semantics::new(&defs, &uni);
        let t = sem.denote(&composed, &Env::new(), 3).unwrap();
        assert_eq!(t.len(), 2); // <> and <a.1> only
    }

    #[test]
    fn width_1_multiplier_outputs_scaled_rows() {
        // A width-1 instance of §1.3(5): output must be v[1] × row[1].
        // (The full width-3 network is exercised through the operational
        // semantics, which composes on the fly — see `lts.rs` and the
        // integration tests; the denotational evaluator is the exponential
        // reference implementation.)
        let defs = parse_definitions(&examples::multiplier_src(1)).unwrap();
        let env = examples::multiplier_env(&[3]);
        let uni = Universe::new(6); // rows 0..2 scaled by 3 stay in range
        let sem = Semantics::new(&defs, &uni).with_hide_multiplier(3);
        let t = sem.denote_name("multiplier", &env, 2).unwrap();
        use csp_trace::Channel;
        let mut outputs_seen = 0;
        for s in t.iter() {
            let h = s.history();
            let out = h.on(&Channel::simple("output"));
            if out.len() == 1 {
                outputs_seen += 1;
                let r1 = h
                    .on(&Channel::indexed("row", 1))
                    .at(1)
                    .unwrap()
                    .as_int()
                    .unwrap();
                assert_eq!(out.at(1).unwrap().as_int().unwrap(), 3 * r1);
            }
        }
        assert!(outputs_seen > 0, "no output event reached at this depth");
    }
}
